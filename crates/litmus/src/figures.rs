//! The paper's figures as executable artifacts: each function builds the
//! exact program/configuration of a figure, and [`FigureRun`] replays the
//! figure's directive schedule on the reference machine to regenerate
//! its directive/effect/leakage table.

use sct_core::instr::{Instr, Operand};
use sct_core::label::Label;
use sct_core::mem::Memory;
use sct_core::reg::names::*;
use sct_core::reg::{Reg, RegFile};
use sct_core::{Config, Directive, Machine, Observation, OpCode, Params, Program, Schedule, Val};

/// A figure replay: the machine run under the paper's directives, with
/// each step's observations.
#[derive(Clone, Debug)]
pub struct FigureRun {
    /// Figure identifier (e.g. `"1"`, `"4a"`).
    pub id: &'static str,
    /// One-line description.
    pub title: &'static str,
    /// The program.
    pub program: Program,
    /// The initial configuration.
    pub config: Config,
    /// The full schedule (setup plus the attack directives).
    pub schedule: Schedule,
    /// Index into the schedule where the paper's shown directives begin
    /// (everything before is setup reaching the figure's starting state).
    pub shown_from: usize,
    /// Per-directive observations for the whole schedule.
    pub step_obs: Vec<Vec<Observation>>,
    /// The final configuration.
    pub final_config: Config,
}

impl FigureRun {
    /// Execute `schedule` on `(program, config)` and package the result.
    fn run(
        id: &'static str,
        title: &'static str,
        program: Program,
        config: Config,
        schedule: Schedule,
        shown_from: usize,
    ) -> FigureRun {
        let mut m = Machine::with_params(&program, config.clone(), Params::paper());
        let mut step_obs = Vec::with_capacity(schedule.len());
        for d in schedule.iter() {
            let obs = m
                .step(d)
                .unwrap_or_else(|e| panic!("figure {id}: directive {d} failed: {e}"));
            step_obs.push(obs);
        }
        let final_config = m.cfg;
        FigureRun {
            id,
            title,
            program,
            config,
            schedule,
            shown_from,
            step_obs,
            final_config,
        }
    }

    /// All observations in order.
    pub fn trace(&self) -> Vec<Observation> {
        self.step_obs.iter().flatten().copied().collect()
    }

    /// `true` if any observation carries a secret label.
    pub fn leaks_secret(&self) -> bool {
        self.trace().iter().any(|o| o.is_secret())
    }
}

/// Figure 1: the Spectre v1 bounds-check-bypass attack.
pub fn fig1() -> FigureRun {
    let (program, config) = sct_core::examples::fig1();
    let schedule: Schedule = [
        Directive::FetchBranch(true),
        Directive::Fetch,
        Directive::Fetch,
        Directive::Execute(2),
        Directive::Execute(3),
    ]
    .into_iter()
    .collect();
    FigureRun::run(
        "1",
        "Spectre v1: speculative bounds-check bypass leaks Key[1]",
        program,
        config,
        schedule,
        0,
    )
}

/// Figure 2: the hypothetical aliasing-predictor attack
/// (`execute i : fwd j` forwards from an address-unresolved store).
pub fn fig2() -> FigureRun {
    let mut p = Program::new();
    p.entry = 1;
    // Filler at 1 keeps buffer indices aligned with the figure (store at
    // index 2, loads at 7 and 8).
    p.insert(
        1,
        Instr::Op {
            dst: RD,
            op: OpCode::Mov,
            args: vec![Operand::imm(0)],
            next: 2,
        },
    );
    p.insert(
        2,
        Instr::Store {
            src: RB.into(),
            addr: vec![Operand::imm(0x40), RA.into()],
            next: 3,
        },
    );
    for n in 3..=6 {
        p.insert(
            n,
            Instr::Op {
                dst: RD,
                op: OpCode::Mov,
                args: vec![Operand::imm(n)],
                next: n + 1,
            },
        );
    }
    p.insert(
        7,
        Instr::Load {
            dst: RC,
            addr: vec![Operand::imm(0x45)],
            next: 8,
        },
    );
    p.insert(
        8,
        Instr::Load {
            dst: RC,
            addr: vec![Operand::imm(0x48), RC.into()],
            next: 9,
        },
    );

    let regs: RegFile = [(RA, Val::public(2)), (RB, Val::secret(3))]
        .into_iter()
        .collect();
    let mut mem = Memory::new();
    mem.write_array(0x40, &[7, 7, 7, 7], Label::Secret); // secretKey
    mem.write_array(0x44, &[1, 1, 1, 1], Label::Public); // pubArrA
    mem.write_array(0x48, &[2, 2, 2, 2], Label::Public); // pubArrB
    let config = Config::initial(regs, mem, 1);

    let mut schedule: Schedule = std::iter::repeat_n(Directive::Fetch, 8).collect();
    let shown_from = schedule.len();
    schedule.extend([
        Directive::ExecuteValue(2), // execute 2 : value
        Directive::ExecuteFwd(7, 2), // execute 7 : fwd 2
        Directive::Execute(8),      // leaks read (x_sec + 0x48)
        Directive::ExecuteAddr(2),  // store resolves to 0x42
        Directive::Execute(7),      // aliasing misprediction: rollback
    ]);
    FigureRun::run(
        "2",
        "hypothetical aliasing-predictor attack: value forwarded before addresses known",
        p,
        config,
        schedule,
        shown_from,
    )
}

fn fig4_program(guess_true_target: bool) -> (Program, Config) {
    let mut p = Program::new();
    p.entry = 3;
    p.insert(
        3,
        Instr::Op {
            dst: RB,
            op: OpCode::Mov,
            args: vec![Operand::imm(4)],
            next: 4,
        },
    );
    p.insert(
        4,
        Instr::Br {
            op: OpCode::Lt,
            args: vec![Operand::imm(2), RA.into()],
            tru: 9,
            fls: 12,
        },
    );
    p.insert(
        9,
        Instr::Op {
            dst: RC,
            op: OpCode::Add,
            args: vec![Operand::imm(1), RB.into()],
            next: 10,
        },
    );
    p.insert(
        12,
        Instr::Op {
            dst: RD,
            op: OpCode::Mul,
            args: vec![RG.into(), RH.into()],
            next: 13,
        },
    );
    let _ = guess_true_target;
    let regs: RegFile = [(RA, Val::public(3))].into_iter().collect();
    (p, Config::initial(regs, Memory::new(), 3))
}

/// Figure 4(a): correctly predicted branch (`ra = 3`, guess true).
pub fn fig4a() -> FigureRun {
    let (p, cfg) = fig4_program(true);
    // Reach the figure's buffer: 3 ↦ (rb = 4), 4 ↦ br, 5 ↦ op at 9.
    let schedule: Schedule = [
        Directive::Fetch,            // rb = mov 4   (index 1)
        Directive::Execute(1),
        Directive::FetchBranch(true), // br guessed true (index 2)
        Directive::Fetch,             // op at 9 (index 3)
        Directive::Execute(2),        // resolves to jump 9
    ]
    .into_iter()
    .collect();
    FigureRun::run(
        "4a",
        "correct branch prediction: br resolves to jump 9, execution proceeds",
        p,
        cfg,
        schedule,
        4,
    )
}

/// Figure 4(b): mispredicted branch (guess false); rollback squashes the
/// speculatively fetched multiply.
pub fn fig4b() -> FigureRun {
    let (p, cfg) = fig4_program(false);
    let schedule: Schedule = [
        Directive::Fetch,              // rb = mov 4
        Directive::Execute(1),
        Directive::FetchBranch(false), // br guessed false → 12
        Directive::Fetch,              // (rd = mul rg, rh) at 12
        Directive::Execute(2),         // misprediction: rollback to 9
    ]
    .into_iter()
    .collect();
    FigureRun::run(
        "4b",
        "incorrect branch prediction: rollback squashes the wrong-path multiply",
        p,
        cfg,
        schedule,
        4,
    )
}

/// Figure 5: store hazard from late store-address resolution.
pub fn fig5() -> FigureRun {
    let mut p = Program::new();
    p.entry = 1;
    p.insert(
        1,
        Instr::Op {
            dst: RD,
            op: OpCode::Mov,
            args: vec![Operand::imm(0)],
            next: 2,
        },
    );
    p.insert(
        2,
        Instr::Store {
            src: Operand::imm(12),
            addr: vec![Operand::imm(0x43)],
            next: 3,
        },
    );
    p.insert(
        3,
        Instr::Store {
            src: Operand::imm(20),
            addr: vec![Operand::imm(3), RA.into()],
            next: 4,
        },
    );
    p.insert(
        4,
        Instr::Load {
            dst: RC,
            addr: vec![Operand::imm(0x43)],
            next: 5,
        },
    );
    let regs: RegFile = [(RA, Val::public(0x40))].into_iter().collect();
    let config = Config::initial(regs, Memory::new(), 1);
    let schedule: Schedule = [
        Directive::Fetch, // filler (1)
        Directive::Fetch, // store (2)
        Directive::Fetch, // store (3)
        Directive::Fetch, // load  (4)
        Directive::Execute(1),
        Directive::ExecuteValue(2),
        Directive::ExecuteAddr(2), // store 2 fully resolved: store(12, 43)
        Directive::ExecuteValue(3), // store 3: value resolved, addr pending
        // --- the figure's shown directives ---
        Directive::Execute(4),     // load forwards 12 from store 2 (fwd 43)
        Directive::ExecuteAddr(3), // store 3 resolves to 43: hazard, rollback
    ]
    .into_iter()
    .collect();
    FigureRun::run(
        "5",
        "store hazard: late store-address resolution invalidates a forwarded load",
        p,
        config,
        schedule,
        8,
    )
}

/// Figure 6: Spectre v1.1 — a speculative out-of-bounds store forwards
/// its secret data to a load that then leaks it.
pub fn fig6() -> FigureRun {
    let mut p = Program::new();
    p.entry = 1;
    p.insert(
        1,
        Instr::Br {
            op: OpCode::Gt,
            args: vec![Operand::imm(4), RA.into()],
            tru: 2,
            fls: 9,
        },
    );
    p.insert(
        2,
        Instr::Store {
            src: RB.into(),
            addr: vec![Operand::imm(0x40), RA.into()],
            next: 3,
        },
    );
    for n in 3..=6 {
        p.insert(
            n,
            Instr::Op {
                dst: RD,
                op: OpCode::Mov,
                args: vec![Operand::imm(n)],
                next: n + 1,
            },
        );
    }
    p.insert(
        7,
        Instr::Load {
            dst: RC,
            addr: vec![Operand::imm(0x45)],
            next: 8,
        },
    );
    p.insert(
        8,
        Instr::Load {
            dst: RC,
            addr: vec![Operand::imm(0x48), RC.into()],
            next: 9,
        },
    );
    let regs: RegFile = [(RA, Val::public(5)), (RB, Val::secret(3))]
        .into_iter()
        .collect();
    let mut mem = Memory::new();
    mem.write_array(0x40, &[9, 9, 9, 9], Label::Secret); // secretKey
    mem.write_array(0x44, &[1, 1, 1, 1], Label::Public); // pubArrA
    mem.write_array(0x48, &[2, 2, 2, 2], Label::Public); // pubArrB
    let config = Config::initial(regs, mem, 1);
    let mut schedule: Schedule = [Directive::FetchBranch(true)].into_iter().collect();
    schedule.extend(std::iter::repeat_n(Directive::Fetch, 7)); // pcs 2..8
    let shown_from = schedule.len();
    schedule.extend([
        Directive::ExecuteAddr(2),  // addr = 0x45 (out of bounds!)
        Directive::ExecuteValue(2), // store(x_sec, 0x45)
        Directive::Execute(7),      // forwards x_sec (fwd 45)
        Directive::Execute(8),      // read (x_sec + 0x48): leak
    ]);
    FigureRun::run(
        "6",
        "Spectre v1.1: out-of-bounds store forwards secret data to a leaking load",
        p,
        config,
        schedule,
        shown_from,
    )
}

/// Figure 7: Spectre v4 — a store executes too late and a load reads the
/// stale secret underneath it.
pub fn fig7() -> FigureRun {
    let mut p = Program::new();
    p.entry = 1;
    p.insert(
        1,
        Instr::Op {
            dst: RD,
            op: OpCode::Mov,
            args: vec![Operand::imm(0)],
            next: 2,
        },
    );
    p.insert(
        2,
        Instr::Store {
            src: Operand::imm(0),
            addr: vec![Operand::imm(3), RA.into()],
            next: 3,
        },
    );
    p.insert(
        3,
        Instr::Load {
            dst: RC,
            addr: vec![Operand::imm(0x43)],
            next: 4,
        },
    );
    p.insert(
        4,
        Instr::Load {
            dst: RC,
            addr: vec![Operand::imm(0x44), RC.into()],
            next: 5,
        },
    );
    let regs: RegFile = [(RA, Val::public(0x40))].into_iter().collect();
    let mut mem = Memory::new();
    mem.write_array(0x40, &[5, 5, 5, 5], Label::Secret); // secretKey
    mem.write_array(0x44, &[1, 1, 1, 1], Label::Public); // pubArrA
    let config = Config::initial(regs, mem, 1);
    let schedule: Schedule = [
        Directive::Fetch,
        Directive::Fetch,
        Directive::Fetch,
        Directive::Fetch,
        Directive::Execute(1),
        Directive::ExecuteValue(2), // store value ready; address delayed
        // --- shown directives ---
        Directive::Execute(3),     // reads stale secretKey[3] (read 43)
        Directive::Execute(4),     // read (Key[3] + 0x44): leak
        Directive::ExecuteAddr(2), // store resolves to 43: hazard, rollback
    ]
    .into_iter()
    .collect();
    FigureRun::run(
        "7",
        "Spectre v4: load bypasses an address-unresolved store and leaks stale secret",
        p,
        config,
        schedule,
        6,
    )
}

/// Figure 8: the fence mitigation for Figure 1 — the loads cannot
/// execute before the branch resolves.
pub fn fig8() -> FigureRun {
    let mut p = Program::new();
    p.entry = 1;
    p.insert(
        1,
        Instr::Br {
            op: OpCode::Gt,
            args: vec![Operand::imm(4), RA.into()],
            tru: 2,
            fls: 5,
        },
    );
    p.insert(2, Instr::Fence { next: 3 });
    p.insert(
        3,
        Instr::Load {
            dst: RB,
            addr: vec![Operand::imm(0x40), RA.into()],
            next: 4,
        },
    );
    p.insert(
        4,
        Instr::Load {
            dst: RC,
            addr: vec![Operand::imm(0x44), RB.into()],
            next: 5,
        },
    );
    let regs: RegFile = [(RA, Val::public(9))].into_iter().collect();
    let mut mem = Memory::new();
    mem.write_array(0x40, &[1, 0, 2, 1], Label::Public);
    mem.write_array(0x44, &[0, 3, 1, 2], Label::Public);
    mem.write_array(0x48, &[0x11, 0x22, 0x33, 0x44], Label::Secret);
    let config = Config::initial(regs, mem, 1);
    let schedule: Schedule = [
        Directive::FetchBranch(true), // mispredict into the fenced region
        Directive::Fetch,             // fence (2)
        Directive::Fetch,             // load (3)
        Directive::Fetch,             // load (4)
        Directive::Execute(1),        // branch resolves: rollback past fence
    ]
    .into_iter()
    .collect();
    FigureRun::run(
        "8",
        "fence mitigation: loads blocked until the branch resolves, then squashed",
        p,
        config,
        schedule,
        0,
    )
}

/// Figure 11: Spectre v2 — a mistrained indirect jump sends execution to
/// a disclosure gadget; fences do not help.
pub fn fig11() -> FigureRun {
    let mut p = Program::new();
    p.entry = 1;
    p.insert(
        1,
        Instr::Load {
            dst: RC,
            addr: vec![Operand::imm(0x48), RA.into()],
            next: 2,
        },
    );
    p.insert(2, Instr::Fence { next: 3 });
    p.insert(
        3,
        Instr::Jmpi {
            args: vec![Operand::imm(12), RB.into()],
        },
    );
    p.insert(16, Instr::Fence { next: 17 });
    p.insert(
        17,
        Instr::Load {
            dst: RD,
            addr: vec![Operand::imm(0x44), RC.into()],
            next: 18,
        },
    );
    // The architecturally correct target 12 + rb = 20.
    p.insert(
        20,
        Instr::Op {
            dst: RD,
            op: OpCode::Mov,
            args: vec![Operand::imm(0)],
            next: 21,
        },
    );
    let regs: RegFile = [(RA, Val::public(1)), (RB, Val::public(8))]
        .into_iter()
        .collect();
    let mut mem = Memory::new();
    mem.write_array(0x44, &[0, 3, 1, 2], Label::Public); // array B
    mem.write_array(0x48, &[0x11, 0x22, 0x33, 0x44], Label::Secret); // Key
    let config = Config::initial(regs, mem, 1);
    let schedule: Schedule = [
        Directive::Fetch,        // load Key[1] (index 1)
        Directive::Fetch,        // fence (2)
        Directive::Execute(1),   // read 0x49: rc = Key[1]_sec
        Directive::FetchJump(17), // mistrained indirect jump (3)
        Directive::Fetch,        // the gadget load at 17 (index 4)
        Directive::Retire,       // retire load
        Directive::Retire,       // retire fence: gadget may now execute
        Directive::Execute(4),   // read (Key[1] + 0x44): leak
    ]
    .into_iter()
    .collect();
    FigureRun::run(
        "11",
        "Spectre v2: mistrained indirect branch jumps over the fence into a gadget",
        p,
        config,
        schedule,
        0,
    )
}

/// Figure 12: ret2spec — RSB underflow lets the attacker steer a `ret`.
pub fn fig12() -> FigureRun {
    let mut p = Program::new();
    p.entry = 1;
    p.insert(1, Instr::Call { callee: 3, ret: 2 });
    p.insert(2, Instr::Ret);
    p.insert(3, Instr::Ret);
    // The attacker-chosen target: a landing op.
    p.insert(
        9,
        Instr::Op {
            dst: RD,
            op: OpCode::Mov,
            args: vec![Operand::imm(1)],
            next: 10,
        },
    );
    let regs: RegFile = [(Reg::RSP, Val::public(0x7c))].into_iter().collect();
    let config = Config::initial(regs, Memory::new(), 1);
    let schedule: Schedule = [
        Directive::Fetch,       // call: σ = [1 ↦ push 2]
        Directive::Fetch,       // ret at 3: predicted by RSB to 2, σ pop
        Directive::FetchJump(9), // ret at 2: RSB empty — attacker chooses 9
    ]
    .into_iter()
    .collect();
    FigureRun::run(
        "12",
        "ret2spec: RSB underflow lets the schedule steer speculative execution",
        p,
        config,
        schedule,
        0,
    )
}

/// Figure 13: the retpoline construction defeats indirect-jump
/// mistraining — speculation is caught by the fence self-loop, and the
/// eventual rollback lands on the architecturally correct target.
pub fn fig13() -> FigureRun {
    let mut p = Program::new();
    p.entry = 1;
    // Two fillers so the call marker lands at buffer index 3 as in the
    // figure.
    p.insert(
        1,
        Instr::Op {
            dst: RD,
            op: OpCode::Mov,
            args: vec![Operand::imm(0)],
            next: 2,
        },
    );
    p.insert(
        2,
        Instr::Op {
            dst: RD,
            op: OpCode::Mov,
            args: vec![Operand::imm(0)],
            next: 3,
        },
    );
    p.insert(3, Instr::Call { callee: 5, ret: 4 });
    p.insert(4, Instr::Fence { next: 4 }); // speculation trap: self-loop
    p.insert(
        5,
        Instr::Op {
            dst: RD,
            op: OpCode::Addr,
            args: vec![Operand::imm(12), RB.into()],
            next: 6,
        },
    );
    p.insert(
        6,
        Instr::Store {
            src: RD.into(),
            addr: vec![Operand::Reg(Reg::RSP)],
            next: 7,
        },
    );
    p.insert(7, Instr::Ret);
    // The real indirect target 12 + rb = 20.
    p.insert(
        20,
        Instr::Op {
            dst: RD,
            op: OpCode::Mov,
            args: vec![Operand::imm(7)],
            next: 21,
        },
    );
    let regs: RegFile = [(RB, Val::public(8)), (Reg::RSP, Val::public(0x7c))]
        .into_iter()
        .collect();
    let config = Config::initial(regs, Memory::new(), 1);
    let schedule: Schedule = [
        // Setup: retire the two fillers so the call marker sits at 3.
        Directive::Fetch,
        Directive::Execute(1),
        Directive::Retire,
        Directive::Fetch,
        Directive::Execute(2),
        Directive::Retire,
        // --- the figure's fetch sequence ---
        Directive::Fetch, // call → 3: call, 4: rsp op, 5: store(4, [rsp])
        Directive::Fetch, // 6: rd = addr(12, rb)
        Directive::Fetch, // 7: store(rd, [rsp])
        Directive::Fetch, // ret → 8..11 (jmpi predicted to 4 via RSB)
        Directive::Fetch, // 12: fence (the speculation trap at 4)
        // --- the figure's execute sequence ---
        Directive::Execute(4),       // rsp = 0x7b
        Directive::Execute(6),       // rd = 20
        Directive::ExecuteValue(7),  // store value 20
        Directive::ExecuteAddr(7),   // store addr 0x7b (fwd 7b)
        Directive::Execute(9),       // rtmp forwards 20 from store 7 (fwd 7b)
        Directive::Execute(11),      // jmpi: 20 ≠ 4 → rollback, jump 20
    ]
    .into_iter()
    .collect();
    FigureRun::run(
        "13",
        "retpoline: speculative return parks on a fence; rollback lands on the true target",
        p,
        config,
        schedule,
        6,
    )
}

/// Every figure replay, in paper order.
pub fn all_figures() -> Vec<FigureRun> {
    vec![
        fig1(),
        fig2(),
        fig4a(),
        fig4b(),
        fig5(),
        fig6(),
        fig7(),
        fig8(),
        fig11(),
        fig12(),
        fig13(),
    ]
}
