//! # sct-litmus
//!
//! The litmus corpus for the speculative constant-time semantics and
//! the Pitchfork detector:
//!
//! * [`figures`] — every figure of the paper as an executable replay
//!   (program + configuration + the paper's directive schedule);
//! * [`kocher`] — fifteen Spectre v1 cases in the style of Kocher's
//!   examples, adapted so violations are speculative-only (§4.2);
//! * [`v1p1`] — Spectre v1.1 (speculative store) cases;
//! * [`v4`] — Spectre v4 (store-bypass) cases, flagged only with
//!   forwarding-hazard detection;
//! * [`harness`] — expected-verdict bookkeeping and the case runner.
//!
//! # Example
//!
//! ```
//! use sct_litmus::{harness, kocher};
//!
//! let case = kocher::kocher_01();
//! let result = harness::run_case(&case);
//! assert!(result.sequentially_clean);
//! assert!(result.v1_violation);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod alias;
pub mod corpus;
pub mod figures;
pub mod harness;
pub mod kocher;
pub mod layout;
pub mod v1p1;
pub mod v2;
pub mod v4;

pub use harness::{assert_case, run_case, CaseResult, Expectation, LitmusCase};

/// Every litmus case across all suites.
pub fn all_cases() -> Vec<LitmusCase> {
    let mut out = kocher::all();
    out.extend(v1p1::all());
    out.extend(v4::all());
    out
}
