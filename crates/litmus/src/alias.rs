//! Aliasing-predictor cases (§3.5, Figure 2) — a load receives data
//! from a store *before either address is known*.
//!
//! The paper's Pitchfork cannot explore these ("a prohibitively large
//! number of schedules", §4); our budgeted extension
//! ([`pitchfork::DetectorOptions::alias_mode`]) finds the Figure 2
//! attack automatically.

use crate::layout::{standard_config, B_BASE, SCRATCH, SECRET_BASE};
use sct_asm::builder::{imm, reg, ProgramBuilder};
use sct_core::reg::names::*;
use sct_core::{Config, Program};

/// The Figure 2 shape: a store of a secret register whose target
/// address is still unresolved, followed by loads from *different*
/// public addresses. No branch misprediction is involved at all — only
/// the aliasing predictor forwards the secret.
pub fn fig2_gadget() -> (Program, Config) {
    let mut b = ProgramBuilder::new();
    // The secret arrives in rb (e.g. computed earlier).
    b.load(RB, [imm(SECRET_BASE)]);
    // store rb, [scratch + ra]: the address needs ra, resolvable late.
    b.store(reg(RB), [imm(SCRATCH), reg(RA)]);
    // A benign public load — the aliasing predictor may guess it
    // aliases the store above and forward rb's secret value.
    b.load(RC, [imm(SCRATCH + 2)]);
    // The forwarded value becomes an address: the transmitter.
    b.load(RC, [imm(B_BASE), reg(RC)]);
    let program = b.build().expect("fig2 gadget builds");
    let config = standard_config(program.entry, 1);
    (program, config)
}

#[cfg(test)]
#[allow(deprecated)] // legacy-API coverage of the Detector wrapper
mod tests {
    use super::*;
    use pitchfork::{Detector, DetectorOptions};

    #[test]
    fn fig2_gadget_is_sequentially_clean() {
        use sct_core::sched::sequential::run_sequential;
        let (p, c) = fig2_gadget();
        let out = run_sequential(&p, c, sct_core::Params::paper(), 10_000).unwrap();
        assert!(out.terminal);
        assert!(out.outcome.trace.is_public());
    }

    #[test]
    fn fig2_gadget_evades_v1_and_v4_modes() {
        // Without alias prediction there is no way to move the secret
        // into the load: the store's address (scratch+1) never matches
        // the load's (scratch+2).
        let (p, c) = fig2_gadget();
        for options in [DetectorOptions::v1_mode(16), DetectorOptions::v4_mode(16)] {
            let report = Detector::new(options).analyze(&p, &c);
            assert!(!report.has_violations(), "{report}");
        }
    }

    #[test]
    fn fig2_gadget_is_flagged_in_alias_mode() {
        let (p, c) = fig2_gadget();
        let report = Detector::new(DetectorOptions::alias_mode(16)).analyze(&p, &c);
        assert!(report.has_violations(), "{report}");
        // The witnessing schedule uses the aliasing predictor.
        let v = &report.violations[0];
        assert!(
            v.schedule
                .iter()
                .any(|d| matches!(d, sct_core::Directive::ExecuteFwd(_, _))),
            "schedule should contain an `execute i : fwd j`: {}",
            v.schedule
        );
    }

    #[test]
    fn alias_mode_agrees_with_v1_on_the_kocher_suite() {
        // The extension must not regress the classic detections.
        for case in crate::kocher::all().into_iter().take(4) {
            let base = Detector::new(DetectorOptions::v1_mode(case.bound))
                .analyze(&case.program, &case.config);
            let ext = Detector::new(DetectorOptions::alias_mode(case.bound))
                .analyze(&case.program, &case.config);
            assert_eq!(
                base.has_violations(),
                ext.has_violations(),
                "{} diverged between v1 and alias mode",
                case.name
            );
        }
    }
}
