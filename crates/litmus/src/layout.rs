//! The shared memory layout of the litmus corpus.
//!
//! ```text
//! 0x3F          secret guard cell (for underflow cases)
//! 0x40..0x43    array A   (public, 4 elements — the bounds-checked array)
//! 0x44..0x4B    secret    (8 cells adjacent above A — the leak target)
//! 0x50..0x5F    array B   (public, 16 elements — the transmission array)
//! 0x60..0x63    scratch   (public)
//! 0x7C          initial stack pointer
//! ```

use sct_asm::ConfigBuilder;
use sct_core::reg::names::RA;
use sct_core::{Config, Pc, Val};

/// Base of the bounds-checked public array A.
pub const A_BASE: u64 = 0x40;
/// Length of A (the bounds check compares against this).
pub const A_LEN: u64 = 4;
/// Base of the secret region adjacent above A.
pub const SECRET_BASE: u64 = 0x44;
/// Base of the public transmission array B.
pub const B_BASE: u64 = 0x50;
/// Base of public scratch cells.
pub const SCRATCH: u64 = 0x60;
/// Initial stack pointer.
pub const STACK_TOP: u64 = 0x7c;

/// The standard initial configuration: `ra` holds the attacker index
/// (out of bounds by default), A/B public, the secret region populated.
pub fn standard_config(entry: Pc, attacker_index: u64) -> Config {
    ConfigBuilder::new()
        .reg(RA, Val::public(attacker_index))
        .cell(0x3f, Val::secret(0x55)) // underflow guard
        .public_array(A_BASE, &[1, 0, 2, 1])
        .secret_array(SECRET_BASE, &[0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88])
        .public_array(B_BASE, &[0; 16])
        .public_array(SCRATCH, &[0; 4])
        .rsp(STACK_TOP)
        .entry(entry)
        .build()
}

/// An attacker index that fails the bounds check and lands in the
/// secret region when used unchecked (`A_BASE + 9 = 0x49`).
pub const OOB_INDEX: u64 = 9;
