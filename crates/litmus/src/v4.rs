//! Spectre v4 test cases: loads that speculatively bypass
//! address-unresolved stores and observe stale secrets (the paper's
//! Figure 7 pattern). These are flagged **only** when Pitchfork's
//! forwarding-hazard detection is enabled (§4.2.1).

use crate::harness::{Expectation, LitmusCase};
use crate::layout::{standard_config, B_BASE, SECRET_BASE};
use sct_asm::builder::{imm, reg, ProgramBuilder};
use sct_core::reg::names::*;
use sct_core::OpCode;

fn case(
    name: &'static str,
    description: &'static str,
    build: impl FnOnce(&mut ProgramBuilder),
    attacker_index: u64,
    expect: Expectation,
    bound: usize,
) -> LitmusCase {
    let mut b = ProgramBuilder::new();
    build(&mut b);
    let program = b.build().unwrap_or_else(|e| panic!("{name}: {e}"));
    let config = standard_config(program.entry, attacker_index);
    LitmusCase {
        name,
        description,
        program,
        config,
        expect,
        bound,
    }
}

/// `v4_01`: the Figure 7 gadget — zeroing store delayed, stale secret
/// read and transmitted.
///
/// `ra` holds the store's base address so its resolution genuinely
/// requires execution; the load's address is a constant the machine can
/// issue immediately.
pub fn v4_01() -> LitmusCase {
    case(
        "v4_01",
        "fig. 7: delayed zeroing store, stale secret leaks",
        |b| {
            // secret[0] = 0; rc = secret[0]; rc = B[rc];
            b.store(imm(0), [reg(RA)]); // address via register: resolvable late
            b.load(RC, [imm(SECRET_BASE)]);
            b.load(RC, [imm(B_BASE), reg(RC)]);
        },
        SECRET_BASE, // ra points at the secret cell being sanitized
        Expectation::V4_ONLY,
        16,
    )
}

/// `v4_02`: two sanitizing stores; only the second one matters, and the
/// load pair still slips underneath it.
pub fn v4_02() -> LitmusCase {
    case(
        "v4_02",
        "double sanitize, load pair bypasses the second store",
        |b| {
            b.store(imm(0), [reg(RA)]);
            b.op(RD, OpCode::Add, [reg(RA), imm(1)]);
            b.store(imm(0), [reg(RD)]);
            b.load(RC, [imm(SECRET_BASE + 1)]);
            b.load(RC, [imm(B_BASE), reg(RC)]);
        },
        SECRET_BASE,
        Expectation::V4_ONLY,
        16,
    )
}

/// `v4_03`: fence between the sanitizing store and the loads — safe.
pub fn v4_03() -> LitmusCase {
    case(
        "v4_03",
        "fig. 7 gadget with a fence after the store: safe",
        |b| {
            b.store(imm(0), [reg(RA)]);
            b.fence();
            b.load(RC, [imm(SECRET_BASE)]);
            b.load(RC, [imm(B_BASE), reg(RC)]);
        },
        SECRET_BASE,
        Expectation::SAFE,
        16,
    )
}

/// `v4_04`: the stale secret transmits through a branch condition.
pub fn v4_04() -> LitmusCase {
    case(
        "v4_04",
        "stale secret feeds a branch condition",
        |b| {
            b.store(imm(0), [reg(RA)]);
            b.load(RC, [imm(SECRET_BASE)]);
            b.br(OpCode::Eq, [reg(RC), imm(0)], "z", "out");
            b.label("z");
            b.op(RD, OpCode::Add, [reg(RD), imm(1)]);
            b.label("out");
        },
        SECRET_BASE,
        Expectation::V4_ONLY,
        16,
    )
}

/// The whole suite.
pub fn all() -> Vec<LitmusCase> {
    vec![v4_01(), v4_02(), v4_03(), v4_04()]
}
