//! Spectre v2 cases — mistrained indirect jumps (Figure 11) and the
//! retpoline defense (Figure 13, Appendix A).
//!
//! The paper's Pitchfork does not model indirect-jump prediction (§4);
//! these cases exercise our *extension*
//! ([`pitchfork::DetectorOptions::v2_mode`]) which explores mistrained
//! `jmpi` targets.

use crate::layout::{standard_config, A_BASE, B_BASE, SECRET_BASE};
use sct_asm::builder::{imm, reg, ProgramBuilder};
use sct_core::reg::names::*;
use sct_core::{Config, OpCode, Program, Reg};

/// A v2 victim: a function-pointer dispatch. The secret is in a
/// register when the jump happens; a disclosure gadget elsewhere in the
/// binary turns it into an address. Architecturally the jump always
/// goes to the benign handler; a mistrained predictor sends speculation
/// into the gadget.
pub fn indirect_dispatch() -> (Program, Config) {
    let mut b = ProgramBuilder::new();
    b.entry("main");
    b.label("main");
    // The secret is live in rc when the dispatch happens.
    b.load(RC, [imm(SECRET_BASE)]);
    // Dispatch through a table slot (architecturally → `handler`).
    b.load(RD, [imm(A_BASE)]);
    b.jmpi([reg(RD)]);
    b.label("gadget");
    b.load(RE, [imm(B_BASE), reg(RC)]); // transmit rc through an address
    b.jmp("end");
    b.label("handler");
    let handler_pc = b.here();
    b.op(RE, OpCode::Add, [reg(RE), imm(1)]);
    b.label("end");
    let program = b.build().expect("dispatch builds");
    let mut config = standard_config(program.entry, 0);
    config.mem.write(A_BASE, sct_core::Val::public(handler_pc));
    (program, config)
}

/// The same dispatch, retpolined (Figure 13): the indirect jump is
/// replaced by a call whose saved return address is overwritten with
/// the computed target. The RSB predicts the instruction after the
/// call — a fence self-loop — so speculation parks harmlessly until the
/// rollback redirects to the architecturally correct handler.
pub fn retpolined_dispatch() -> (Program, Config) {
    let mut b = ProgramBuilder::new();
    b.entry("main");
    b.label("main");
    b.load(RC, [imm(SECRET_BASE)]);
    b.load(RD, [imm(A_BASE)]); // the computed target
    b.call("retpoline_thunk");
    // The call's return point: the speculation trap.
    b.label("spec_trap");
    b.fence();
    b.jmp("spec_trap");
    b.label("retpoline_thunk");
    // Overwrite the saved return address with the real target, then ret.
    b.store(reg(RD), [reg(Reg::RSP)]);
    b.ret();
    b.label("gadget");
    b.load(RE, [imm(B_BASE), reg(RC)]);
    b.jmp("end");
    b.label("handler");
    let handler_pc = b.here();
    b.op(RE, OpCode::Add, [reg(RE), imm(1)]);
    b.label("end");
    let program = b.build().expect("retpoline builds");
    let mut config = standard_config(program.entry, 0);
    config.mem.write(A_BASE, sct_core::Val::public(handler_pc));
    (program, config)
}

#[cfg(test)]
#[allow(deprecated)] // legacy-API coverage of the Detector wrapper
mod tests {
    use super::*;
    use pitchfork::{Detector, DetectorOptions};

    #[test]
    fn dispatch_is_clean_without_mistraining() {
        let (p, c) = indirect_dispatch();
        let report = Detector::new(DetectorOptions::v1_mode(16)).analyze(&p, &c);
        assert!(!report.has_violations(), "{report}");
    }

    #[test]
    fn dispatch_is_flagged_with_v2_mistraining() {
        let (p, c) = indirect_dispatch();
        let report = Detector::new(DetectorOptions::v2_mode(16)).analyze(&p, &c);
        assert!(report.has_violations(), "{report}");
    }

    #[test]
    fn dispatch_is_sequentially_clean() {
        use sct_core::sched::sequential::run_sequential;
        let (p, c) = indirect_dispatch();
        let out = run_sequential(&p, c, sct_core::Params::paper(), 100_000).unwrap();
        assert!(out.terminal);
        assert_eq!(out.config.regs.read(RE).bits, 1, "handler ran");
        assert!(out.outcome.trace.is_public());
    }

    #[test]
    fn retpoline_is_clean_even_with_mistraining() {
        let (p, c) = retpolined_dispatch();
        for options in [
            DetectorOptions::v1_mode(16),
            DetectorOptions::v2_mode(16),
            DetectorOptions::v4_mode(12),
        ] {
            let report = Detector::new(options).analyze(&p, &c);
            assert!(
                !report.has_violations(),
                "retpoline flagged under {options:?}: {report}"
            );
        }
    }

    #[test]
    fn retpoline_still_reaches_the_handler() {
        use sct_core::sched::sequential::run_sequential;
        let (p, c) = retpolined_dispatch();
        let out = run_sequential(&p, c, sct_core::Params::paper(), 100_000).unwrap();
        assert!(out.terminal);
        assert_eq!(out.config.regs.read(RE).bits, 1, "handler ran");
        assert!(out.outcome.trace.is_public());
    }
}
