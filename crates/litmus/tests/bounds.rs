//! Speculation-bound dependence: a leak is only reachable when the
//! reorder buffer is deep enough to hold the whole transient gadget —
//! the knob behind the paper's 250-vs-20 trade-off.


// Legacy-API coverage: this file deliberately exercises the deprecated
// `Detector`/`BatchAnalyzer` wrappers to pin their delegation behaviour.
#![allow(deprecated)]

use pitchfork::{Detector, DetectorOptions};
use sct_litmus::kocher;

#[test]
fn kocher_01_needs_bound_three() {
    let case = kocher::kocher_01();
    // Bound 2: the branch plus one load fit, but not the transmitter.
    for bound in [1, 2] {
        let r = Detector::new(DetectorOptions::v1_mode(bound))
            .analyze(&case.program, &case.config);
        assert!(!r.has_violations(), "bound {bound} should be too shallow");
    }
    for bound in [3, 4, 8, 32] {
        let r = Detector::new(DetectorOptions::v1_mode(bound))
            .analyze(&case.program, &case.config);
        assert!(r.has_violations(), "bound {bound} should expose the leak");
    }
}

/// A v1 gadget whose transmitter sits `fillers` instructions past the
/// bounds check: the window must span the branch, the fillers, and both
/// loads for the leak to be transient-reachable.
fn distant_gadget(fillers: usize) -> (sct_core::Program, sct_core::Config) {
    use sct_asm::builder::{imm, reg, ProgramBuilder};
    use sct_core::reg::names::{RA, RB, RC, RD};
    use sct_core::OpCode;
    let mut b = ProgramBuilder::new();
    b.br(OpCode::Gt, [imm(4), reg(RA)], "then", "out");
    b.label("then");
    for _ in 0..fillers {
        b.op(RD, OpCode::Add, [reg(RD), imm(1)]);
    }
    b.load(RB, [imm(0x40), reg(RA)]);
    b.load(RC, [imm(0x50), reg(RB)]);
    b.label("out");
    let program = b.build().unwrap();
    let config = sct_litmus::layout::standard_config(program.entry, 9);
    (program, config)
}

#[test]
fn distant_gadgets_need_wider_windows() {
    // With 6 fillers the gadget needs branch + 6 + 2 loads = 9 slots.
    let (program, config) = distant_gadget(6);
    for bound in [4, 8] {
        let r = Detector::new(DetectorOptions::v1_mode(bound)).analyze(&program, &config);
        assert!(!r.has_violations(), "bound {bound} cannot reach the gadget");
    }
    for bound in [9, 16] {
        let r = Detector::new(DetectorOptions::v1_mode(bound)).analyze(&program, &config);
        assert!(r.has_violations(), "bound {bound} reaches the gadget");
    }
}

#[test]
fn minimal_flagging_bound_is_monotone() {
    // Once a case is flagged at bound b, it stays flagged at every
    // deeper bound (more speculation never hides a leak).
    let case = kocher::kocher_05();
    let mut flagged_at = None;
    for bound in 1..=12 {
        let r = Detector::new(DetectorOptions::v1_mode(bound))
            .analyze(&case.program, &case.config);
        if let Some(at) = flagged_at {
            assert!(
                r.has_violations(),
                "flagged at bound {at} but clean at deeper bound {bound}"
            );
        } else if r.has_violations() {
            flagged_at = Some(bound);
        }
    }
    assert!(flagged_at.is_some(), "never flagged up to bound 12");
}

#[test]
fn exploration_grows_with_bound_and_distance() {
    // Full exploration (violations do not cut paths): deeper windows
    // over longer transient regions cost strictly more states.
    let states = |fillers: usize, bound: usize| {
        let (program, config) = distant_gadget(fillers);
        let mut options = DetectorOptions::v1_mode(bound);
        options.explorer.stop_path_on_violation = false;
        options.explorer.max_violations = usize::MAX;
        Detector::new(options).analyze(&program, &config).stats.states
    };
    assert!(states(6, 12) > states(6, 4));
    assert!(states(10, 16) > states(2, 16));
}
