//! The litmus corpus against its expected verdicts — the §4.2 sanity
//! check ("we create and analyze a set of Spectre v1 and v1.1 test
//! cases, and ensure we flag their SCT violations"), extended with v4
//! cases and safe controls.

use sct_litmus::{assert_case, kocher, v1p1, v4};

#[test]
fn kocher_suite_matches_expectations() {
    for case in kocher::all() {
        assert_case(&case);
    }
}

#[test]
fn v1p1_suite_matches_expectations() {
    for case in v1p1::all() {
        assert_case(&case);
    }
}

#[test]
fn v4_suite_matches_expectations() {
    for case in v4::all() {
        assert_case(&case);
    }
}

/// Proposition B.11 over the corpus: every case Pitchfork reports clean
/// in both modes is also sequentially constant-time.
#[test]
fn sct_implies_sequential_ct_on_corpus() {
    for case in sct_litmus::all_cases() {
        let r = sct_litmus::run_case(&case);
        if !r.v1_violation && !r.v4_violation {
            assert!(
                r.sequentially_clean,
                "{}: clean speculative verdicts but sequential leak",
                case.name
            );
        }
    }
}
