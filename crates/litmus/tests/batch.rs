//! The batch engine against the whole litmus corpus: one shared-arena
//! pass per mode must reproduce every per-case verdict — and with
//! deduplication on, never explore more states than the seed's
//! duplicate-blind engine would.


// Legacy-API coverage: this file deliberately exercises the deprecated
// `Detector`/`BatchAnalyzer` wrappers to pin their delegation behaviour.
#![allow(deprecated)]

use pitchfork::{BatchAnalyzer, Detector, DetectorOptions};
use sct_litmus::{all_cases, harness};

#[test]
fn batch_verdicts_match_per_case_detectors() {
    let cases = all_cases();
    let verdicts = harness::run_corpus(&cases);
    for case in &cases {
        let (v1, v4) = verdicts
            .violations(case.name)
            .unwrap_or_else(|| panic!("{} missing from batch", case.name));
        assert_eq!(v1, case.expect.v1_violation, "{}: v1 (batch)", case.name);
        assert_eq!(v4, case.expect.v4_violation, "{}: v4 (batch)", case.name);
    }
    assert_eq!(verdicts.v1.totals.programs, cases.len());
}

#[test]
fn dedup_never_explores_more_and_agrees_everywhere() {
    let mut pruned_somewhere = 0usize;
    for case in all_cases() {
        for v4 in [false, true] {
            let mk = |dedup: bool| {
                if v4 {
                    DetectorOptions::v4_mode(case.bound.max(20))
                } else {
                    DetectorOptions::v1_mode(case.bound.max(20))
                }
                .dedup(dedup)
            };
            let on = Detector::new(mk(true)).analyze(&case.program, &case.config);
            let off = Detector::new(mk(false)).analyze(&case.program, &case.config);
            assert_eq!(
                on.has_violations(),
                off.has_violations(),
                "{} (v4={v4}): dedup changed the verdict",
                case.name
            );
            assert!(
                on.stats.states <= off.stats.states,
                "{} (v4={v4}): dedup explored more states",
                case.name
            );
            if on.stats.states < off.stats.states {
                pruned_somewhere += 1;
            }
        }
    }
    assert!(
        pruned_somewhere > 0,
        "dedup must strictly reduce exploration on at least one case at bound >= 20"
    );
}

#[test]
fn corpus_batch_stats_accumulate() {
    let cases = all_cases();
    let batch = BatchAnalyzer::new(DetectorOptions::v1_mode(16))
        .analyze_all(harness::batch_items(&cases));
    let sum: usize = batch.outcomes.iter().map(|o| o.report.stats.states).sum();
    assert_eq!(batch.totals.states, sum);
    assert!(batch.totals.flagged > 0);
    assert!(batch.states_per_sec() >= 0.0);
}
