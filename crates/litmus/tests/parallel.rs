//! Parallel-vs-serial equivalence over the textual corpus: the
//! multi-threaded frontier (`threads > 1`) must reach the same verdict
//! as the serial engine on every case, in both detector modes, under
//! every search strategy, at every tested worker count.
//!
//! The soundness argument mirrors the strategy-equivalence suite: with
//! deduplication on and the budget not hit, any expansion order —
//! including a timing-dependent parallel one — expands exactly the set
//! of distinct reachable states, so a witness exists in one order iff
//! it exists in all. Parallelism adds only *which worker gets there
//! first*, never *whether anyone does*.

use pitchfork::StrategyKind;
use sct_litmus::corpus;
use sct_litmus::harness::{run_corpus_parallel, run_corpus_with_strategy};

const THREAD_COUNTS: [usize; 3] = [2, 4, 8];

/// All 23 textual corpus entries × all four strategies × threads ∈
/// {2, 4, 8}: verdicts identical to the serial baseline, case for
/// case, in both modes. Exhaustive state counts must match too — the
/// parallel engine expands the same distinct-state set, not merely an
/// equally-flagged one.
#[test]
fn parallel_verdicts_match_serial_for_every_strategy() {
    let cases = corpus::cases();
    assert!(cases.len() >= 23, "corpus shrank to {}", cases.len());
    for strategy in StrategyKind::ALL {
        let serial = run_corpus_with_strategy(&cases, strategy);
        for threads in THREAD_COUNTS {
            let par = run_corpus_parallel(&cases, strategy, threads);
            for case in &cases {
                let want = serial.violations(case.name).expect("serial ran case");
                let have = par.violations(case.name).expect("parallel ran case");
                assert_eq!(
                    have,
                    want,
                    "{}: verdicts differ at {} threads under `{}` (v1, v4)",
                    case.name,
                    threads,
                    strategy.name()
                );
                // And with the recorded expectations, transitively.
                assert_eq!(
                    have,
                    (case.expect.v1_violation, case.expect.v4_violation),
                    "{}: parallel disagrees with the expectation",
                    case.name
                );
            }
            for (s, p) in serial
                .v1
                .outcomes
                .iter()
                .chain(serial.v4.outcomes.iter())
                .zip(par.v1.outcomes.iter().chain(par.v4.outcomes.iter()))
            {
                assert_eq!(s.name, p.name);
                assert!(
                    !p.report.stats.truncated,
                    "{}: corpus must run below the budget for the \
                     state-count comparison to be meaningful",
                    p.name
                );
                assert_eq!(
                    p.report.stats.states,
                    s.report.stats.states,
                    "{}: distinct-state count differs at {} threads ({})",
                    p.name,
                    threads,
                    strategy.name()
                );
                assert_eq!(
                    p.report.stats.steps, s.report.stats.steps,
                    "{}: step count differs",
                    p.name
                );
                assert_eq!(p.report.stats.threads, threads);
                // Witness *sets* agree: same flagged program points.
                assert_eq!(
                    p.report.flagged_pcs(),
                    s.report.flagged_pcs(),
                    "{}: flagged program points differ at {} threads",
                    p.name,
                    threads
                );
            }
        }
    }
}

/// The witness lists themselves (not just their program points) agree
/// as sets: every serial violation's (pc, schedule, observation)
/// triple appears in the parallel run and vice versa.
#[test]
fn parallel_witness_sets_match_serial() {
    use std::collections::BTreeSet;
    let cases = corpus::cases();
    let serial = run_corpus_with_strategy(&cases, StrategyKind::Lifo);
    let par = run_corpus_parallel(&cases, StrategyKind::Lifo, 4);
    let key = |r: &pitchfork::Report| -> BTreeSet<(u64, String, String)> {
        r.violations
            .iter()
            .map(|v| (v.pc, v.schedule.to_string(), v.observation.to_string()))
            .collect()
    };
    for (s, p) in serial
        .v1
        .outcomes
        .iter()
        .chain(serial.v4.outcomes.iter())
        .zip(par.v1.outcomes.iter().chain(par.v4.outcomes.iter()))
    {
        assert_eq!(
            key(&s.report),
            key(&p.report),
            "{}: witness sets differ between serial and 4 threads",
            s.name
        );
    }
}

/// Two parallel runs of the same workload agree with each other on
/// everything order-insensitive (states, steps, verdicts) even though
/// their internal schedules differ — the merge step's canonical
/// ordering also makes the violation lists identical.
#[test]
fn parallel_runs_are_reproducible_where_promised() {
    let cases = corpus::cases();
    let a = run_corpus_parallel(&cases, StrategyKind::ViolationLikely, 4);
    let b = run_corpus_parallel(&cases, StrategyKind::ViolationLikely, 4);
    for (x, y) in a.v1.outcomes.iter().zip(b.v1.outcomes.iter()) {
        assert_eq!(x.report.stats.states, y.report.stats.states, "{}", x.name);
        assert_eq!(x.report.stats.steps, y.report.stats.steps, "{}", x.name);
        let render = |r: &pitchfork::Report| {
            r.violations
                .iter()
                .map(|v| format!("{} {} {}", v.pc, v.schedule, v.observation))
                .collect::<Vec<_>>()
        };
        assert_eq!(
            render(&x.report),
            render(&y.report),
            "{}: canonical violation order is not reproducible",
            x.name
        );
    }
}
