//! Strategy equivalence over the textual corpus: every frontier order
//! must reach the same verdict on every case — exploration *order* is a
//! performance knob, never a soundness knob. The visited-set argument:
//! any order expands exactly the set of states reachable under
//! deduplication, so a witness exists in one order iff it exists in
//! all (the budget is the only order-sensitive cutoff, and the corpus
//! runs far below it).

use pitchfork::StrategyKind;
use sct_litmus::corpus;
use sct_litmus::harness::{self, run_corpus_with_strategy};

/// All 23 textual corpus entries: all four strategies agree with the
/// LIFO baseline (and hence the recorded expectations) in both modes.
#[test]
fn all_strategies_agree_on_the_corpus() {
    let cases = corpus::cases();
    assert!(cases.len() >= 23, "corpus shrank to {}", cases.len());
    let baseline = run_corpus_with_strategy(&cases, StrategyKind::Lifo);
    for strategy in StrategyKind::ALL {
        let got = run_corpus_with_strategy(&cases, strategy);
        for case in &cases {
            let want = baseline.violations(case.name).expect("baseline ran case");
            let have = got.violations(case.name).expect("strategy ran case");
            assert_eq!(
                have,
                want,
                "{}: verdicts differ under `{}` (v1, v4)",
                case.name,
                strategy.name()
            );
            // The corpus expectations pin the baseline itself.
            assert_eq!(
                have,
                (case.expect.v1_violation, case.expect.v4_violation),
                "{}: `{}` disagrees with the recorded expectation",
                case.name,
                strategy.name()
            );
        }
        // The strategy actually ran (reports are tagged with its name).
        assert_eq!(got.v1.strategy, strategy.name());
        assert_eq!(got.v4.strategy, strategy.name());
    }
}

/// Insecure cases record where the first witness appeared; secure ones
/// don't. The *values* differ per strategy (that is the point of the
/// strategies); their presence must not.
#[test]
fn first_witness_metrics_track_verdicts() {
    let cases = corpus::cases();
    for strategy in [StrategyKind::Lifo, StrategyKind::Fifo] {
        let got = run_corpus_with_strategy(&cases, strategy);
        for outcome in got.v1.outcomes.iter().chain(got.v4.outcomes.iter()) {
            let stats = outcome.report.stats;
            assert_eq!(
                stats.first_witness_states.is_some(),
                outcome.report.has_violations(),
                "{}: first-witness states vs verdict ({})",
                outcome.name,
                strategy.name()
            );
            assert_eq!(
                stats.first_witness_depth.is_some(),
                outcome.report.has_violations(),
                "{}: first-witness depth vs verdict ({})",
                outcome.name,
                strategy.name()
            );
            if let Some(states) = stats.first_witness_states {
                assert!(states <= stats.states, "{}", outcome.name);
            }
        }
    }
}

/// Every strategy is deterministic: two identical runs produce
/// identical exploration statistics, including the order-sensitive
/// first-witness metrics. (Priority strategies tie-break on insertion
/// sequence for exactly this property.)
#[test]
fn strategies_are_deterministic() {
    let cases = corpus::cases();
    for strategy in StrategyKind::ALL {
        let a = run_corpus_with_strategy(&cases, strategy);
        let b = run_corpus_with_strategy(&cases, strategy);
        for (x, y) in a.v1.outcomes.iter().zip(b.v1.outcomes.iter()) {
            // Solver-memo counters legitimately differ between the two
            // runs (the first warms the process-wide memo); everything
            // order-determined must not.
            let key = |s: &pitchfork::ExploreStats| {
                (
                    s.states,
                    s.deduped,
                    s.frontier_peak,
                    s.schedules,
                    s.steps,
                    s.first_witness_states,
                    s.first_witness_depth,
                    s.truncated,
                )
            };
            assert_eq!(
                key(&x.report.stats),
                key(&y.report.stats),
                "{}: non-deterministic exploration under `{}`",
                x.name,
                strategy.name()
            );
        }
    }
}

/// The per-case attacker-register sweep: derived register sets are
/// sane (public-only, present in the program), `ra`-style index
/// registers are found where expected, and the sweep's verdicts are
/// strategy-independent like every other pass.
#[test]
fn symbolic_sweep_registers_and_verdicts() {
    let cases = corpus::cases();
    let mut widened = 0usize;
    for case in &cases {
        let regs = harness::attacker_regs(case);
        for &r in &regs {
            assert!(
                case.config.regs.read(r).label.is_public(),
                "{}: {} symbolized but secret",
                case.name,
                r.name()
            );
        }
        if regs.len() > 1 {
            widened += 1;
        }
    }
    // The corpus is index-driven: the sweep must widen coverage beyond
    // a single register somewhere, or it is not a sweep.
    assert!(widened > 0, "no case has more than one attacker register");

    // Verdict equivalence of the sweep pass across two orders.
    let items = harness::sweep_batch_items(&cases);
    let run = |strategy: StrategyKind| {
        pitchfork::AnalysisSession::builder()
            .v1_mode(16)
            .strategy(strategy)
            .build()
            .unwrap()
            .run_batch(items.clone())
    };
    let lifo = run(StrategyKind::Lifo);
    let likely = run(StrategyKind::ViolationLikely);
    for outcome in &lifo.outcomes {
        let other = likely.outcome(&outcome.name).expect("same items");
        assert_eq!(
            outcome.report.has_violations(),
            other.report.has_violations(),
            "{}: sweep verdict differs across strategies",
            outcome.name
        );
    }
}
