//! Figure replays: each figure's directive schedule reproduces the
//! leakage (and buffer evolution) the paper shows.

use sct_core::{Directive, Label, Machine, Observation, Params, StepError};
use sct_litmus::figures;

#[test]
fn fig1_trace() {
    let run = figures::fig1();
    assert_eq!(
        run.trace(),
        vec![
            Observation::Read {
                addr: 0x49,
                label: Label::Public
            },
            Observation::Read {
                addr: 0x44 + 0x22,
                label: Label::Secret
            },
        ]
    );
}

#[test]
fn fig2_aliasing_prediction_trace() {
    let run = figures::fig2();
    let shown: Vec<Observation> = run.step_obs[run.shown_from..]
        .iter()
        .flatten()
        .copied()
        .collect();
    // execute 8 → read (x_sec + 0x48)_sec; execute 2:addr → fwd 0x42_pub;
    // execute 7 → rollback, fwd 0x45_pub.
    assert_eq!(
        shown,
        vec![
            Observation::Read {
                addr: 0x48 + 3,
                label: Label::Secret
            },
            Observation::Fwd {
                addr: 0x42,
                label: Label::Public
            },
            Observation::Rollback,
            Observation::Fwd {
                addr: 0x45,
                label: Label::Public
            },
        ]
    );
    // The rollback squashed the two loads: only entries < 7 remain.
    assert_eq!(run.final_config.rob.max(), Some(6));
    assert_eq!(run.final_config.pc, 7);
}

#[test]
fn fig4_correct_and_incorrect_prediction() {
    let a = figures::fig4a();
    assert_eq!(
        a.step_obs.last().unwrap(),
        &vec![Observation::Jump {
            target: 9,
            label: Label::Public
        }]
    );
    // Correct prediction: the speculatively fetched op survives.
    assert_eq!(a.final_config.rob.len(), 3);

    let b = figures::fig4b();
    assert_eq!(
        b.step_obs.last().unwrap(),
        &vec![
            Observation::Rollback,
            Observation::Jump {
                target: 9,
                label: Label::Public
            }
        ]
    );
    // Misprediction: the wrong-path multiply is squashed; the rolled-back
    // front end restarts at 9.
    assert_eq!(b.final_config.pc, 9);
}

#[test]
fn fig5_store_hazard_trace() {
    let run = figures::fig5();
    let shown: Vec<Observation> = run.step_obs[run.shown_from..]
        .iter()
        .flatten()
        .copied()
        .collect();
    assert_eq!(
        shown,
        vec![
            Observation::Fwd {
                addr: 0x43,
                label: Label::Public
            },
            Observation::Rollback,
            Observation::Fwd {
                addr: 0x43,
                label: Label::Public
            },
        ]
    );
    // The load was rolled back; the stores remain.
    assert_eq!(run.final_config.pc, 4);
}

#[test]
fn fig6_v1p1_trace() {
    let run = figures::fig6();
    let shown: Vec<Observation> = run.step_obs[run.shown_from..]
        .iter()
        .flatten()
        .copied()
        .collect();
    assert_eq!(
        shown,
        vec![
            Observation::Fwd {
                addr: 0x45,
                label: Label::Public
            },
            Observation::Fwd {
                addr: 0x45,
                label: Label::Public
            },
            Observation::Read {
                addr: 0x48 + 3,
                label: Label::Secret
            },
        ]
    );
    assert!(run.leaks_secret());
}

#[test]
fn fig7_v4_trace() {
    let run = figures::fig7();
    let shown: Vec<Observation> = run.step_obs[run.shown_from..]
        .iter()
        .flatten()
        .copied()
        .collect();
    assert_eq!(
        shown,
        vec![
            Observation::Read {
                addr: 0x43,
                label: Label::Public
            },
            Observation::Read {
                addr: 0x44 + 5,
                label: Label::Secret
            },
            Observation::Rollback,
            Observation::Fwd {
                addr: 0x43,
                label: Label::Public
            },
        ]
    );
}

#[test]
fn fig8_fence_blocks_loads() {
    let run = figures::fig8();
    // Replay the pre-rollback state and check the loads are blocked.
    let mut m = Machine::with_params(&run.program, run.config.clone(), Params::paper());
    for d in run.schedule.iter().take(4) {
        m.step(d).unwrap();
    }
    assert_eq!(
        m.step(Directive::Execute(3)),
        Err(StepError::FenceBlocked { index: 3 })
    );
    assert_eq!(
        m.step(Directive::Execute(4)),
        Err(StepError::FenceBlocked { index: 4 })
    );
    // Executing the branch rolls everything back; nothing leaked.
    assert!(!run.leaks_secret());
    assert_eq!(run.final_config.pc, 5);
    assert_eq!(run.final_config.rob.len(), 1); // just the resolved jump
}

#[test]
fn fig11_v2_trace_leaks_despite_fences() {
    let run = figures::fig11();
    assert!(run.leaks_secret());
    let last = run.step_obs.last().unwrap();
    assert_eq!(
        last,
        &vec![Observation::Read {
            addr: 0x44 + 0x22,
            label: Label::Secret
        }]
    );
}

#[test]
fn fig12_rsb_underflow_steers_execution() {
    let run = figures::fig12();
    // After the matched call/ret the RSB is empty; the attacker-supplied
    // target 9 becomes the program point.
    assert_eq!(run.final_config.pc, 9);
}

#[test]
fn fig13_retpoline_lands_on_true_target() {
    let run = figures::fig13();
    let last = run.step_obs.last().unwrap();
    assert_eq!(
        last,
        &vec![
            Observation::Rollback,
            Observation::Jump {
                target: 20,
                label: Label::Public
            }
        ]
    );
    // Execution was redirected to the architecturally correct target 20
    // without the attacker ever steering the prediction.
    assert_eq!(run.final_config.pc, 20);
    assert!(!run.leaks_secret());
}

#[test]
fn figure_leak_summary_matches_paper() {
    // Figures 1, 2, 6, 7, 11 demonstrate leaks; 4, 5, 8, 12, 13 do not.
    let expect = [
        ("1", true),
        ("2", true),
        ("4a", false),
        ("4b", false),
        ("5", false),
        ("6", true),
        ("7", true),
        ("8", false),
        ("11", true),
        ("12", false),
        ("13", false),
    ];
    for run in figures::all_figures() {
        let want = expect
            .iter()
            .find(|(id, _)| *id == run.id)
            .unwrap_or_else(|| panic!("unknown figure {}", run.id))
            .1;
        assert_eq!(run.leaks_secret(), want, "figure {}", run.id);
    }
}
