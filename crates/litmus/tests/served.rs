//! The corpus through a live daemon: `harness::run_corpus_served`
//! against an in-process `pitchfork::server::Server`, pinned to the
//! batch-mode verdicts, plus the two-sequential-clients memo-warm
//! property on a single corpus entry.

use pitchfork::client::Client;
use pitchfork::server::Server;
use pitchfork::service::{JobMode, JobSpec, SessionService};
use pitchfork::SessionBuilder;
use sct_litmus::corpus;
use sct_litmus::harness::{self, run_corpus_served};
use std::time::Duration;

fn start_server(label: &str) -> (Server, std::path::PathBuf) {
    let sock = std::env::temp_dir().join(format!(
        "sct_litmus_{label}_{}.sock",
        std::process::id()
    ));
    let session = SessionBuilder::new()
        .v1_mode(16)
        .build()
        .expect("uncached session");
    let server = Server::bind(&sock, SessionService::new(session)).expect("bind");
    (server, sock)
}

/// A corpus slice that covers flagged and safe entries in both modes
/// (kept under the full 23 so the served pass stays quick).
fn subset() -> Vec<corpus::CorpusEntry> {
    corpus::entries()
        .into_iter()
        .filter(|e| {
            matches!(
                e.name,
                "spectre_v1"
                    | "spectre_v1_fenced"
                    | "spectre_v4"
                    | "kocher_03"
                    | "kocher_08"
                    | "ct_select"
            )
        })
        .collect()
}

#[test]
fn served_corpus_matches_batch_verdicts() {
    let entries = subset();
    assert!(entries.len() >= 5, "subset names drifted from the corpus");
    let cases: Vec<_> = entries
        .iter()
        .map(|entry| {
            let asm = corpus::assemble_entry(entry);
            harness::LitmusCase {
                name: entry.name,
                description: "served corpus entry",
                program: asm.program,
                config: asm.config,
                expect: entry.expect,
                bound: entry.bound,
            }
        })
        .collect();
    let batch = harness::run_corpus(&cases);

    let (server, sock) = start_server("corpus");
    let mut client = Client::connect(&sock).expect("connect");
    for (mode, report) in [(JobMode::V1, &batch.v1), (JobMode::V4, &batch.v4)] {
        let served = run_corpus_served(&entries, &mut client, mode).expect("served corpus");
        assert_eq!(served.len(), entries.len());
        for outcome in &served {
            let batch_outcome = report
                .outcome(&outcome.name)
                .unwrap_or_else(|| panic!("{}: missing from batch report", outcome.name));
            // Verdict display strings are the contract ("byte-identical
            // to batch mode"), states pin the exploration itself.
            let view_verdict = outcome.view.verdict.expect("done");
            assert_eq!(
                view_verdict.to_string(),
                batch_outcome.report.verdict().to_string(),
                "{} under {mode:?}",
                outcome.name
            );
            assert_eq!(
                outcome.view.stats.expect("stats").states,
                batch_outcome.report.stats.states,
                "{} under {mode:?}",
                outcome.name
            );
        }
    }
    client.shutdown().expect("shutdown");
    server.wait();
}

#[test]
fn second_client_gets_a_memo_warm_answer() {
    let entry = corpus::entries()
        .into_iter()
        .find(|e| e.name == "spectre_v1")
        .expect("corpus carries spectre_v1");
    // Symbolize the attacker index so the analysis actually queries the
    // solver (fully concrete corpus runs constant-fold every branch).
    let spec = JobSpec {
        bound: Some(entry.bound),
        symbolic: vec![sct_core::reg::names::RA],
        ..JobSpec::default()
    };
    let (server, sock) = start_server("memo");

    let mut first = Client::connect(&sock).expect("first client");
    let id1 = first
        .submit_source(entry.name, entry.source, spec.clone())
        .expect("submit");
    let cold = first
        .wait(id1, Duration::from_secs(60))
        .expect("cold run")
        .stats
        .expect("stats");
    assert!(cold.solver_queries > 0, "symbolic run queries the solver");
    drop(first);

    let mut second = Client::connect(&sock).expect("second client");
    let id2 = second
        .submit_source(entry.name, entry.source, spec)
        .expect("submit again");
    let warm = second
        .wait(id2, Duration::from_secs(60))
        .expect("warm run")
        .stats
        .expect("stats");
    assert_eq!(warm.states, cold.states, "same exploration either way");
    assert!(
        warm.solver_memo_hits > 0,
        "the second client is answered from the first client's memo: {warm:?}"
    );
    assert_eq!(
        warm.solver_memo_misses, 0,
        "nothing left to solve on the repeat submission: {warm:?}"
    );
    second.shutdown().expect("shutdown");
    server.wait();
}
