//! Deterministic fault injection for chaos-testing the analysis
//! service.
//!
//! The injector is **compiled in everywhere but zero-cost when
//! disarmed**, mirroring the `SCT_TELEMETRY=0` pattern: every
//! instrumented I/O site guards itself with [`enabled`] — one relaxed
//! atomic load — and only consults the active [`Plan`] once a plan has
//! actually been armed. With no `SCT_FAULTS` in the environment and no
//! programmatic [`install`], nothing beyond that load ever runs.
//!
//! Faults are **seeded and deterministic**: a [`Trigger`] fires on the
//! Nth arrival at a fault point (`at:N`), on every Nth arrival
//! (`every:N`), or pseudo-randomly (`pct:P`, driven by a xorshift
//! stream derived from the plan seed) — so a failing chaos schedule
//! replays exactly from its `SCT_FAULTS` string.
//!
//! # Fault points
//!
//! | point | site | effect when fired |
//! |---|---|---|
//! | `conn-drop` | transport stream read/write | the op fails with `ConnectionReset` |
//! | `read-stall` | transport stream read | the op sleeps `stall-ms` first |
//! | `write-stall` | transport stream write | the op sleeps `stall-ms` first |
//! | `partial-write` | journal append | only a prefix of the line reaches disk (torn record) |
//! | `snapshot-bit-flip` | cache snapshot load | one seeded bit of the image flips before decode |
//! | `worker-death` | daemon job start | the process aborts (simulated crash) |
//!
//! # Environment syntax
//!
//! `SCT_FAULTS` is a comma-separated clause list:
//!
//! ```text
//! SCT_FAULTS="seed=42,stall-ms=150,conn-drop=at:3,read-stall=every:5,snapshot-bit-flip=always"
//! ```
//!
//! `seed=N` seeds the `pct` stream and the bit-flip position;
//! `stall-ms=N` sets the stall duration (default 100); every other
//! clause is `<point>=<trigger>` with trigger one of `at:N`,
//! `every:N`, `pct:P` (0–100), or `always`. `SCT_FAULTS=0` (or empty,
//! or unset) leaves the injector disarmed.
//!
//! Every fired fault increments the `fault_injected_total` counter in
//! the `sct-telemetry` registry (and a per-point internal counter the
//! chaos tests assert on).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{LazyLock, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// An instrumented site faults can be injected at.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultPoint {
    /// A transport stream read/write fails with `ConnectionReset`.
    ConnDrop,
    /// A transport stream read sleeps for the stall duration first.
    ReadStall,
    /// A transport stream write sleeps for the stall duration first.
    WriteStall,
    /// A journal append tears: only a prefix of the line hits disk.
    PartialWrite,
    /// One seeded bit of a cache snapshot image flips before decode.
    SnapshotBitFlip,
    /// The daemon aborts at job start (simulated worker crash).
    WorkerDeath,
}

/// How many fault points exist (array sizing).
const POINTS: usize = 6;

impl FaultPoint {
    /// Every fault point, in slot order.
    pub const ALL: [FaultPoint; POINTS] = [
        FaultPoint::ConnDrop,
        FaultPoint::ReadStall,
        FaultPoint::WriteStall,
        FaultPoint::PartialWrite,
        FaultPoint::SnapshotBitFlip,
        FaultPoint::WorkerDeath,
    ];

    /// The stable configuration name (`conn-drop`, `read-stall`, ...).
    pub fn name(self) -> &'static str {
        match self {
            FaultPoint::ConnDrop => "conn-drop",
            FaultPoint::ReadStall => "read-stall",
            FaultPoint::WriteStall => "write-stall",
            FaultPoint::PartialWrite => "partial-write",
            FaultPoint::SnapshotBitFlip => "snapshot-bit-flip",
            FaultPoint::WorkerDeath => "worker-death",
        }
    }

    /// Parse a configuration name (the inverse of [`FaultPoint::name`]).
    pub fn parse(name: &str) -> Option<FaultPoint> {
        FaultPoint::ALL.into_iter().find(|p| p.name() == name.trim())
    }

    fn slot(self) -> usize {
        match self {
            FaultPoint::ConnDrop => 0,
            FaultPoint::ReadStall => 1,
            FaultPoint::WriteStall => 2,
            FaultPoint::PartialWrite => 3,
            FaultPoint::SnapshotBitFlip => 4,
            FaultPoint::WorkerDeath => 5,
        }
    }
}

/// When a fault point fires, in terms of **arrivals** (times execution
/// reaches the instrumented site since the plan was armed).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trigger {
    /// Fire on exactly the Nth arrival (1-based), once.
    At(u64),
    /// Fire on every Nth arrival (`Every(1)` = every arrival).
    Every(u64),
    /// Fire on each arrival with probability P% from the seeded
    /// xorshift stream (deterministic for a fixed seed and arrival
    /// sequence).
    Pct(u8),
}

impl Trigger {
    fn parse(text: &str) -> Result<Trigger, PlanError> {
        let text = text.trim();
        if text == "always" {
            return Ok(Trigger::Every(1));
        }
        let (kind, num) = text
            .split_once(':')
            .ok_or_else(|| PlanError(format!("bad trigger `{text}` (want at:N, every:N, pct:P, or always)")))?;
        let n: u64 = num
            .trim()
            .parse()
            .map_err(|_| PlanError(format!("bad trigger count in `{text}`")))?;
        match kind.trim() {
            "at" if n >= 1 => Ok(Trigger::At(n)),
            "every" if n >= 1 => Ok(Trigger::Every(n)),
            "pct" if n <= 100 => Ok(Trigger::Pct(n as u8)),
            _ => Err(PlanError(format!("bad trigger `{text}`"))),
        }
    }
}

/// A malformed plan specification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlanError(pub String);

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SCT_FAULTS: {}", self.0)
    }
}

impl std::error::Error for PlanError {}

/// A seeded fault schedule: which points fire, when, and how long
/// stalls last.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Plan {
    /// Seeds the `pct` stream and the snapshot bit-flip position.
    pub seed: u64,
    /// How long `read-stall` / `write-stall` sleep when they fire.
    pub stall: Duration,
    slots: [Option<Trigger>; POINTS],
}

impl Plan {
    /// An empty plan (no point armed) under `seed`.
    pub fn new(seed: u64) -> Plan {
        Plan {
            seed,
            stall: Duration::from_millis(100),
            slots: [None; POINTS],
        }
    }

    /// Arm `point` with `trigger` (builder style).
    pub fn point(mut self, point: FaultPoint, trigger: Trigger) -> Plan {
        self.slots[point.slot()] = Some(trigger);
        self
    }

    /// Set the stall duration (builder style).
    pub fn stall_ms(mut self, ms: u64) -> Plan {
        self.stall = Duration::from_millis(ms);
        self
    }

    /// The trigger armed at `point`, if any.
    pub fn trigger(&self, point: FaultPoint) -> Option<Trigger> {
        self.slots[point.slot()]
    }

    /// Parse an `SCT_FAULTS` clause list (see the crate docs for the
    /// syntax). An empty spec yields an empty (harmless) plan.
    pub fn parse(spec: &str) -> Result<Plan, PlanError> {
        let mut plan = Plan::new(0);
        for clause in spec.split(',') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (key, value) = clause
                .split_once('=')
                .ok_or_else(|| PlanError(format!("bad clause `{clause}` (want key=value)")))?;
            match key.trim() {
                "seed" => {
                    plan.seed = value
                        .trim()
                        .parse()
                        .map_err(|_| PlanError(format!("bad seed `{value}`")))?;
                }
                "stall-ms" => {
                    let ms: u64 = value
                        .trim()
                        .parse()
                        .map_err(|_| PlanError(format!("bad stall-ms `{value}`")))?;
                    plan.stall = Duration::from_millis(ms);
                }
                point => {
                    let point = FaultPoint::parse(point)
                        .ok_or_else(|| PlanError(format!("unknown fault point `{point}`")))?;
                    plan.slots[point.slot()] = Some(Trigger::parse(value)?);
                }
            }
        }
        Ok(plan)
    }

    /// `true` when no point is armed (the plan injects nothing).
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(Option::is_none)
    }
}

// ----- the armed state ----------------------------------------------------

struct State {
    /// Fast-path guard: `false` means no plan is armed and every
    /// [`should_fire`] returns immediately.
    enabled: AtomicBool,
    plan: Mutex<Option<Plan>>,
    arrivals: [AtomicU64; POINTS],
    fired: [AtomicU64; POINTS],
    /// The seeded xorshift stream behind `pct` triggers.
    rng: AtomicU64,
}

fn env_plan() -> Option<Plan> {
    let spec = std::env::var("SCT_FAULTS").ok()?;
    if matches!(spec.trim(), "" | "0" | "off" | "false") {
        return None;
    }
    match Plan::parse(&spec) {
        Ok(plan) if !plan.is_empty() => Some(plan),
        Ok(_) => None,
        Err(e) => {
            // A typo'd schedule must not silently run fault-free: say
            // so, then run fault-free (aborting here would turn every
            // env mistake into an outage).
            eprintln!("{e} (injector disarmed)");
            None
        }
    }
}

static STATE: LazyLock<State> = LazyLock::new(|| {
    let plan = env_plan();
    State {
        enabled: AtomicBool::new(plan.is_some()),
        rng: AtomicU64::new(plan.as_ref().map(|p| rng_seed(p.seed)).unwrap_or(1)),
        plan: Mutex::new(plan),
        arrivals: Default::default(),
        fired: Default::default(),
    }
});

fn rng_seed(seed: u64) -> u64 {
    // Never let the xorshift state be 0 (fixed point).
    seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1
}

fn lock_plan() -> MutexGuard<'static, Option<Plan>> {
    STATE.plan.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Whether a fault plan is armed. One relaxed atomic load — the guard
/// every instrumented site checks first, so a disarmed injector costs
/// nothing on hot paths.
#[inline]
pub fn enabled() -> bool {
    STATE.enabled.load(Ordering::Relaxed)
}

/// Arm `plan`, replacing any active one and resetting all arrival and
/// fired counters (programmatic equivalent of setting `SCT_FAULTS`;
/// the chaos tests use this).
pub fn install(plan: Plan) {
    let state = &*STATE;
    let mut slot = lock_plan();
    for a in &state.arrivals {
        a.store(0, Ordering::Relaxed);
    }
    for f in &state.fired {
        f.store(0, Ordering::Relaxed);
    }
    state.rng.store(rng_seed(plan.seed), Ordering::Relaxed);
    let armed = !plan.is_empty();
    *slot = Some(plan);
    state.enabled.store(armed, Ordering::Relaxed);
}

/// Disarm the injector: instrumented sites go back to the single
/// relaxed-load fast path.
pub fn disarm() {
    let state = &*STATE;
    let mut slot = lock_plan();
    state.enabled.store(false, Ordering::Relaxed);
    // The counters describe the schedule that was armed; ending it
    // zeroes them, so `arrivals`/`fired` never leak across schedules.
    for a in &state.arrivals {
        a.store(0, Ordering::Relaxed);
    }
    for f in &state.fired {
        f.store(0, Ordering::Relaxed);
    }
    *slot = None;
}

fn next_pct() -> u8 {
    // Relaxed xorshift64 step; racing threads may share a step, which
    // only perturbs `pct` schedules (the deterministic triggers `at`
    // and `every` never touch the stream).
    let mut x = STATE.rng.load(Ordering::Relaxed);
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    STATE.rng.store(x, Ordering::Relaxed);
    (x % 100) as u8
}

/// Count one arrival at `point` and decide whether its fault fires.
/// `false` immediately when the injector is disarmed; otherwise the
/// armed trigger (if any) is evaluated against this arrival's ordinal.
/// Firing increments `fault_injected_total` in the telemetry registry.
#[inline]
pub fn should_fire(point: FaultPoint) -> bool {
    if !enabled() {
        return false;
    }
    should_fire_slow(point)
}

#[cold]
fn should_fire_slow(point: FaultPoint) -> bool {
    let trigger = match &*lock_plan() {
        Some(plan) => match plan.trigger(point) {
            Some(t) => t,
            None => return false,
        },
        None => return false,
    };
    let arrival = STATE.arrivals[point.slot()].fetch_add(1, Ordering::Relaxed) + 1;
    let fire = match trigger {
        Trigger::At(n) => arrival == n,
        Trigger::Every(n) => arrival.is_multiple_of(n),
        Trigger::Pct(p) => next_pct() < p,
    };
    if fire {
        STATE.fired[point.slot()].fetch_add(1, Ordering::Relaxed);
        if sct_telemetry::enabled() {
            sct_telemetry::counter(sct_telemetry::names::FAULT_INJECTED).inc();
        }
    }
    fire
}

/// The armed plan's stall duration (the default 100ms when disarmed —
/// callers only ask after a stall point fired).
pub fn stall() -> Duration {
    lock_plan()
        .as_ref()
        .map(|p| p.stall)
        .unwrap_or(Duration::from_millis(100))
}

/// Times `point` has fired since the plan was armed.
pub fn fired(point: FaultPoint) -> u64 {
    STATE.fired[point.slot()].load(Ordering::Relaxed)
}

/// Times any point has fired since the plan was armed.
pub fn fired_total() -> u64 {
    STATE.fired.iter().map(|f| f.load(Ordering::Relaxed)).sum()
}

/// Arrivals counted at `point` since the plan was armed.
pub fn arrivals(point: FaultPoint) -> u64 {
    STATE.arrivals[point.slot()].load(Ordering::Relaxed)
}

/// Flip one seeded bit of `bytes` in place (the `snapshot-bit-flip`
/// payload): the position derives from the armed plan's seed and the
/// image length, so a given schedule corrupts the same bit every run.
/// Empty input is left untouched.
pub fn flip_bit(bytes: &mut [u8]) {
    if bytes.is_empty() {
        return;
    }
    let seed = lock_plan().as_ref().map(|p| p.seed).unwrap_or(0);
    let mut x = rng_seed(seed ^ bytes.len() as u64);
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    let bit = (x as usize) % (bytes.len() * 8);
    bytes[bit / 8] ^= 1 << (bit % 8);
}

#[cfg(test)]
mod tests {
    use super::*;

    // The armed state is process-global, so every test runs against
    // its own installed plan and disarms on exit; the suite is
    // single-test-at-a-time within this module via a lock.
    static GATE: Mutex<()> = Mutex::new(());

    fn gated() -> MutexGuard<'static, ()> {
        GATE.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn disarmed_by_default_costs_one_load() {
        let _g = gated();
        disarm();
        assert!(!enabled());
        assert!(!should_fire(FaultPoint::ConnDrop));
        assert_eq!(arrivals(FaultPoint::ConnDrop), 0, "disarmed arrivals are not counted");
    }

    #[test]
    fn at_trigger_fires_exactly_once() {
        let _g = gated();
        install(Plan::new(7).point(FaultPoint::ConnDrop, Trigger::At(3)));
        let fires: Vec<bool> = (0..6).map(|_| should_fire(FaultPoint::ConnDrop)).collect();
        assert_eq!(fires, [false, false, true, false, false, false]);
        assert_eq!(fired(FaultPoint::ConnDrop), 1);
        disarm();
    }

    #[test]
    fn every_trigger_is_periodic() {
        let _g = gated();
        install(Plan::new(7).point(FaultPoint::ReadStall, Trigger::Every(2)));
        let fires: Vec<bool> = (0..6).map(|_| should_fire(FaultPoint::ReadStall)).collect();
        assert_eq!(fires, [false, true, false, true, false, true]);
        disarm();
    }

    #[test]
    fn pct_stream_is_seed_deterministic() {
        let _g = gated();
        install(Plan::new(99).point(FaultPoint::WriteStall, Trigger::Pct(50)));
        let a: Vec<bool> = (0..32).map(|_| should_fire(FaultPoint::WriteStall)).collect();
        install(Plan::new(99).point(FaultPoint::WriteStall, Trigger::Pct(50)));
        let b: Vec<bool> = (0..32).map(|_| should_fire(FaultPoint::WriteStall)).collect();
        assert_eq!(a, b, "same seed, same schedule");
        assert!(a.iter().any(|&f| f), "pct:50 over 32 draws fires at least once");
        disarm();
    }

    #[test]
    fn parse_round_trips_the_documented_syntax() {
        let plan =
            Plan::parse("seed=42, stall-ms=150, conn-drop=at:3, read-stall=every:5, snapshot-bit-flip=always")
                .expect("spec parses");
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.stall, Duration::from_millis(150));
        assert_eq!(plan.trigger(FaultPoint::ConnDrop), Some(Trigger::At(3)));
        assert_eq!(plan.trigger(FaultPoint::ReadStall), Some(Trigger::Every(5)));
        assert_eq!(plan.trigger(FaultPoint::SnapshotBitFlip), Some(Trigger::Every(1)));
        assert_eq!(plan.trigger(FaultPoint::WorkerDeath), None);
        assert!(Plan::parse("bogus-point=at:1").is_err());
        assert!(Plan::parse("conn-drop=sometimes").is_err());
        assert!(Plan::parse("").expect("empty is fine").is_empty());
    }

    #[test]
    fn flip_bit_is_deterministic_and_flips_exactly_one_bit() {
        let _g = gated();
        install(Plan::new(5).point(FaultPoint::SnapshotBitFlip, Trigger::At(1)));
        let original: Vec<u8> = (0..64u8).collect();
        let mut a = original.clone();
        let mut b = original.clone();
        flip_bit(&mut a);
        flip_bit(&mut b);
        assert_eq!(a, b, "same seed and length flip the same bit");
        let differing: u32 = original
            .iter()
            .zip(&a)
            .map(|(x, y)| (x ^ y).count_ones())
            .sum();
        assert_eq!(differing, 1);
        disarm();
    }
}
