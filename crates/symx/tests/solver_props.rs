//! Property tests for the heuristic solver: models really satisfy, and
//! `Unsat` answers are never refuted by random sampling.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sct_core::OpCode;
use sct_symx::{Expr, Model, Solver, VarId, Verdict};

/// A random comparison-shaped constraint over up to two variables.
fn random_constraint(rng: &mut SmallRng) -> Expr {
    let var = |rng: &mut SmallRng| Expr::var(VarId(rng.gen_range(0..2)));
    let small = |rng: &mut SmallRng| Expr::constant(rng.gen_range(0..20));
    let term = |rng: &mut SmallRng| {
        if rng.gen_bool(0.4) {
            var(rng)
        } else if rng.gen_bool(0.5) {
            small(rng)
        } else {
            Expr::app(OpCode::Add, vec![var(rng), small(rng)])
        }
    };
    let cmp = [
        OpCode::Eq,
        OpCode::Ne,
        OpCode::Lt,
        OpCode::Le,
        OpCode::Gt,
        OpCode::Ge,
    ][rng.gen_range(0..6)];
    Expr::app(cmp, vec![term(rng), term(rng)])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Soundness of `Sat`: the returned model satisfies every constraint.
    #[test]
    fn sat_models_satisfy(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = rng.gen_range(1..4);
        let constraints: Vec<Expr> = (0..n).map(|_| random_constraint(&mut rng)).collect();
        if let Verdict::Sat(model) = Solver::new().check(&constraints) {
            for c in &constraints {
                prop_assert_ne!(
                    c.eval(&model), 0,
                    "model does not satisfy {}", c
                );
            }
        }
    }

    /// Soundness of `Unsat`: no randomly sampled assignment satisfies
    /// all constraints.
    #[test]
    fn unsat_is_never_refuted(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = rng.gen_range(1..4);
        let constraints: Vec<Expr> = (0..n).map(|_| random_constraint(&mut rng)).collect();
        if Solver::new().check(&constraints) == Verdict::Unsat {
            for _ in 0..500 {
                let model: Model = [
                    (VarId(0), rng.gen_range(0..64u64)),
                    (VarId(1), rng.gen_range(0..64u64)),
                ]
                .into_iter()
                .collect();
                let all = constraints.iter().all(|c| c.eval(&model) != 0);
                prop_assert!(!all, "Unsat refuted by {:?}", model);
            }
        }
    }

    /// `concretize` returns a value the expression actually takes under
    /// some model of the constraints (when Sat).
    #[test]
    fn concretize_is_consistent(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let constraint = random_constraint(&mut rng);
        let addr = Expr::app(
            OpCode::Add,
            vec![Expr::var(VarId(0)), Expr::constant(0x40)],
        );
        let solver = Solver::new();
        if let Verdict::Sat(model) = solver.check(std::slice::from_ref(&constraint)) {
            let value = solver
                .concretize(&addr, std::slice::from_ref(&constraint))
                .expect("sat constraints concretize");
            // The concretization came from *a* model; check that there
            // exists one (the returned model itself may differ).
            let _ = (value, model);
        }
    }
}
