//! Property tests for the hash-consing interner: structural interning,
//! idempotent simplification, and verdict preservation.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sct_core::OpCode;
use sct_symx::{Expr, ExprKind, Model, Solver, VarId, Verdict};

/// A random expression tree, built bottom-up through the simplifying
/// constructor (like all production construction).
fn random_expr(rng: &mut SmallRng, depth: usize) -> Expr {
    if depth == 0 || rng.gen_bool(0.3) {
        return if rng.gen_bool(0.5) {
            Expr::var(VarId(rng.gen_range(0..3)))
        } else {
            Expr::constant(rng.gen_range(0..16))
        };
    }
    let op = OpCode::ALL[rng.gen_range(0..OpCode::ALL.len())];
    let n = op.arity().unwrap_or(rng.gen_range(1..4)).max(1);
    let args = (0..n).map(|_| random_expr(rng, depth - 1)).collect();
    Expr::app(op, args)
}

/// Rebuild an expression bottom-up through [`Expr::app`] — i.e. re-run
/// the simplifier on every node.
fn resimplify(e: Expr) -> Expr {
    match e.kind() {
        ExprKind::Const(_) | ExprKind::Var(_) => e,
        ExprKind::App(op, args) => {
            let args = args.into_iter().map(resimplify).collect();
            Expr::app(op, args)
        }
    }
}

/// Rebuild an expression verbatim through [`Expr::raw_app`] — the
/// unsimplified twin used to compare solver verdicts.
fn rebuild_raw(e: Expr) -> Expr {
    match e.kind() {
        ExprKind::Const(_) | ExprKind::Var(_) => e,
        ExprKind::App(op, args) => {
            let args = args.into_iter().map(rebuild_raw).collect();
            Expr::raw_app(op, args)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Interning the same structure twice yields the same `ExprRef`.
    #[test]
    fn same_structure_interns_to_same_ref(seed in any::<u64>()) {
        let a = random_expr(&mut SmallRng::seed_from_u64(seed), 4);
        let b = random_expr(&mut SmallRng::seed_from_u64(seed), 4);
        prop_assert_eq!(a, b, "identical construction must produce identical ids");
    }

    /// Simplification is idempotent: re-simplifying a simplified
    /// expression is the identity on interned ids.
    #[test]
    fn simplification_is_idempotent(seed in any::<u64>()) {
        let e = random_expr(&mut SmallRng::seed_from_u64(seed), 4);
        prop_assert_eq!(resimplify(e), e, "resimplifying {} moved it", e);
    }

    /// The simplified and raw forms evaluate identically under random
    /// models.
    #[test]
    fn simplified_and_raw_forms_agree_semantically(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let e = random_expr(&mut rng, 4);
        let raw = rebuild_raw(e);
        for _ in 0..16 {
            let model: Model = (0..3)
                .map(|i| (VarId(i), rng.gen::<u64>() >> rng.gen_range(0..64)))
                .collect();
            prop_assert_eq!(e.eval(&model), raw.eval(&model), "{} vs raw {}", e, raw);
        }
    }

    /// Simplification preserves solver verdicts: the simplified and the
    /// raw constraint sets never contradict each other (`Sat` against
    /// `Unsat`), and any model found satisfies both forms. (`Unknown`
    /// may legitimately differ: simplification exposes structure the
    /// interval refutation and candidate search feed on.)
    #[test]
    fn simplification_preserves_solver_verdicts(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = rng.gen_range(1..4);
        let simplified: Vec<Expr> = (0..n).map(|_| random_expr(&mut rng, 3)).collect();
        let raw: Vec<Expr> = simplified.iter().map(|&e| rebuild_raw(e)).collect();
        let solver = Solver::new();
        let vs = solver.check(&simplified);
        let vr = solver.check(&raw);
        prop_assert!(
            !(matches!(vs, Verdict::Sat(_)) && vr == Verdict::Unsat),
            "simplified Sat but raw Unsat"
        );
        prop_assert!(
            !(vs == Verdict::Unsat && matches!(vr, Verdict::Sat(_))),
            "simplified Unsat but raw Sat"
        );
        for model in [&vs, &vr].into_iter().filter_map(|v| match v {
            Verdict::Sat(m) => Some(m),
            _ => None,
        }) {
            for (&s, &r) in simplified.iter().zip(&raw) {
                prop_assert_ne!(s.eval(model), 0, "model misses simplified {}", s);
                prop_assert_ne!(r.eval(model), 0, "model misses raw {}", r);
            }
        }
    }
}
