//! Concurrency stress for the lock-striped interner and verdict memo:
//! eight threads hammer the same proptest-generated workload and must
//! agree on every id and every verdict.
//!
//! The property under test is the sharded substrate's whole contract:
//! *structural identity survives racing*. Whichever thread wins the
//! intern race for a node, all threads observe one id for one
//! structure; whichever thread first solves a constraint set, all
//! threads read one verdict for one canonical key.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sct_core::OpCode;
use sct_symx::{Expr, Solver, VarId};

const THREADS: usize = 8;

/// A deterministic random expression recipe: replaying the same seed
/// on any thread constructs the same *structure* (ids are decided by
/// the interner, which is what the test checks).
fn random_expr(rng: &mut SmallRng, depth: usize) -> Expr {
    if depth == 0 || rng.gen_bool(0.3) {
        return if rng.gen_bool(0.5) {
            // A dedicated variable range so this binary's expressions
            // don't collide with other suites' simplification caches.
            Expr::var(VarId(7_000 + rng.gen_range(0..3)))
        } else {
            Expr::constant(rng.gen_range(0..16))
        };
    }
    let op = OpCode::ALL[rng.gen_range(0..OpCode::ALL.len())];
    let n = op.arity().unwrap_or(rng.gen_range(1..4)).max(1);
    let args = (0..n).map(|_| random_expr(rng, depth - 1)).collect();
    Expr::app(op, args)
}

proptest! {
    // Each case spawns 8 threads; keep the case count moderate so the
    // suite stays fast while still sweeping many workloads.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Eight threads interning the same seeded workload — racing on
    /// every shard, dedup index, and app-cache entry — produce
    /// identical id sequences.
    #[test]
    fn concurrent_interning_agrees_on_ids(seed in any::<u64>()) {
        // (The vendored proptest takes one binding per test; the batch
        // size piggybacks on the seed.)
        let batch = 4 + (seed % 20) as usize;
        let ids: Vec<Vec<Expr>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..THREADS)
                .map(|_| {
                    scope.spawn(move || {
                        let mut rng = SmallRng::seed_from_u64(seed);
                        (0..batch).map(|_| random_expr(&mut rng, 4)).collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for other in &ids[1..] {
            prop_assert_eq!(&ids[0], other, "threads disagree on interned ids");
        }
        // And the ids are *right*: a serial replay reproduces them.
        let mut rng = SmallRng::seed_from_u64(seed);
        let replay: Vec<Expr> = (0..batch).map(|_| random_expr(&mut rng, 4)).collect();
        prop_assert_eq!(&ids[0], &replay, "serial replay diverges from the race winners");
    }

    /// Eight threads issuing the same solver queries — racing on the
    /// memo stripes, including the solve-then-insert race on cold keys
    /// — read identical verdicts, and those verdicts equal the
    /// uncached pipeline's.
    #[test]
    fn concurrent_memo_checks_agree_on_verdicts(seed in any::<u64>()) {
        let batch = 2 + (seed % 8) as usize;
        let make_constraints = |rng: &mut SmallRng| -> Vec<Expr> {
            (0..rng.gen_range(1..3))
                .map(|_| random_expr(rng, 3))
                .collect()
        };
        let verdicts: Vec<Vec<bool>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..THREADS)
                .map(|_| {
                    scope.spawn(move || {
                        let solver = Solver::new();
                        let mut rng = SmallRng::seed_from_u64(seed ^ 0xabcd);
                        (0..batch)
                            .map(|_| {
                                let cs = make_constraints(&mut rng);
                                solver.check(&cs).maybe_sat()
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for other in &verdicts[1..] {
            prop_assert_eq!(&verdicts[0], other, "threads disagree on memoized verdicts");
        }
        // Memoized answers match the uncached pipeline.
        let solver = Solver::new();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xabcd);
        for (i, &memoized) in verdicts[0].iter().enumerate() {
            let cs = make_constraints(&mut rng);
            let direct = solver.check_uncached(&cs);
            prop_assert_eq!(
                memoized,
                direct.maybe_sat(),
                "query {} memo/uncached divergence", i
            );
            // Stronger: full verdict equality through the memo.
            let via_memo = solver.check(&cs);
            prop_assert_eq!(via_memo == direct, true, "verdict drift on query {}", i);
        }
    }

    /// Mixed pressure: interning and solving interleave across threads
    /// (the realistic parallel-exploration workload) without panics,
    /// deadlocks, or id disagreement on a shared spine of expressions.
    #[test]
    fn mixed_intern_and_solve_pressure(seed in any::<u64>()) {
        let spine: Vec<Expr> = {
            let mut rng = SmallRng::seed_from_u64(seed ^ 0x5eed);
            (0..8).map(|_| random_expr(&mut rng, 3)).collect()
        };
        let spine = &spine;
        let results: Vec<(Vec<Expr>, usize)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..THREADS)
                .map(|t| {
                    scope.spawn(move || {
                        let solver = Solver::new();
                        let mut rng = SmallRng::seed_from_u64(seed ^ (t as u64));
                        let mut rebuilt = Vec::new();
                        let mut sats = 0usize;
                        for round in 0..12 {
                            // Rebuild a shared-spine expression (pure
                            // intern traffic) ...
                            let e = spine[round % spine.len()];
                            let doubled = Expr::app(OpCode::Add, vec![e, e]);
                            rebuilt.push(doubled);
                            // ... and solve something thread-unique
                            // (pure memo-miss traffic).
                            let c = Expr::app(
                                OpCode::Gt,
                                vec![random_expr(&mut rng, 2), Expr::constant(round as u64)],
                            );
                            if solver.check(&[c]).maybe_sat() {
                                sats += 1;
                            }
                        }
                        (rebuilt, sats)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (rebuilt, _) in &results[1..] {
            prop_assert_eq!(&results[0].0, rebuilt, "shared-spine ids diverged");
        }
    }
}

/// Sanity outside proptest: the interner's structural-identity
/// guarantee composes with the solver across a thread boundary — a
/// verdict computed on one thread is a memo hit for the identical
/// constraint interned on another.
#[test]
fn cross_thread_memo_hits() {
    let c = Expr::app(
        OpCode::Gt,
        vec![Expr::var(VarId(7_900)), Expr::constant(0xdead)],
    );
    let before = sct_symx::solver_memo_stats();
    let v1 = Solver::new().check(&[c]);
    let v2 = std::thread::spawn(move || {
        // Re-intern the same structure on this thread: same id, same
        // canonical key, so the memo answers.
        let c = Expr::app(
            OpCode::Gt,
            vec![Expr::var(VarId(7_900)), Expr::constant(0xdead)],
        );
        Solver::new().check(&[c])
    })
    .join()
    .unwrap();
    assert_eq!(v1, v2);
    let after = sct_symx::solver_memo_stats();
    assert!(after.hits > before.hits, "second thread must hit the memo");
}
