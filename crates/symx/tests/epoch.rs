//! Epoch-lifecycle tests: retiring the process-wide arena invalidates
//! old references detectably, re-analysis after a reset reproduces
//! verdicts exactly, and the id-keyed dedup layout stores each node
//! once (the memory win the old node-keyed map paid twice for).
//!
//! These tests share one process-wide arena and *retire* it, which
//! would invalidate expressions held by concurrently running tests —
//! so every test in this binary serializes on [`EPOCH_LOCK`]. Other
//! test binaries are separate processes and unaffected.

use sct_core::OpCode;
use sct_symx::{
    arena_epoch, arena_stats, retire_arena, solver_memo_stats, Expr, Solver, VarId, Verdict,
};
use std::sync::Mutex;

static EPOCH_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    EPOCH_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The Figure 1 out-of-bounds path condition: ¬(4 > x).
fn oob_constraint() -> Expr {
    let guard = Expr::app(OpCode::Gt, vec![Expr::constant(4), Expr::var(VarId(0))]);
    Expr::app(OpCode::Eq, vec![guard, Expr::constant(0)])
}

#[test]
fn retire_bumps_the_epoch_and_empties_the_arena() {
    let _guard = lock();
    let _e = Expr::app(OpCode::Add, vec![Expr::var(VarId(1)), Expr::constant(3)]);
    assert!(arena_stats().nodes > 0);
    let before = arena_epoch();
    let after = retire_arena();
    assert_eq!(after, before + 1);
    assert_eq!(arena_epoch(), after);
    assert_eq!(arena_stats().nodes, 0, "retire must drop every node");
}

#[test]
fn stale_refs_panic_instead_of_aliasing() {
    let _guard = lock();
    let e = Expr::app(OpCode::Mul, vec![Expr::var(VarId(2)), Expr::constant(7)]);
    retire_arena();
    // Re-populate the new epoch so the stale index is in range — the
    // epoch tag, not a bounds check, must catch the staleness.
    for i in 0..64 {
        let _ = Expr::constant(i);
    }
    let result = std::panic::catch_unwind(|| e.as_const());
    assert!(result.is_err(), "using a retired ExprRef must panic");
}

#[test]
fn reanalysis_after_retire_reproduces_verdicts_exactly() {
    let _guard = lock();
    let solve = || {
        let c = oob_constraint();
        Solver::new().check(&[c])
    };
    let fresh = solve();
    assert!(matches!(fresh, Verdict::Sat(_)), "oob path is feasible");
    retire_arena();
    let again = solve();
    assert_eq!(fresh, again, "epoch reset must not change verdicts");
    // And the memo of the retired epoch was dropped, not reused: the
    // second solve re-entered the pipeline at least once.
    let stats = solver_memo_stats();
    assert!(stats.stale_dropped > 0, "retire must invalidate the memo");
}

#[test]
fn id_keyed_dedup_stores_each_node_once() {
    let _guard = lock();
    // A few thousand distinct applications: under the old layout the
    // dedup map duplicated each `Node` (header + child slice) as its
    // own key, so its resident bytes matched the node table's. The
    // id-keyed index keeps a hash and an id per node instead.
    for i in 0..4_000u64 {
        let _ = Expr::app(
            OpCode::Add,
            vec![Expr::var(VarId(0)), Expr::constant(i), Expr::constant(i * 31 + 1)],
        );
    }
    let stats = arena_stats();
    assert!(stats.nodes >= 4_000);
    assert!(
        stats.dedup_bytes * 2 < stats.node_bytes,
        "dedup index ({} bytes) should be well under half the node table \
         ({} bytes); the node-keyed layout would match it",
        stats.dedup_bytes,
        stats.node_bytes,
    );
}
