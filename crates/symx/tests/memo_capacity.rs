//! The verdict-memo capacity guard: the LRU cap bounds the table,
//! evictions are counted, recently-hit entries survive, and evicted
//! entries are simply re-solved (never wrong, just slower).
//!
//! One `#[test]` on purpose: the memo (and its capacity) is
//! process-wide, so the scenario runs serially in its own binary.

use sct_core::OpCode;
use sct_symx::{
    flush_thread_caches, set_solver_memo_capacity, solver_memo_capacity, solver_memo_stats, Expr,
    Solver, VarId, DEFAULT_MEMO_CAPACITY,
};

/// The distinct constraint `x > k` (one memo key per `k`).
fn gt(k: u64) -> Expr {
    Expr::app(OpCode::Gt, vec![Expr::var(VarId(0)), Expr::constant(k)])
}

#[test]
fn lru_capacity_guard() {
    assert_eq!(solver_memo_capacity(), DEFAULT_MEMO_CAPACITY);
    let solver = Solver::new();
    let baseline_entries = solver_memo_stats().entries;

    // A small cap for the scenario. (Other keys may already be
    // memoized from this binary — there are none, but stay robust:
    // shrinking evicts immediately, so the invariant below holds
    // regardless.)
    let cap = baseline_entries + 8;
    let old = set_solver_memo_capacity(cap);
    assert_eq!(old, DEFAULT_MEMO_CAPACITY);
    assert_eq!(solver_memo_capacity(), cap);

    // Fill to the cap with distinct constraint sets.
    for k in 0..8 {
        solver.check(&[gt(k)]);
    }
    let full = solver_memo_stats();
    assert!(full.entries <= cap, "{full:?}");
    let evicted_before = full.evicted;

    // Refresh k=0 (a hit bumps its recency). Flush the thread-local
    // verdict cache first: this scenario pins the *shared* memo's LRU
    // behavior, and a thread-cache hit would bypass the recency touch.
    flush_thread_caches();
    let hits_before = solver_memo_stats().hits;
    solver.check(&[gt(0)]);
    assert_eq!(solver_memo_stats().hits, hits_before + 1, "refresh hits");

    // ... then overflow: eviction drops the least-recently-hit entries
    // (k=1, k=2 — everything else is younger or refreshed).
    solver.check(&[gt(100)]);
    let after = solver_memo_stats();
    assert!(after.entries <= cap, "cap holds after overflow: {after:?}");
    assert!(
        after.evicted > evicted_before,
        "the capacity guard counted its evictions: {after:?}"
    );

    // The refreshed entry survived ... (flush again so both probes
    // below reach the shared memo rather than the thread cache)
    flush_thread_caches();
    let hits = solver_memo_stats().hits;
    let misses = solver_memo_stats().misses;
    solver.check(&[gt(0)]);
    assert_eq!(solver_memo_stats().hits, hits + 1, "k=0 survived (LRU)");

    // ... the stale one did not, and re-solving re-memoizes it with the
    // same verdict the memo would have served.
    let v = solver.check(&[gt(1)]);
    let after_miss = solver_memo_stats();
    assert_eq!(after_miss.misses, misses + 1, "k=1 was evicted (LRU)");
    assert_eq!(v, solver.check_uncached(&[gt(1)]), "eviction never changes verdicts");

    // Shrinking below the current size evicts immediately.
    set_solver_memo_capacity(1);
    let shrunk = solver_memo_stats();
    assert!(shrunk.entries <= 1, "{shrunk:?}");
    assert_eq!(shrunk.capacity, 1);

    // Restore the default for any test that follows in this process.
    set_solver_memo_capacity(DEFAULT_MEMO_CAPACITY);
    assert_eq!(solver_memo_capacity(), DEFAULT_MEMO_CAPACITY);
}
