//! Algebraic simplification of symbolic expressions.
//!
//! Rules are deliberately conservative: every rewrite preserves the
//! 64-bit wrapping semantics of the concrete evaluator exactly (the
//! property test at the bottom checks random instances under random
//! models). Anything clever (and risky) is left to the solver.
//!
//! All functions run **without holding any interner lock**: the caller
//! ([`crate::expr`]'s memoized `app` constructor) releases the raw
//! node's shard before simplifying, and every constructor re-entered
//! here ([`constant`], [`raw_app`]) locks per operation. Results are
//! memoized per raw node, so each distinct application simplifies once
//! per process.

use crate::expr::{as_const_global, constant_global, raw_app_global, ExprKind, ExprRef};
use sct_core::op::OpCode;

fn constant(v: u64) -> ExprRef {
    constant_global(v)
}

fn raw_app(opcode: OpCode, args: Vec<ExprRef>) -> ExprRef {
    raw_app_global(opcode, args)
}

fn as_const(e: ExprRef) -> Option<u64> {
    as_const_global(e)
}

/// Simplify `opcode(args)` after constant folding failed (at least one
/// operand is symbolic).
pub(crate) fn simplify_app(opcode: OpCode, args: Vec<ExprRef>) -> ExprRef {
    use OpCode::*;
    match opcode {
        Add | Addr => simplify_add(opcode, args),
        Mul => simplify_mul(args),
        And => simplify_and(args),
        Or => simplify_or(args),
        Xor => simplify_xor(args),
        Sub => simplify_sub(args),
        Mov => args.into_iter().next().expect("mov has one operand"),
        Not => simplify_not(args),
        Eq => simplify_eq(args),
        Ne => simplify_cmp_same(Ne, args, 0),
        Lt => simplify_cmp_same(Lt, args, 0),
        Gt => simplify_cmp_same(Gt, args, 0),
        Le => simplify_cmp_same(Le, args, 1),
        Ge => simplify_cmp_same(Ge, args, 1),
        SLt => simplify_cmp_same(SLt, args, 0),
        SLe => simplify_cmp_same(SLe, args, 1),
        Csel => simplify_csel(args),
        Shl | Shr | Succ | Pred => raw_app(opcode, args),
    }
}

/// Drop additive zeros; single remaining operand collapses.
fn simplify_add(opcode: OpCode, args: Vec<ExprRef>) -> ExprRef {
    let mut rest: Vec<ExprRef> = Vec::with_capacity(args.len());
    let mut acc: u64 = 0;
    for a in args {
        match as_const(a) {
            Some(c) => acc = acc.wrapping_add(c),
            None => rest.push(a),
        }
    }
    if acc != 0 {
        rest.push(constant(acc));
    }
    match rest.len() {
        0 => constant(0),
        1 => rest.pop().expect("len checked"),
        _ => raw_app(opcode, rest),
    }
}

fn simplify_mul(args: Vec<ExprRef>) -> ExprRef {
    let mut rest: Vec<ExprRef> = Vec::with_capacity(args.len());
    let mut acc: u64 = 1;
    for a in args {
        match as_const(a) {
            Some(0) => return constant(0),
            Some(c) => acc = acc.wrapping_mul(c),
            None => rest.push(a),
        }
    }
    if acc == 0 {
        return constant(0);
    }
    if acc != 1 {
        rest.push(constant(acc));
    }
    match rest.len() {
        0 => constant(1),
        1 => rest.pop().expect("len checked"),
        _ => raw_app(OpCode::Mul, rest),
    }
}

fn simplify_and(args: Vec<ExprRef>) -> ExprRef {
    let mut rest: Vec<ExprRef> = Vec::with_capacity(args.len());
    let mut acc: u64 = u64::MAX;
    for a in args {
        match as_const(a) {
            Some(0) => return constant(0),
            Some(c) => acc &= c,
            None => {
                if !rest.contains(&a) {
                    rest.push(a); // x & x = x
                }
            }
        }
    }
    if acc == 0 {
        return constant(0);
    }
    if acc != u64::MAX {
        rest.push(constant(acc));
    }
    match rest.len() {
        0 => constant(u64::MAX),
        1 => rest.pop().expect("len checked"),
        _ => raw_app(OpCode::And, rest),
    }
}

fn simplify_or(args: Vec<ExprRef>) -> ExprRef {
    let mut rest: Vec<ExprRef> = Vec::with_capacity(args.len());
    let mut acc: u64 = 0;
    for a in args {
        match as_const(a) {
            Some(u64::MAX) => return constant(u64::MAX),
            Some(c) => acc |= c,
            None => {
                if !rest.contains(&a) {
                    rest.push(a); // x | x = x
                }
            }
        }
    }
    if acc == u64::MAX {
        return constant(u64::MAX);
    }
    if acc != 0 {
        rest.push(constant(acc));
    }
    match rest.len() {
        0 => constant(0),
        1 => rest.pop().expect("len checked"),
        _ => raw_app(OpCode::Or, rest),
    }
}

fn simplify_xor(args: Vec<ExprRef>) -> ExprRef {
    // x ^ x cancels pairwise; constants fold together.
    let mut rest: Vec<ExprRef> = Vec::with_capacity(args.len());
    let mut acc: u64 = 0;
    for a in args {
        match as_const(a) {
            Some(c) => acc ^= c,
            None => {
                if let Some(k) = rest.iter().position(|&r| r == a) {
                    rest.swap_remove(k);
                } else {
                    rest.push(a);
                }
            }
        }
    }
    if acc != 0 {
        rest.push(constant(acc));
    }
    match rest.len() {
        0 => constant(0),
        1 => rest.pop().expect("len checked"),
        _ => raw_app(OpCode::Xor, rest),
    }
}

fn simplify_sub(args: Vec<ExprRef>) -> ExprRef {
    // x - 0 - 0 ... = x ; x - x = 0 (two-operand case only).
    if args.len() == 2 {
        if as_const(args[1]) == Some(0) {
            return args[0];
        }
        if args[0] == args[1] {
            return constant(0);
        }
    }
    if args[1..].iter().all(|&a| as_const(a) == Some(0)) {
        return args[0];
    }
    raw_app(OpCode::Sub, args)
}

fn simplify_not(args: Vec<ExprRef>) -> ExprRef {
    // not(not(x)) = x
    if let ExprKind::App(OpCode::Not, inner) = args[0].kind() {
        return inner[0];
    }
    raw_app(OpCode::Not, args)
}

fn simplify_eq(args: Vec<ExprRef>) -> ExprRef {
    if args[0] == args[1] {
        return constant(1);
    }
    raw_app(OpCode::Eq, args)
}

/// Comparisons of an expression with itself have a known value
/// (`x < x = 0`, `x ≤ x = 1`, ...).
fn simplify_cmp_same(opcode: OpCode, args: Vec<ExprRef>, same_value: u64) -> ExprRef {
    if args[0] == args[1] {
        return constant(same_value);
    }
    raw_app(opcode, args)
}

fn simplify_csel(args: Vec<ExprRef>) -> ExprRef {
    match as_const(args[0]) {
        Some(0) => args[2],
        Some(_) => args[1],
        None => {
            if args[1] == args[2] {
                args[1]
            } else {
                raw_app(OpCode::Csel, args)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::expr::{Expr, Model, VarId};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use sct_core::op::OpCode;

    fn x() -> Expr {
        Expr::var(VarId(0))
    }

    #[test]
    fn additive_identities() {
        let e = Expr::app(OpCode::Add, vec![x(), Expr::constant(0)]);
        assert_eq!(e, x());
        let e = Expr::app(OpCode::Add, vec![Expr::constant(3), x(), Expr::constant(4)]);
        assert_eq!(e.to_string(), "add(v0, 0x7)");
    }

    #[test]
    fn multiplicative_identities() {
        assert_eq!(Expr::app(OpCode::Mul, vec![x(), Expr::constant(1)]), x());
        assert_eq!(
            Expr::app(OpCode::Mul, vec![x(), Expr::constant(0)]).as_const(),
            Some(0)
        );
    }

    #[test]
    fn bitwise_identities() {
        assert_eq!(Expr::app(OpCode::And, vec![x(), x()]), x());
        assert_eq!(Expr::app(OpCode::Or, vec![x(), x()]), x());
        assert_eq!(Expr::app(OpCode::Xor, vec![x(), x()]).as_const(), Some(0));
        assert_eq!(
            Expr::app(OpCode::And, vec![x(), Expr::constant(0)]).as_const(),
            Some(0)
        );
        assert_eq!(
            Expr::app(OpCode::Or, vec![x(), Expr::constant(u64::MAX)]).as_const(),
            Some(u64::MAX)
        );
    }

    #[test]
    fn subtraction_and_not() {
        assert_eq!(Expr::app(OpCode::Sub, vec![x(), Expr::constant(0)]), x());
        assert_eq!(Expr::app(OpCode::Sub, vec![x(), x()]).as_const(), Some(0));
        let nn = Expr::app(OpCode::Not, vec![Expr::app(OpCode::Not, vec![x()])]);
        assert_eq!(nn, x());
    }

    #[test]
    fn reflexive_comparisons() {
        assert_eq!(Expr::app(OpCode::Eq, vec![x(), x()]).as_const(), Some(1));
        assert_eq!(Expr::app(OpCode::Lt, vec![x(), x()]).as_const(), Some(0));
        assert_eq!(Expr::app(OpCode::Le, vec![x(), x()]).as_const(), Some(1));
        assert_eq!(Expr::app(OpCode::SLe, vec![x(), x()]).as_const(), Some(1));
    }

    #[test]
    fn csel_simplifications() {
        let a = Expr::var(VarId(1));
        let b = Expr::var(VarId(2));
        assert_eq!(
            Expr::app(OpCode::Csel, vec![Expr::constant(1), a, b]),
            a
        );
        assert_eq!(
            Expr::app(OpCode::Csel, vec![Expr::constant(0), a, b]),
            b
        );
        assert_eq!(Expr::app(OpCode::Csel, vec![x(), a, a]), a);
    }

    /// Every simplification preserves semantics: compare simplified vs
    /// raw evaluation on random expressions and models.
    #[test]
    fn simplification_is_semantics_preserving() {
        let mut rng = SmallRng::seed_from_u64(99);
        for _ in 0..2_000 {
            let op = OpCode::ALL[rng.gen_range(0..OpCode::ALL.len())];
            let n = op.arity().unwrap_or(rng.gen_range(1..4));
            let args: Vec<Expr> = (0..n)
                .map(|_| match rng.gen_range(0..3u8) {
                    0 => Expr::constant(rng.gen_range(0..4)),
                    1 => Expr::var(VarId(rng.gen_range(0..2))),
                    _ => Expr::app(
                        OpCode::Add,
                        vec![
                            Expr::var(VarId(rng.gen_range(0..2))),
                            Expr::constant(rng.gen_range(0..4)),
                        ],
                    ),
                })
                .collect();
            let simplified = Expr::app(op, args.clone());
            let raw = Expr::raw_app(op, args);
            for _ in 0..8 {
                let model: Model = [
                    (VarId(0), rng.gen::<u64>() % 16),
                    (VarId(1), rng.gen::<u64>()),
                ]
                .into_iter()
                .collect();
                assert_eq!(
                    simplified.eval(&model),
                    raw.eval(&model),
                    "op {op:?}: {simplified} vs raw"
                );
            }
        }
    }
}
