//! Hash-consed symbolic bit-vector expressions over 64-bit words.
//!
//! Expressions are immutable nodes interned in a process-wide arena:
//! an [`ExprRef`] is a 32-bit id, structural equality is id equality
//! (O(1)), and every distinct structure is stored exactly once, so
//! cloning machine states shares all expression structure. The
//! [`ExprRef::app`] constructor folds constants eagerly (delegating to
//! the *concrete* evaluator of `sct-core`, so symbolic and concrete
//! semantics cannot drift), applies the algebraic simplifications of
//! [`crate::simplify`], and memoizes `(op, args) → result`, so
//! re-deriving the same value along different schedules is a cache hit.
//!
//! # Sharding
//!
//! The interner is **lock-striped** across [`NUM_SHARDS`] shards, each
//! behind its own `RwLock`. A node's shard is chosen by its structural
//! hash, so two threads interning unrelated expressions almost never
//! touch the same lock, and the dominant hit path (the structure is
//! already interned) takes a single shard *read* lock — concurrent
//! readers never block each other. The id encodes the shard in its low
//! bits, so resolving an id to its node is a single read-lock on the
//! owning shard; no global lock exists at all. Failed `try_lock`
//! attempts are counted ([`ArenaStats::lock_waits`]) so contention is
//! visible without a profiler.
//!
//! The arena is shared by every analysis in the process (see
//! [`arena_stats`]); batch runs over many programs — and parallel
//! explorations within one program — reuse each other's interned
//! expressions.

use sct_core::op::{self, OpCode};
use sct_core::Val;
use std::cell::{Cell, RefCell};
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{LazyLock, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard, TryLockError};

/// Bits of an [`ExprRef`] holding the arena index; the remaining high
/// bits hold the epoch tag (see [`retire_arena`]).
const INDEX_BITS: u32 = 24;
/// Largest interned-node index representable in one epoch (~16.7M).
const MAX_INDEX: u32 = (1 << INDEX_BITS) - 1;
/// Low bits of an index naming the owning shard.
const SHARD_BITS: u32 = 4;
/// Interner shards (lock stripes). A node's shard is its structural
/// hash modulo this; the shard id is packed into the low index bits so
/// id → node resolution needs no directory.
pub const NUM_SHARDS: usize = 1 << SHARD_BITS;
const SHARD_MASK: u32 = NUM_SHARDS as u32 - 1;
/// Largest per-shard slot (the 24-bit index space divided evenly).
const MAX_SLOT: u32 = (1 << (INDEX_BITS - SHARD_BITS)) - 1;

/// A symbolic input variable.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct VarId(pub u32);

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// An assignment of concrete values to variables (default 0).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Model {
    map: std::collections::BTreeMap<VarId, u64>,
}

impl Model {
    /// The all-zero model.
    pub fn new() -> Self {
        Model::default()
    }

    /// Look up a variable (0 when unassigned).
    pub fn get(&self, v: VarId) -> u64 {
        self.map.get(&v).copied().unwrap_or(0)
    }

    /// Assign a variable.
    pub fn set(&mut self, v: VarId, value: u64) {
        self.map.insert(v, value);
    }

    /// Iterate over explicit assignments.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, u64)> + '_ {
        self.map.iter().map(|(&v, &x)| (v, x))
    }
}

impl FromIterator<(VarId, u64)> for Model {
    fn from_iter<I: IntoIterator<Item = (VarId, u64)>>(iter: I) -> Self {
        Model {
            map: iter.into_iter().collect(),
        }
    }
}

/// An interned expression node. Children are [`ExprRef`]s, so the node
/// itself is small and hashes in O(arity).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub(crate) enum Node {
    Const(u64),
    Var(VarId),
    App(OpCode, Box<[ExprRef]>),
}

/// A reference into the expression arena: a 32-bit id whose equality is
/// structural equality of the interned (simplified) expression.
///
/// `ExprRef` is `Copy`; cloning a whole symbolic machine state copies
/// ids, never expression trees. The `Ord` instance is id order —
/// arbitrary but stable within a process epoch, which is what the
/// explorer needs to canonicalize path-condition sets.
///
/// The 32 bits are split: the low [`INDEX_BITS`] index into the arena
/// (their own low [`SHARD_BITS`] naming the owning shard), the high
/// bits carry the arena's epoch tag at interning time. After
/// [`retire_arena`] the tag no longer matches, so using a retired
/// reference panics loudly instead of silently reading an unrelated
/// node (see the epoch discussion on [`retire_arena`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ExprRef(u32);

impl ExprRef {
    fn pack(tag: u8, index: u32) -> ExprRef {
        debug_assert!(index <= MAX_INDEX);
        ExprRef((u32::from(tag) << INDEX_BITS) | index)
    }

    /// The arena index (low bits, without the epoch tag).
    pub(crate) fn index(self) -> u32 {
        self.0 & MAX_INDEX
    }

    /// The raw 32 bits (index + epoch tag), for local caches keyed by
    /// the full reference.
    pub(crate) fn bits(self) -> u32 {
        self.0
    }

    /// The owning interner shard.
    fn shard(self) -> usize {
        (self.0 & SHARD_MASK) as usize
    }

    /// The epoch tag this reference was interned under.
    fn epoch_tag(self) -> u8 {
        (self.0 >> INDEX_BITS) as u8
    }
}

/// The traditional name: the seed's `Expr` tree type is now an interned
/// reference.
pub type Expr = ExprRef;

/// A borrowed view of a node, for callers that need to match on
/// structure (the solver's bound extraction, the interval analysis).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ExprKind {
    /// A constant.
    Const(u64),
    /// A variable.
    Var(VarId),
    /// An application.
    App(OpCode, Vec<ExprRef>),
}

/// One lock stripe of the interner. The dedup index is **id-keyed**:
/// each node is stored exactly once, in `nodes`, and the index maps a
/// 64-bit structural hash to the id (with an overflow table for the
/// ~never case of colliding hashes).
#[derive(Debug, Default)]
struct Shard {
    /// Interned nodes, slot-indexed (id = slot << SHARD_BITS | shard).
    nodes: Vec<Node>,
    /// Global interning sequence number per slot. Children always carry
    /// a smaller sequence than their parents (they exist first), which
    /// is what lets [`export_arena`] emit a topologically ordered flat
    /// table even though slot order is per-shard.
    seqs: Vec<u64>,
    /// Total child slots across this shard's `App` nodes (memory
    /// accounting).
    child_slots: usize,
    /// Structural hash → interned id. Nodes live only in `nodes`.
    dedup: HashMap<u64, u32>,
    /// Extra ids whose structural hash collides with an entry of
    /// `dedup` (64-bit collisions: expected never at our arena sizes,
    /// handled for correctness).
    dedup_overflow: HashMap<u64, Vec<u32>>,
    /// Memoized `(op, args) → simplified` results for raw `App` nodes
    /// owned by this shard, keyed and valued by bare indices (cleared
    /// wholesale on retirement, so no epoch tags needed).
    app_cache: HashMap<u32, u32>,
}

impl Shard {
    fn node_at(&self, id: u32) -> &Node {
        &self.nodes[(id >> SHARD_BITS) as usize]
    }

    /// The interned id of `node` in this shard, if present.
    fn find(&self, h: u64, node: &Node) -> Option<u32> {
        let &id = self.dedup.get(&h)?;
        if self.node_at(id) == node {
            return Some(id);
        }
        // Genuine 64-bit hash collision: consult overflow.
        if let Some(ids) = self.dedup_overflow.get(&h) {
            for &id in ids {
                if self.node_at(id) == node {
                    return Some(id);
                }
            }
        }
        None
    }

    /// Append `node` (known absent) and index it under `h`.
    fn push_node(&mut self, shard_id: u32, h: u64, node: Node) -> u32 {
        let slot = u32::try_from(self.nodes.len()).expect("expression arena overflow");
        assert!(
            slot <= MAX_SLOT,
            "expression arena shard overflow: {} nodes exceed the per-shard \
             capacity of 2^{} this epoch; retire the arena between batches",
            self.nodes.len(),
            INDEX_BITS - SHARD_BITS,
        );
        let id = (slot << SHARD_BITS) | shard_id;
        if let Node::App(_, args) = &node {
            self.child_slots += args.len();
        }
        self.nodes.push(node);
        self.seqs.push(SEQ.fetch_add(1, Ordering::Relaxed));
        match self.dedup.entry(h) {
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(id);
            }
            std::collections::hash_map::Entry::Occupied(_) => {
                self.dedup_overflow.entry(h).or_default().push(id);
            }
        }
        id
    }

    fn clear(&mut self) {
        self.nodes = Vec::new();
        self.seqs = Vec::new();
        self.child_slots = 0;
        self.dedup = HashMap::new();
        self.dedup_overflow = HashMap::new();
        self.app_cache = HashMap::new();
    }
}

/// The sharded process-wide interner plus its global counters. The
/// epoch and interning sequence are atomics — they order across shards
/// without a global lock.
struct ShardedArena {
    shards: [RwLock<Shard>; NUM_SHARDS],
    epoch: AtomicU64,
}

static ARENA: LazyLock<ShardedArena> = LazyLock::new(|| ShardedArena {
    shards: std::array::from_fn(|_| RwLock::new(Shard::default())),
    epoch: AtomicU64::new(0),
});

/// Global interning sequence (drives the topological export order).
static SEQ: AtomicU64 = AtomicU64::new(0);
/// Memoized application-constructor hits/misses (process-wide).
static APP_HITS: AtomicU64 = AtomicU64::new(0);
static APP_MISSES: AtomicU64 = AtomicU64::new(0);
/// Shard lock acquisitions that found the lock contended (the `try_*`
/// probe failed and the caller had to block).
static LOCK_WAITS: AtomicU64 = AtomicU64::new(0);

// ----- thread-local L1 caches ---------------------------------------------
//
// In front of the sharded interner each thread keeps two tiny
// direct-mapped caches: constants (`value → id`) and small
// applications (`(op, args) → simplified id`). A hit touches no shared
// lock at all, which is what lets the hot construction path scale
// across worker threads — and removes the lock-striping tax from
// serial runs. Entries are compared exactly (full key, not just the
// slot hash), stamped with the arena epoch, and flushed lazily the
// first time the owning thread constructs after [`retire_arena`], so a
// retired id can never leak into a new epoch through a thread cache.

/// Slots in the per-thread constant cache (direct-mapped).
const LOCAL_CONST_SLOTS: usize = 1 << 9;
/// Slots in the per-thread application cache (direct-mapped).
const LOCAL_APP_SLOTS: usize = 1 << 12;
/// Largest application arity the thread cache holds; covers the hot
/// constructors (unary/binary ops plus `Csel`). Wider applications fall
/// through to the sharded cache.
const LOCAL_APP_MAX_ARGS: usize = 4;

/// One thread-cache application entry: the exact key and the
/// simplified result, all as raw [`ExprRef`] bits.
#[derive(Clone, Copy)]
struct LocalApp {
    op: OpCode,
    argc: u8,
    args: [u32; LOCAL_APP_MAX_ARGS],
    result: u32,
}

struct LocalCaches {
    epoch: u64,
    consts: Box<[Option<(u64, u32)>]>,
    apps: Box<[Option<LocalApp>]>,
}

impl LocalCaches {
    fn new(epoch: u64) -> LocalCaches {
        LocalCaches {
            epoch,
            consts: vec![None; LOCAL_CONST_SLOTS].into_boxed_slice(),
            apps: vec![None; LOCAL_APP_SLOTS].into_boxed_slice(),
        }
    }
}

thread_local! {
    static LOCAL_CACHES: RefCell<Option<LocalCaches>> = const { RefCell::new(None) };
    /// Per-thread mirror of [`LOCK_WAITS`]: exact contention
    /// attribution for parallel workers (the global atomic stays the
    /// process-wide roll-up).
    static TLS_LOCK_WAITS: Cell<u64> = const { Cell::new(0) };
    /// Per-thread count of thread-cache hits (constants + applications).
    static TLS_LOCAL_HITS: Cell<u64> = const { Cell::new(0) };
}

/// Run `f` on this thread's L1 caches, allocating them on first use and
/// flushing them when the arena epoch moved since the last touch.
fn with_local_caches<R>(f: impl FnOnce(&mut LocalCaches) -> R) -> R {
    LOCAL_CACHES.with(|cell| {
        let mut slot = cell.borrow_mut();
        let epoch = ARENA.epoch.load(Ordering::Acquire);
        let caches = match slot.as_mut() {
            Some(c) => {
                if c.epoch != epoch {
                    c.consts.fill(None);
                    c.apps.fill(None);
                    c.epoch = epoch;
                }
                c
            }
            None => slot.insert(LocalCaches::new(epoch)),
        };
        f(caches)
    })
}

fn local_const_slot(v: u64) -> usize {
    (v.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) as usize & (LOCAL_CONST_SLOTS - 1)
}

fn local_app_slot(opcode: OpCode, args: &[ExprRef]) -> usize {
    let mut h = (opcode as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for &a in args {
        h = (h ^ u64::from(a.bits())).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }
    (h >> 32) as usize & (LOCAL_APP_SLOTS - 1)
}

fn note_local_hit() {
    TLS_LOCAL_HITS.with(|h| h.set(h.get() + 1));
}

/// Drop the calling thread's L1 intern caches (the shared arena is
/// untouched).
pub(crate) fn flush_local_caches() {
    LOCAL_CACHES.with(|cell| {
        if let Some(c) = cell.borrow_mut().as_mut() {
            c.consts.fill(None);
            c.apps.fill(None);
        }
    });
}

/// This thread's cumulative contended interner-lock acquisitions
/// (the thread's share of [`arena_lock_waits`]).
pub(crate) fn tls_lock_waits() -> u64 {
    TLS_LOCK_WAITS.with(Cell::get)
}

/// This thread's cumulative thread-cache hits (see the module notes on
/// thread-local L1 caches).
pub(crate) fn tls_local_hits() -> u64 {
    TLS_LOCAL_HITS.with(Cell::get)
}

/// The deterministic structural hash the dedup index is keyed by
/// (SipHash with fixed keys; stable within a process, not across).
fn node_hash(node: &Node) -> u64 {
    let mut h = std::hash::DefaultHasher::new();
    node.hash(&mut h);
    h.finish()
}

fn shard_of_hash(h: u64) -> usize {
    (h as usize) & (NUM_SHARDS - 1)
}

/// Read-lock a shard, counting contention. Poisoned locks are ignored
/// because shards are append-only and stay structurally valid.
fn read_shard(i: usize) -> RwLockReadGuard<'static, Shard> {
    match ARENA.shards[i].try_read() {
        Ok(g) => g,
        Err(TryLockError::Poisoned(p)) => p.into_inner(),
        Err(TryLockError::WouldBlock) => {
            LOCK_WAITS.fetch_add(1, Ordering::Relaxed);
            TLS_LOCK_WAITS.with(|w| w.set(w.get() + 1));
            ARENA.shards[i].read().unwrap_or_else(PoisonError::into_inner)
        }
    }
}

/// Write-lock a shard, counting contention.
fn write_shard(i: usize) -> RwLockWriteGuard<'static, Shard> {
    match ARENA.shards[i].try_write() {
        Ok(g) => g,
        Err(TryLockError::Poisoned(p)) => p.into_inner(),
        Err(TryLockError::WouldBlock) => {
            LOCK_WAITS.fetch_add(1, Ordering::Relaxed);
            TLS_LOCK_WAITS.with(|w| w.set(w.get() + 1));
            ARENA.shards[i].write().unwrap_or_else(PoisonError::into_inner)
        }
    }
}

/// The current epoch's tag. Loaded while a shard lock is held so the
/// tag and the shard contents are from the same epoch (retirement takes
/// every shard's write lock before bumping).
fn current_tag() -> u8 {
    ARENA.epoch.load(Ordering::Acquire) as u8
}

/// Intern a node, returning the reference and whether it was fresh.
/// The dominant path (structure already interned) takes one shard
/// *read* lock.
fn intern_node(node: Node) -> (ExprRef, bool) {
    let h = node_hash(&node);
    let si = shard_of_hash(h);
    {
        let shard = read_shard(si);
        if let Some(id) = shard.find(h, &node) {
            return (ExprRef::pack(current_tag(), id), false);
        }
    }
    let mut shard = write_shard(si);
    // Re-check: another thread may have interned it between the probes.
    if let Some(id) = shard.find(h, &node) {
        return (ExprRef::pack(current_tag(), id), false);
    }
    let id = shard.push_node(si as u32, h, node);
    (ExprRef::pack(current_tag(), id), true)
}

/// Run `f` on the node behind `e` (one shard read lock).
///
/// # Panics
///
/// Panics when `e` is stale — interned under an epoch tag that no
/// longer matches the arena's (the reference outlived
/// [`retire_arena`]).
pub(crate) fn with_node<R>(e: ExprRef, f: impl FnOnce(&Node) -> R) -> R {
    let shard = read_shard(e.shard());
    let tag = current_tag();
    assert!(
        e.epoch_tag() == tag,
        "stale ExprRef: interned under epoch tag {} but the arena \
         is at epoch {} — the reference outlived retire_arena()",
        e.epoch_tag(),
        ARENA.epoch.load(Ordering::Acquire),
    );
    f(shard.node_at(e.index()))
}

pub(crate) fn constant_global(v: u64) -> ExprRef {
    let slot = local_const_slot(v);
    if let Some(hit) = with_local_caches(|c| match c.consts[slot] {
        Some((val, bits)) if val == v => Some(ExprRef(bits)),
        _ => None,
    }) {
        note_local_hit();
        return hit;
    }
    let e = intern_node(Node::Const(v)).0;
    with_local_caches(|c| c.consts[slot] = Some((v, e.0)));
    e
}

pub(crate) fn var_global(v: VarId) -> ExprRef {
    intern_node(Node::Var(v)).0
}

pub(crate) fn raw_app_global(opcode: OpCode, args: Vec<ExprRef>) -> ExprRef {
    intern_node(Node::App(opcode, args.into_boxed_slice())).0
}

pub(crate) fn as_const_global(e: ExprRef) -> Option<u64> {
    with_node(e, |n| match n {
        Node::Const(v) => Some(*v),
        _ => None,
    })
}

/// Fold, simplify, and intern an application; memoized per raw
/// interned node. The (dominant) cache-hit path costs one shard read
/// lock: the raw node's interned id and its cached simplification live
/// in the same shard, so one acquisition answers both. The miss path
/// computes the simplification with **no lock held** (the simplifier
/// re-enters the public constructors, which lock per operation), so two
/// shards are never locked at once and worker threads cannot deadlock.
pub(crate) fn app_global(opcode: OpCode, args: Vec<ExprRef>) -> ExprRef {
    // L0: the thread cache. A hit would also have hit the sharded
    // constructor cache, so it counts toward the global hit counter.
    let small = args.len() <= LOCAL_APP_MAX_ARGS;
    if small {
        let slot = local_app_slot(opcode, &args);
        if let Some(hit) = with_local_caches(|c| match &c.apps[slot] {
            Some(e)
                if e.op == opcode
                    && usize::from(e.argc) == args.len()
                    && e.args[..args.len()]
                        .iter()
                        .zip(&args)
                        .all(|(&cached, arg)| cached == arg.bits()) =>
            {
                Some(ExprRef(e.result))
            }
            _ => None,
        }) {
            APP_HITS.fetch_add(1, Ordering::Relaxed);
            note_local_hit();
            return hit;
        }
        let mut entry = LocalApp {
            op: opcode,
            argc: args.len() as u8,
            args: [0; LOCAL_APP_MAX_ARGS],
            result: 0,
        };
        for (dst, arg) in entry.args.iter_mut().zip(&args) {
            *dst = arg.bits();
        }
        let result = app_global_shared(opcode, args);
        entry.result = result.bits();
        with_local_caches(|c| c.apps[slot] = Some(entry));
        result
    } else {
        app_global_shared(opcode, args)
    }
}

fn app_global_shared(opcode: OpCode, args: Vec<ExprRef>) -> ExprRef {
    let raw_node = Node::App(opcode, args.into_boxed_slice());
    let h = node_hash(&raw_node);
    let si = shard_of_hash(h);
    // Fast path: raw interned and its simplification cached.
    let raw = {
        let shard = read_shard(si);
        if let Some(id) = shard.find(h, &raw_node) {
            if let Some(&res) = shard.app_cache.get(&id) {
                APP_HITS.fetch_add(1, Ordering::Relaxed);
                return ExprRef::pack(current_tag(), res);
            }
            Some(ExprRef::pack(current_tag(), id))
        } else {
            None
        }
    };
    let raw = match raw {
        Some(r) => r,
        None => {
            let mut shard = write_shard(si);
            if let Some(id) = shard.find(h, &raw_node) {
                if let Some(&res) = shard.app_cache.get(&id) {
                    APP_HITS.fetch_add(1, Ordering::Relaxed);
                    return ExprRef::pack(current_tag(), res);
                }
                ExprRef::pack(current_tag(), id)
            } else {
                let id = shard.push_node(si as u32, h, raw_node);
                ExprRef::pack(current_tag(), id)
            }
        }
    };
    APP_MISSES.fetch_add(1, Ordering::Relaxed);
    let args: Vec<ExprRef> = with_node(raw, |n| match n {
        Node::App(_, a) => a.to_vec(),
        _ => unreachable!("raw app interned above"),
    });
    // Constant folding through the concrete evaluator.
    let result = if let Some(consts) = args
        .iter()
        .map(|&a| as_const_global(a))
        .collect::<Option<Vec<u64>>>()
    {
        let vals: Vec<Val> = consts.into_iter().map(Val::public).collect();
        let folded = op::eval(opcode, &vals).expect("arity checked upstream");
        constant_global(folded.bits)
    } else {
        crate::simplify::simplify_app(opcode, args)
    };
    // Two racing computations of the same raw node produce the same
    // structural result (simplification is deterministic), so first
    // insert wins and the values agree.
    write_shard(si).app_cache.entry(raw.index()).or_insert(result.index());
    result
}

// ----- local read view ----------------------------------------------------

/// A cheap multiplicative hasher for `u32`-keyed local caches (the
/// default SipHash costs more than the lookup it guards here).
#[derive(Default)]
pub(crate) struct FibHasher(u64);

impl Hasher for FibHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
    }

    fn write_u32(&mut self, n: u32) {
        self.0 = (self.0 ^ u64::from(n)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0 ^ n).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }
}

type FastMap<V> = HashMap<u32, V, std::hash::BuildHasherDefault<FibHasher>>;

/// A query-local cache of arena nodes: each distinct node is fetched
/// from its shard exactly once (one read lock) and then read without
/// any locking.
///
/// The sharded interner has no "hold one big read lock for the whole
/// query" mode on purpose — a long-held all-shard read guard would
/// block every writer in every thread, serializing exactly the workload
/// the shards exist for. The solver's hot loops (hundreds of `eval`s
/// over the same constraint expressions per query) go through a
/// `LocalView` instead.
#[derive(Default)]
pub(crate) struct LocalView {
    cache: FastMap<Rc<Node>>,
}

impl LocalView {
    pub(crate) fn new() -> Self {
        LocalView::default()
    }

    fn node(&mut self, e: ExprRef) -> Rc<Node> {
        if let Some(n) = self.cache.get(&e.bits()) {
            return Rc::clone(n);
        }
        let n = Rc::new(with_node(e, Clone::clone));
        self.cache.insert(e.bits(), Rc::clone(&n));
        n
    }

    pub(crate) fn as_const(&mut self, e: ExprRef) -> Option<u64> {
        match &*self.node(e) {
            Node::Const(v) => Some(*v),
            _ => None,
        }
    }

    pub(crate) fn as_var(&mut self, e: ExprRef) -> Option<VarId> {
        match &*self.node(e) {
            Node::Var(v) => Some(*v),
            _ => None,
        }
    }

    pub(crate) fn as_app(&mut self, e: ExprRef) -> Option<(OpCode, Vec<ExprRef>)> {
        match &*self.node(e) {
            Node::App(op, args) => Some((*op, args.to_vec())),
            _ => None,
        }
    }

    pub(crate) fn kind(&mut self, e: ExprRef) -> ExprKind {
        match &*self.node(e) {
            Node::Const(v) => ExprKind::Const(*v),
            Node::Var(v) => ExprKind::Var(*v),
            Node::App(op, args) => ExprKind::App(*op, args.to_vec()),
        }
    }

    pub(crate) fn eval(&mut self, e: ExprRef, model: &Model) -> u64 {
        let node = self.node(e);
        match &*node {
            Node::Const(v) => *v,
            Node::Var(v) => model.get(*v),
            Node::App(opcode, args) => {
                let vals: Vec<Val> = args
                    .iter()
                    .map(|&a| Val::public(self.eval(a, model)))
                    .collect();
                op::eval(*opcode, &vals)
                    .expect("arity checked at construction")
                    .bits
            }
        }
    }

    pub(crate) fn collect_vars(&mut self, e: ExprRef, out: &mut BTreeSet<VarId>) {
        let node = self.node(e);
        match &*node {
            Node::Const(_) => {}
            Node::Var(v) => {
                out.insert(*v);
            }
            Node::App(_, args) => {
                for &a in args.iter() {
                    self.collect_vars(a, out);
                }
            }
        }
    }

    pub(crate) fn collect_consts(&mut self, e: ExprRef, out: &mut BTreeSet<u64>) {
        let node = self.node(e);
        match &*node {
            Node::Const(v) => {
                out.insert(*v);
            }
            Node::Var(_) => {}
            Node::App(_, args) => {
                for &a in args.iter() {
                    self.collect_consts(a, out);
                }
            }
        }
    }

    fn display(&mut self, e: ExprRef, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let node = self.node(e);
        match &*node {
            Node::Const(v) => write!(f, "{v:#x}"),
            Node::Var(v) => write!(f, "{v}"),
            Node::App(opcode, args) => {
                write!(f, "{}(", opcode.mnemonic())?;
                for (i, &a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    self.display(a, f)?;
                }
                write!(f, ")")
            }
        }
    }
}

// ----- stats, epoch -------------------------------------------------------

/// Counters describing the process-wide expression arena.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ArenaStats {
    /// Distinct interned nodes (all shards).
    pub nodes: usize,
    /// Memoized application-constructor hits.
    pub app_cache_hits: u64,
    /// Application-constructor misses (simplifier actually ran).
    pub app_cache_misses: u64,
    /// Current arena epoch (bumped by [`retire_arena`]).
    pub epoch: u64,
    /// Approximate bytes held by the node tables themselves (node
    /// headers plus `App` child slots).
    pub node_bytes: usize,
    /// Approximate bytes held by the dedup indices. With the id-keyed
    /// layout this is a hash and an id per node; the old node-keyed
    /// layout paid `node_bytes` again here.
    pub dedup_bytes: usize,
    /// Shard-lock acquisitions that had to block (the uncontended
    /// `try_lock` probe failed). The roll-up of every shard's
    /// contention; explorations report the delta as
    /// `arena_lock_waits`.
    pub lock_waits: u64,
    /// Lock stripes the interner is divided into.
    pub shards: usize,
}

/// Snapshot the arena counters (used by batch analyses to report
/// structural sharing across programs). Shards are sampled one at a
/// time, so concurrent interning can skew individual counters by a few
/// nodes — the numbers are for reporting, not synchronization.
pub fn arena_stats() -> ArenaStats {
    let mut nodes = 0usize;
    let mut child_slots = 0usize;
    let mut dedup_len = 0usize;
    let mut overflow_ids = 0usize;
    for i in 0..NUM_SHARDS {
        let shard = read_shard(i);
        nodes += shard.nodes.len();
        child_slots += shard.child_slots;
        dedup_len += shard.dedup.len();
        overflow_ids += shard.dedup_overflow.values().map(Vec::len).sum::<usize>();
    }
    ArenaStats {
        nodes,
        app_cache_hits: APP_HITS.load(Ordering::Relaxed),
        app_cache_misses: APP_MISSES.load(Ordering::Relaxed),
        epoch: ARENA.epoch.load(Ordering::Acquire),
        node_bytes: nodes * std::mem::size_of::<Node>()
            + child_slots * std::mem::size_of::<ExprRef>(),
        dedup_bytes: dedup_len * (std::mem::size_of::<u64>() + std::mem::size_of::<u32>())
            + overflow_ids * std::mem::size_of::<u32>(),
        lock_waits: LOCK_WAITS.load(Ordering::Relaxed),
        shards: NUM_SHARDS,
    }
}

/// Cumulative count of contended interner-lock acquisitions (see
/// [`ArenaStats::lock_waits`]).
pub fn arena_lock_waits() -> u64 {
    LOCK_WAITS.load(Ordering::Relaxed)
}

/// The current arena epoch. References interned before the last
/// [`retire_arena`] call belong to earlier epochs and must not be used.
pub fn arena_epoch() -> u64 {
    ARENA.epoch.load(Ordering::Acquire)
}

/// Retire the process-wide expression arena: every interned node, the
/// dedup indices, the memoized application caches, and the solver's
/// verdict memo are dropped, and the epoch is bumped.
///
/// Long-lived processes call this between batches so the arena does not
/// grow monotonically. Any [`ExprRef`] minted before the reset is
/// *stale*: its packed epoch tag no longer matches the arena's, and
/// using it **panics** with a clear message rather than aliasing a node
/// of the new epoch. (The tag is 8 bits, so detection is generational
/// modulo 256 — a stale reference would have to survive 256 retirements
/// unused before it could be misread; holding `ExprRef`s across even
/// one retirement is already a bug.) Retirement takes every shard's
/// write lock, so it must not run while analyses are in flight — the
/// service layer defers policy-triggered retirement until its job
/// count drains.
///
/// Returns the new epoch number.
pub fn retire_arena() -> u64 {
    let epoch = {
        let mut guards: Vec<RwLockWriteGuard<'_, Shard>> =
            (0..NUM_SHARDS).map(write_shard).collect();
        for g in guards.iter_mut() {
            g.clear();
        }
        // Bumped while every shard is exclusively held: no interner can
        // mint a new-epoch reference into an old shard or vice versa.
        ARENA.epoch.fetch_add(1, Ordering::AcqRel) + 1
    };
    crate::solver::reset_memo_for_new_epoch();
    epoch
}

// ----- snapshot export / import ------------------------------------------

/// One interned node in flat, id-free form: children are indices into
/// the exported node table (always smaller than the node's own index —
/// the export is emitted in global interning order, and children are
/// always interned before their parents).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ExportedNode {
    /// A constant.
    Const(u64),
    /// A variable (by [`VarId`] number).
    Var(u32),
    /// An application of an opcode to earlier table entries.
    App(OpCode, Vec<u32>),
}

/// A flat copy of the arena: the node table in interning order plus the
/// memoized application cache as `(raw index, simplified index)` pairs.
/// This is what [`import_arena`] consumes and what the `sct-cache`
/// crate serializes.
#[derive(Clone, Default, Debug)]
pub struct ArenaExport {
    /// Every interned node, children as table indices.
    pub nodes: Vec<ExportedNode>,
    /// The `(op, args) → simplified` constructor cache, as indices.
    pub app_cache: Vec<(u32, u32)>,
}

/// Flatten the shards into an export while holding `guards` (read
/// guards on every shard, in order), returning the export plus the
/// live-id → table-position map the memo export needs.
fn export_arena_locked(guards: &[RwLockReadGuard<'static, Shard>]) -> (ArenaExport, FastMap<u32>) {
    // Global interning order: children precede parents.
    let mut order: Vec<(u64, u32)> = Vec::new();
    for (si, shard) in guards.iter().enumerate() {
        for (slot, &seq) in shard.seqs.iter().enumerate() {
            order.push((seq, ((slot as u32) << SHARD_BITS) | si as u32));
        }
    }
    order.sort_unstable();
    let mut pos_of: FastMap<u32> = FastMap::default();
    let mut nodes = Vec::with_capacity(order.len());
    for (pos, &(_, id)) in order.iter().enumerate() {
        let node = guards[(id & SHARD_MASK) as usize].node_at(id);
        let exported = match node {
            Node::Const(v) => ExportedNode::Const(*v),
            Node::Var(v) => ExportedNode::Var(v.0),
            Node::App(op, args) => ExportedNode::App(
                *op,
                args.iter()
                    .map(|c| *pos_of.get(&c.index()).expect("children precede parents"))
                    .collect(),
            ),
        };
        nodes.push(exported);
        pos_of.insert(id, pos as u32);
    }
    let mut app_cache: Vec<(u32, u32)> = Vec::new();
    for shard in guards {
        for (&raw, &result) in &shard.app_cache {
            app_cache.push((pos_of[&raw], pos_of[&result]));
        }
    }
    app_cache.sort_unstable();
    (ArenaExport { nodes, app_cache }, pos_of)
}

/// Flatten the process-wide arena into an [`ArenaExport`].
pub fn export_arena() -> ArenaExport {
    let guards: Vec<_> = (0..NUM_SHARDS).map(read_shard).collect();
    export_arena_locked(&guards).0
}

/// Flatten the arena **and** the solver-verdict memo consistently: the
/// arena shards stay read-locked while the memo is exported, so every
/// memo key id resolves to a position in the very node table being
/// written. This is what `sct-cache` snapshots call.
pub fn export_all() -> (ArenaExport, crate::solver::MemoExport) {
    let guards: Vec<_> = (0..NUM_SHARDS).map(read_shard).collect();
    let (arena, pos_of) = export_arena_locked(&guards);
    let memo = crate::solver::export_memo_with(|index| pos_of.get(&index).copied());
    (arena, memo)
}

/// [`export_all`] plus the node-table positions of `roots`: live
/// [`ExprRef`]s the caller wants kept by a reachability-pruned
/// snapshot in addition to the memo keys (`sct-cache`'s
/// `Snapshot::capture_rooted`). The arena shards stay read-locked
/// across all three parts, so the positions index the very table
/// being returned. Roots from an earlier epoch (stale tag) are
/// skipped rather than panicking — a pruning caller holding
/// pre-retirement refs just loses those roots.
pub fn export_all_rooted(
    roots: &[ExprRef],
) -> (ArenaExport, crate::solver::MemoExport, Vec<u32>) {
    let guards: Vec<_> = (0..NUM_SHARDS).map(read_shard).collect();
    let (arena, pos_of) = export_arena_locked(&guards);
    let memo = crate::solver::export_memo_with(|index| pos_of.get(&index).copied());
    let tag = ARENA.epoch.load(Ordering::Acquire) as u8;
    let mut positions: Vec<u32> = roots
        .iter()
        .filter(|r| r.epoch_tag() == tag)
        .filter_map(|r| pos_of.get(&r.index()).copied())
        .collect();
    positions.sort_unstable();
    positions.dedup();
    (arena, memo, positions)
}

/// Why an [`ArenaExport`] was rejected by [`import_arena`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ArenaImportError {
    /// An `App` child referred to a node at or after its parent.
    ChildOutOfRange {
        /// Index of the offending node.
        node: usize,
        /// The out-of-range child index.
        child: u32,
    },
    /// An `App` operand count violated its opcode's arity.
    BadArity {
        /// Index of the offending node.
        node: usize,
        /// The application's opcode.
        opcode: OpCode,
        /// The operand count found.
        argc: usize,
    },
    /// An app-cache pair referred outside the node table.
    CacheOutOfRange {
        /// The out-of-range index.
        index: u32,
    },
}

impl fmt::Display for ArenaImportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArenaImportError::ChildOutOfRange { node, child } => {
                write!(f, "node {node} references child {child} at or after itself")
            }
            ArenaImportError::BadArity { node, opcode, argc } => {
                write!(f, "node {node}: {} does not take {argc} operands", opcode.mnemonic())
            }
            ArenaImportError::CacheOutOfRange { index } => {
                write!(f, "app-cache entry references missing node {index}")
            }
        }
    }
}

impl std::error::Error for ArenaImportError {}

/// What [`import_arena`] did.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ArenaImportStats {
    /// Nodes in the imported snapshot.
    pub snapshot_nodes: usize,
    /// Snapshot nodes that were already interned (identical structure).
    pub preexisting: usize,
    /// Snapshot nodes newly added to the arena.
    pub added: usize,
    /// App-cache pairs merged (pairs whose raw node already had a cached
    /// result are kept as-is and not counted).
    pub app_cache_merged: usize,
}

/// Hydrate the process-wide arena from an export, returning the
/// remapping table `snapshot index → live ExprRef` plus import
/// statistics.
///
/// The arena need not be empty: every snapshot node is re-interned
/// structurally, so ids are remapped, shared structure lands on the
/// existing ids, and snapshots taken by different processes compose.
/// Nodes are inserted verbatim (no re-simplification — the snapshot
/// already stores post-simplification structure), and the app cache is
/// merged without overwriting live entries.
///
/// Every reference in `export` is validated before anything is
/// interned; a malformed export leaves the arena untouched.
pub fn import_arena(export: &ArenaExport) -> Result<(Vec<ExprRef>, ArenaImportStats), ArenaImportError> {
    // Validate up front so no partial import can corrupt the arena.
    for (i, node) in export.nodes.iter().enumerate() {
        if let ExportedNode::App(op, args) = node {
            if let Some(arity) = op.arity() {
                if args.len() != arity {
                    return Err(ArenaImportError::BadArity {
                        node: i,
                        opcode: *op,
                        argc: args.len(),
                    });
                }
            } else if args.is_empty() {
                return Err(ArenaImportError::BadArity {
                    node: i,
                    opcode: *op,
                    argc: 0,
                });
            }
            for &c in args {
                if c as usize >= i {
                    return Err(ArenaImportError::ChildOutOfRange { node: i, child: c });
                }
            }
        }
    }
    let n = export.nodes.len() as u32;
    for &(raw, result) in &export.app_cache {
        for index in [raw, result] {
            if index >= n {
                return Err(ArenaImportError::CacheOutOfRange { index });
            }
        }
    }
    let mut stats = ArenaImportStats {
        snapshot_nodes: export.nodes.len(),
        ..Default::default()
    };
    let mut remap: Vec<ExprRef> = Vec::with_capacity(export.nodes.len());
    for node in &export.nodes {
        let node = match node {
            ExportedNode::Const(v) => Node::Const(*v),
            ExportedNode::Var(v) => Node::Var(VarId(*v)),
            ExportedNode::App(op, args) => Node::App(
                *op,
                args.iter().map(|&c| remap[c as usize]).collect(),
            ),
        };
        let (e, fresh) = intern_node(node);
        if fresh {
            stats.added += 1;
        } else {
            stats.preexisting += 1;
        }
        remap.push(e);
    }
    for &(raw, result) in &export.app_cache {
        let (raw, result) = (remap[raw as usize], remap[result as usize]);
        let mut shard = write_shard(raw.shard());
        if let std::collections::hash_map::Entry::Vacant(v) = shard.app_cache.entry(raw.index()) {
            v.insert(result.index());
            stats.app_cache_merged += 1;
        }
    }
    Ok((remap, stats))
}

impl ExprRef {
    /// A constant.
    pub fn constant(v: u64) -> ExprRef {
        constant_global(v)
    }

    /// A variable.
    pub fn var(v: VarId) -> ExprRef {
        var_global(v)
    }

    /// Apply an opcode, folding constants and simplifying. Structurally
    /// identical results — however they were derived, on whatever
    /// thread — intern to the same id.
    ///
    /// # Panics
    ///
    /// Panics if the operand count violates the opcode's arity — callers
    /// construct applications from machine instructions, which were
    /// arity-checked at assembly time.
    pub fn app(opcode: OpCode, args: Vec<ExprRef>) -> ExprRef {
        app_global(opcode, args)
    }

    /// Intern an application verbatim, without simplification. Used by
    /// tests and diagnostics to compare raw against simplified forms;
    /// production construction goes through [`ExprRef::app`].
    pub fn raw_app(opcode: OpCode, args: Vec<ExprRef>) -> ExprRef {
        raw_app_global(opcode, args)
    }

    /// The constant value, if this expression is a constant.
    pub fn as_const(self) -> Option<u64> {
        as_const_global(self)
    }

    /// The variable, if this expression is one.
    pub fn as_var(self) -> Option<VarId> {
        with_node(self, |n| match n {
            Node::Var(v) => Some(*v),
            _ => None,
        })
    }

    /// The node shape: constant, variable, or application (children as
    /// [`ExprRef`]s).
    pub fn kind(self) -> ExprKind {
        with_node(self, |n| match n {
            Node::Const(v) => ExprKind::Const(*v),
            Node::Var(v) => ExprKind::Var(*v),
            Node::App(op, args) => ExprKind::App(*op, args.to_vec()),
        })
    }

    /// `true` when the expression contains no variables.
    pub fn is_concrete(self) -> bool {
        self.as_const().is_some()
    }

    /// Evaluate under a model (total: missing variables read 0).
    pub fn eval(self, model: &Model) -> u64 {
        LocalView::new().eval(self, model)
    }

    /// Collect the variables occurring in the expression.
    pub fn collect_vars(self, out: &mut BTreeSet<VarId>) {
        LocalView::new().collect_vars(self, out);
    }

    /// The variables occurring in the expression.
    pub fn vars(self) -> BTreeSet<VarId> {
        let mut s = BTreeSet::new();
        self.collect_vars(&mut s);
        s
    }

    /// Structural equality — with hash-consing this is id equality.
    /// Kept for readability at call sites predating the arena.
    pub fn same(self, other: ExprRef) -> bool {
        self == other
    }

    /// All constants occurring in the expression (seed values for the
    /// solver's candidate search).
    pub fn collect_consts(self, out: &mut BTreeSet<u64>) {
        LocalView::new().collect_consts(self, out);
    }
}

impl From<u64> for ExprRef {
    fn from(v: u64) -> Self {
        ExprRef::constant(v)
    }
}

impl fmt::Display for ExprRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        LocalView::new().display(*self, f)
    }
}

impl fmt::Debug for ExprRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}`{self}`", self.index())
    }
}

/// Mints fresh variables with remembered debug names.
#[derive(Clone, Debug, Default)]
pub struct VarPool {
    names: Vec<String>,
}

impl VarPool {
    /// An empty pool.
    pub fn new() -> Self {
        VarPool::default()
    }

    /// Mint a fresh variable with a debug name.
    pub fn fresh(&mut self, name: impl Into<String>) -> VarId {
        let id = VarId(self.names.len() as u32);
        self.names.push(name.into());
        id
    }

    /// The debug name of a variable from this pool.
    pub fn name(&self, v: VarId) -> Option<&str> {
        self.names.get(v.0 as usize).map(String::as_str)
    }

    /// Number of minted variables.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` if no variable was minted.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_fold_through_concrete_evaluator() {
        let e = Expr::app(
            OpCode::Add,
            vec![Expr::constant(2), Expr::constant(3), Expr::constant(4)],
        );
        assert_eq!(e.as_const(), Some(9));
        let e = Expr::app(OpCode::Gt, vec![Expr::constant(4), Expr::constant(9)]);
        assert_eq!(e.as_const(), Some(0));
    }

    #[test]
    fn interning_is_structural() {
        let a = Expr::app(OpCode::Add, vec![Expr::var(VarId(0)), Expr::constant(3)]);
        let b = Expr::app(OpCode::Add, vec![Expr::var(VarId(0)), Expr::constant(3)]);
        assert_eq!(a, b, "same structure must intern to the same id");
        let c = Expr::app(OpCode::Add, vec![Expr::var(VarId(1)), Expr::constant(3)]);
        assert_ne!(a, c);
    }

    #[test]
    fn interning_is_structural_across_threads() {
        // The whole point of shard-by-hash: two threads interning the
        // same structure get the same id, whoever wins the race.
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    (0..64u64)
                        .map(|k| {
                            Expr::app(
                                OpCode::Add,
                                vec![Expr::var(VarId(900)), Expr::constant(0x5eed_0000 + k)],
                            )
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let ids: Vec<Vec<Expr>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for other in &ids[1..] {
            assert_eq!(&ids[0], other, "concurrent interning must agree on ids");
        }
    }

    #[test]
    fn eval_matches_concrete_semantics_on_random_exprs() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..500 {
            let op = OpCode::ALL[rng.gen_range(0..OpCode::ALL.len())];
            let n = op.arity().unwrap_or(2).max(1);
            let args: Vec<u64> = (0..n).map(|_| rng.gen_range(0..64)).collect();
            let sym = Expr::app(op, args.iter().map(|&v| Expr::constant(v)).collect());
            let conc = op::eval(op, &args.iter().map(|&v| Val::public(v)).collect::<Vec<_>>())
                .unwrap()
                .bits;
            assert_eq!(sym.as_const(), Some(conc), "{op:?} {args:?}");
        }
    }

    #[test]
    fn variables_evaluate_under_models() {
        let x = VarId(0);
        let e = Expr::app(OpCode::Add, vec![Expr::var(x), Expr::constant(5)]);
        let mut m = Model::new();
        assert_eq!(e.eval(&m), 5);
        m.set(x, 10);
        assert_eq!(e.eval(&m), 15);
    }

    #[test]
    fn vars_and_consts_are_collected() {
        let x = VarId(0);
        let y = VarId(1);
        let e = Expr::app(
            OpCode::Add,
            vec![
                Expr::var(x),
                Expr::app(OpCode::Mul, vec![Expr::var(y), Expr::constant(8)]),
            ],
        );
        assert_eq!(e.vars().len(), 2);
        let mut consts = BTreeSet::new();
        e.collect_consts(&mut consts);
        assert!(consts.contains(&8));
    }

    #[test]
    fn pool_names_variables() {
        let mut pool = VarPool::new();
        let a = pool.fresh("ra");
        let b = pool.fresh("mem_0x48");
        assert_eq!(pool.name(a), Some("ra"));
        assert_eq!(pool.name(b), Some("mem_0x48"));
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn display_is_readable() {
        let e = Expr::app(OpCode::Add, vec![Expr::var(VarId(3)), Expr::constant(0x44)]);
        assert_eq!(e.to_string(), "add(v3, 0x44)");
    }

    #[test]
    fn app_constructor_is_memoized() {
        let before = arena_stats();
        let x = Expr::var(VarId(7));
        let a = Expr::app(OpCode::Add, vec![x, Expr::constant(41)]);
        let b = Expr::app(OpCode::Add, vec![x, Expr::constant(41)]);
        assert_eq!(a, b);
        let after = arena_stats();
        assert!(
            after.app_cache_hits > before.app_cache_hits,
            "second construction must hit the cache"
        );
    }

    #[test]
    fn stats_report_shards() {
        let stats = arena_stats();
        assert_eq!(stats.shards, NUM_SHARDS);
    }
}
