//! Hash-consed symbolic bit-vector expressions over 64-bit words.
//!
//! Expressions are immutable nodes interned in a process-wide arena:
//! an [`ExprRef`] is a 32-bit id, structural equality is id equality
//! (O(1)), and every distinct structure is stored exactly once, so
//! cloning machine states shares all expression structure. The
//! [`ExprRef::app`] constructor folds constants eagerly (delegating to
//! the *concrete* evaluator of `sct-core`, so symbolic and concrete
//! semantics cannot drift), applies the algebraic simplifications of
//! [`crate::simplify`], and memoizes `(op, args) → result`, so
//! re-deriving the same value along different schedules is a cache hit.
//!
//! The arena is shared by every analysis in the process (see
//! [`arena_stats`]); batch runs over many programs reuse each other's
//! interned expressions.

use sct_core::op::{self, OpCode};
use sct_core::Val;
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{LazyLock, PoisonError, RwLock, RwLockReadGuard};

/// Bits of an [`ExprRef`] holding the arena index; the remaining high
/// bits hold the epoch tag (see [`retire_arena`]).
const INDEX_BITS: u32 = 24;
/// Largest interned-node index representable in one epoch (~16.7M).
const MAX_INDEX: u32 = (1 << INDEX_BITS) - 1;

/// A symbolic input variable.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct VarId(pub u32);

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// An assignment of concrete values to variables (default 0).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Model {
    map: std::collections::BTreeMap<VarId, u64>,
}

impl Model {
    /// The all-zero model.
    pub fn new() -> Self {
        Model::default()
    }

    /// Look up a variable (0 when unassigned).
    pub fn get(&self, v: VarId) -> u64 {
        self.map.get(&v).copied().unwrap_or(0)
    }

    /// Assign a variable.
    pub fn set(&mut self, v: VarId, value: u64) {
        self.map.insert(v, value);
    }

    /// Iterate over explicit assignments.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, u64)> + '_ {
        self.map.iter().map(|(&v, &x)| (v, x))
    }
}

impl FromIterator<(VarId, u64)> for Model {
    fn from_iter<I: IntoIterator<Item = (VarId, u64)>>(iter: I) -> Self {
        Model {
            map: iter.into_iter().collect(),
        }
    }
}

/// An interned expression node. Children are [`ExprRef`]s, so the node
/// itself is small and hashes in O(arity).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub(crate) enum Node {
    Const(u64),
    Var(VarId),
    App(OpCode, Box<[ExprRef]>),
}

/// A reference into the expression arena: a 32-bit id whose equality is
/// structural equality of the interned (simplified) expression.
///
/// `ExprRef` is `Copy`; cloning a whole symbolic machine state copies
/// ids, never expression trees. The `Ord` instance is interning order —
/// arbitrary but deterministic within a process, which is what the
/// explorer needs to canonicalize path-condition sets.
///
/// The 32 bits are split: the low [`INDEX_BITS`] index into the arena,
/// the high bits carry the arena's epoch tag at interning time. After
/// [`retire_arena`] the tag no longer matches, so using a retired
/// reference panics loudly instead of silently reading an unrelated
/// node (see the epoch discussion on [`retire_arena`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ExprRef(u32);

impl ExprRef {
    fn pack(tag: u8, index: u32) -> ExprRef {
        debug_assert!(index <= MAX_INDEX);
        ExprRef((u32::from(tag) << INDEX_BITS) | index)
    }

    /// The arena index (low bits, without the epoch tag).
    pub(crate) fn index(self) -> u32 {
        self.0 & MAX_INDEX
    }

    /// The epoch tag this reference was interned under.
    fn epoch_tag(self) -> u8 {
        (self.0 >> INDEX_BITS) as u8
    }
}

/// The traditional name: the seed's `Expr` tree type is now an interned
/// reference.
pub type Expr = ExprRef;

/// A borrowed view of a node, for callers that need to match on
/// structure (the solver's bound extraction, the interval analysis).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ExprKind {
    /// A constant.
    Const(u64),
    /// A variable.
    Var(VarId),
    /// An application.
    App(OpCode, Vec<ExprRef>),
}

/// The hash-consing interner. One process-wide instance lives behind a
/// [`RwLock`]; public [`ExprRef`] methods lock it, crate-internal code
/// (the simplifier, the interval analysis, the solver's hot loops)
/// receives `&ExprArena`/`&mut ExprArena` to stay re-entrancy-free.
///
/// The dedup index is **id-keyed**: each node is stored exactly once,
/// in `nodes`, and the index maps a 64-bit structural hash to the id
/// (with an overflow table for the ~never case of colliding hashes).
/// The previous layout kept every `Node` a second time as its own map
/// key, roughly doubling resident arena memory.
#[derive(Debug, Default)]
pub(crate) struct ExprArena {
    /// Epoch counter; bumped by [`ExprArena::retire`]. The low 8 bits
    /// are the tag packed into every handed-out [`ExprRef`].
    epoch: u64,
    nodes: Vec<Node>,
    /// Total child slots across all `App` nodes (memory accounting).
    child_slots: usize,
    /// Structural hash → interned id. Nodes live only in `nodes`.
    dedup: HashMap<u64, u32>,
    /// Extra ids whose structural hash collides with an entry of
    /// `dedup` (64-bit collisions: expected never at our arena sizes,
    /// handled for correctness).
    dedup_overflow: HashMap<u64, Vec<u32>>,
    app_cache: HashMap<ExprRef, ExprRef>,
    app_hits: u64,
    app_misses: u64,
}

/// The deterministic structural hash the dedup index is keyed by
/// (SipHash with fixed keys; stable within a process, not across).
fn node_hash(node: &Node) -> u64 {
    let mut h = std::hash::DefaultHasher::new();
    node.hash(&mut h);
    h.finish()
}

impl ExprArena {
    fn epoch_tag(&self) -> u8 {
        self.epoch as u8
    }

    /// Intern a node, returning the existing id when the structure is
    /// already present.
    fn intern(&mut self, node: Node) -> ExprRef {
        let h = node_hash(&node);
        if let Some(&id) = self.dedup.get(&h) {
            if self.nodes[id as usize] == node {
                return ExprRef::pack(self.epoch_tag(), id);
            }
            // Genuine 64-bit hash collision: consult/extend overflow.
            if let Some(ids) = self.dedup_overflow.get(&h) {
                for &id in ids {
                    if self.nodes[id as usize] == node {
                        return ExprRef::pack(self.epoch_tag(), id);
                    }
                }
            }
            let id = self.push_node(node);
            self.dedup_overflow.entry(h).or_default().push(id);
            return ExprRef::pack(self.epoch_tag(), id);
        }
        let id = self.push_node(node);
        self.dedup.insert(h, id);
        ExprRef::pack(self.epoch_tag(), id)
    }

    fn push_node(&mut self, node: Node) -> u32 {
        let id = u32::try_from(self.nodes.len()).expect("expression arena overflow");
        assert!(
            id <= MAX_INDEX,
            "expression arena overflow: {} nodes exceed the per-epoch \
             capacity of 2^{INDEX_BITS}; retire the arena between batches",
            self.nodes.len()
        );
        if let Node::App(_, args) = &node {
            self.child_slots += args.len();
        }
        self.nodes.push(node);
        id
    }

    fn node(&self, e: ExprRef) -> &Node {
        assert!(
            e.epoch_tag() == self.epoch_tag(),
            "stale ExprRef: interned under epoch tag {} but the arena \
             is at epoch {} — the reference outlived retire_arena()",
            e.epoch_tag(),
            self.epoch
        );
        &self.nodes[e.index() as usize]
    }

    /// Retire the current expression arena: drop every node, the dedup
    /// index, and the memoized constructor cache, and bump the epoch so
    /// previously handed-out `ExprRef`s are detectably stale.
    pub(crate) fn retire(&mut self) -> u64 {
        self.epoch += 1;
        self.nodes = Vec::new();
        self.child_slots = 0;
        self.dedup = HashMap::new();
        self.dedup_overflow = HashMap::new();
        self.app_cache = HashMap::new();
        self.epoch
    }

    pub(crate) fn constant(&mut self, v: u64) -> ExprRef {
        self.intern(Node::Const(v))
    }

    pub(crate) fn var(&mut self, v: VarId) -> ExprRef {
        self.intern(Node::Var(v))
    }

    /// Intern an application verbatim, without simplification (used by
    /// the simplifier to terminate).
    pub(crate) fn raw_app(&mut self, opcode: OpCode, args: Vec<ExprRef>) -> ExprRef {
        self.intern(Node::App(opcode, args.into_boxed_slice()))
    }

    /// Fold, simplify, and intern an application; memoized per raw
    /// interned node. The (dominant) cache-hit path costs one interning
    /// probe — exact-capacity argument vectors convert to boxed slices
    /// without reallocating, so no fresh allocation on a hit beyond
    /// that probe's key.
    pub(crate) fn app(&mut self, opcode: OpCode, args: Vec<ExprRef>) -> ExprRef {
        let raw = self.intern(Node::App(opcode, args.into_boxed_slice()));
        if let Some(&cached) = self.app_cache.get(&raw) {
            self.app_hits += 1;
            return cached;
        }
        self.app_misses += 1;
        let args: Vec<ExprRef> = match self.node(raw) {
            Node::App(_, a) => a.to_vec(),
            _ => unreachable!("raw app interned above"),
        };
        // Constant folding through the concrete evaluator.
        let result = if let Some(consts) = args
            .iter()
            .map(|a| self.as_const(*a))
            .collect::<Option<Vec<u64>>>()
        {
            let vals: Vec<Val> = consts.into_iter().map(Val::public).collect();
            let folded = op::eval(opcode, &vals).expect("arity checked upstream");
            self.constant(folded.bits)
        } else {
            crate::simplify::simplify_app(self, opcode, args)
        };
        self.app_cache.insert(raw, result);
        result
    }

    pub(crate) fn as_const(&self, e: ExprRef) -> Option<u64> {
        match self.node(e) {
            Node::Const(v) => Some(*v),
            _ => None,
        }
    }

    pub(crate) fn as_var(&self, e: ExprRef) -> Option<VarId> {
        match self.node(e) {
            Node::Var(v) => Some(*v),
            _ => None,
        }
    }

    pub(crate) fn as_app(&self, e: ExprRef) -> Option<(OpCode, &[ExprRef])> {
        match self.node(e) {
            Node::App(op, args) => Some((*op, args)),
            _ => None,
        }
    }

    pub(crate) fn kind(&self, e: ExprRef) -> ExprKind {
        match self.node(e) {
            Node::Const(v) => ExprKind::Const(*v),
            Node::Var(v) => ExprKind::Var(*v),
            Node::App(op, args) => ExprKind::App(*op, args.to_vec()),
        }
    }

    pub(crate) fn eval(&self, e: ExprRef, model: &Model) -> u64 {
        match self.node(e) {
            Node::Const(v) => *v,
            Node::Var(v) => model.get(*v),
            Node::App(opcode, args) => {
                let vals: Vec<Val> = args
                    .iter()
                    .map(|&a| Val::public(self.eval(a, model)))
                    .collect();
                op::eval(*opcode, &vals)
                    .expect("arity checked at construction")
                    .bits
            }
        }
    }

    pub(crate) fn collect_vars(&self, e: ExprRef, out: &mut BTreeSet<VarId>) {
        match self.node(e) {
            Node::Const(_) => {}
            Node::Var(v) => {
                out.insert(*v);
            }
            Node::App(_, args) => {
                for &a in args.iter() {
                    self.collect_vars(a, out);
                }
            }
        }
    }

    pub(crate) fn collect_consts(&self, e: ExprRef, out: &mut BTreeSet<u64>) {
        match self.node(e) {
            Node::Const(v) => {
                out.insert(*v);
            }
            Node::Var(_) => {}
            Node::App(_, args) => {
                for &a in args.iter() {
                    self.collect_consts(a, out);
                }
            }
        }
    }

    fn display(&self, e: ExprRef, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.node(e) {
            Node::Const(v) => write!(f, "{v:#x}"),
            Node::Var(v) => write!(f, "{v}"),
            Node::App(opcode, args) => {
                write!(f, "{}(", opcode.mnemonic())?;
                for (i, &a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    self.display(a, f)?;
                }
                write!(f, ")")
            }
        }
    }
}

static ARENA: LazyLock<RwLock<ExprArena>> = LazyLock::new(|| RwLock::new(ExprArena::default()));

/// Run `f` with shared access to the process-wide arena.
///
/// Lock discipline: arena-internal code never calls back into these
/// helpers; a poisoned lock (panic in an unrelated test) is ignored
/// because the arena is append-only and stays structurally valid.
pub(crate) fn with_arena<R>(f: impl FnOnce(&ExprArena) -> R) -> R {
    f(&ARENA.read().unwrap_or_else(PoisonError::into_inner))
}

/// Run `f` with exclusive access to the process-wide arena.
pub(crate) fn with_arena_mut<R>(f: impl FnOnce(&mut ExprArena) -> R) -> R {
    f(&mut ARENA.write().unwrap_or_else(PoisonError::into_inner))
}

/// A read guard on the arena, for hot loops that make many read-only
/// queries (the solver's model search) without re-locking.
pub(crate) fn read_arena() -> RwLockReadGuard<'static, ExprArena> {
    ARENA.read().unwrap_or_else(PoisonError::into_inner)
}

/// Counters describing the process-wide expression arena.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ArenaStats {
    /// Distinct interned nodes.
    pub nodes: usize,
    /// Memoized application-constructor hits.
    pub app_cache_hits: u64,
    /// Application-constructor misses (simplifier actually ran).
    pub app_cache_misses: u64,
    /// Current arena epoch (bumped by [`retire_arena`]).
    pub epoch: u64,
    /// Approximate bytes held by the node table itself (node headers
    /// plus `App` child slots).
    pub node_bytes: usize,
    /// Approximate bytes held by the dedup index. With the id-keyed
    /// layout this is a hash and an id per node; the old node-keyed
    /// layout paid `node_bytes` again here.
    pub dedup_bytes: usize,
}

/// Snapshot the arena counters (used by batch analyses to report
/// structural sharing across programs).
pub fn arena_stats() -> ArenaStats {
    with_arena(|a| {
        let overflow_ids: usize = a.dedup_overflow.values().map(Vec::len).sum();
        ArenaStats {
            nodes: a.nodes.len(),
            app_cache_hits: a.app_hits,
            app_cache_misses: a.app_misses,
            epoch: a.epoch,
            node_bytes: a.nodes.len() * std::mem::size_of::<Node>()
                + a.child_slots * std::mem::size_of::<ExprRef>(),
            dedup_bytes: a.dedup.len() * (std::mem::size_of::<u64>() + std::mem::size_of::<u32>())
                + overflow_ids * std::mem::size_of::<u32>(),
        }
    })
}

/// The current arena epoch. References interned before the last
/// [`retire_arena`] call belong to earlier epochs and must not be used.
pub fn arena_epoch() -> u64 {
    with_arena(|a| a.epoch)
}

/// Retire the process-wide expression arena: every interned node, the
/// dedup index, the memoized application cache, and the solver's
/// verdict memo are dropped, and the epoch is bumped.
///
/// Long-lived processes call this between batches so the arena does not
/// grow monotonically. Any [`ExprRef`] minted before the reset is
/// *stale*: its packed epoch tag no longer matches the arena's, and
/// using it **panics** with a clear message rather than aliasing a node
/// of the new epoch. (The tag is 8 bits, so detection is generational
/// modulo 256 — a stale reference would have to survive 256 retirements
/// unused before it could be misread; holding `ExprRef`s across even
/// one retirement is already a bug.)
///
/// Returns the new epoch number.
pub fn retire_arena() -> u64 {
    let epoch = with_arena_mut(ExprArena::retire);
    crate::solver::reset_memo_for_new_epoch();
    epoch
}

// ----- snapshot export / import ------------------------------------------

/// One interned node in flat, id-free form: children are indices into
/// the exported node table (always smaller than the node's own index —
/// the arena is topologically ordered by construction).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ExportedNode {
    /// A constant.
    Const(u64),
    /// A variable (by [`VarId`] number).
    Var(u32),
    /// An application of an opcode to earlier table entries.
    App(OpCode, Vec<u32>),
}

/// A flat copy of the arena: the node table in interning order plus the
/// memoized application cache as `(raw index, simplified index)` pairs.
/// This is what [`import_arena`] consumes and what the `sct-cache`
/// crate serializes.
#[derive(Clone, Default, Debug)]
pub struct ArenaExport {
    /// Every interned node, children as table indices.
    pub nodes: Vec<ExportedNode>,
    /// The `(op, args) → simplified` constructor cache, as indices.
    pub app_cache: Vec<(u32, u32)>,
}

/// Flatten the process-wide arena into an [`ArenaExport`].
pub fn export_arena() -> ArenaExport {
    with_arena(|a| {
        let nodes = a
            .nodes
            .iter()
            .map(|n| match n {
                Node::Const(v) => ExportedNode::Const(*v),
                Node::Var(v) => ExportedNode::Var(v.0),
                Node::App(op, args) => {
                    ExportedNode::App(*op, args.iter().map(|c| c.index()).collect())
                }
            })
            .collect();
        let mut app_cache: Vec<(u32, u32)> = a
            .app_cache
            .iter()
            .map(|(raw, result)| (raw.index(), result.index()))
            .collect();
        app_cache.sort_unstable();
        ArenaExport { nodes, app_cache }
    })
}

/// Why an [`ArenaExport`] was rejected by [`import_arena`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ArenaImportError {
    /// An `App` child referred to a node at or after its parent.
    ChildOutOfRange {
        /// Index of the offending node.
        node: usize,
        /// The out-of-range child index.
        child: u32,
    },
    /// An `App` operand count violated its opcode's arity.
    BadArity {
        /// Index of the offending node.
        node: usize,
        /// The application's opcode.
        opcode: OpCode,
        /// The operand count found.
        argc: usize,
    },
    /// An app-cache pair referred outside the node table.
    CacheOutOfRange {
        /// The out-of-range index.
        index: u32,
    },
}

impl fmt::Display for ArenaImportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArenaImportError::ChildOutOfRange { node, child } => {
                write!(f, "node {node} references child {child} at or after itself")
            }
            ArenaImportError::BadArity { node, opcode, argc } => {
                write!(f, "node {node}: {} does not take {argc} operands", opcode.mnemonic())
            }
            ArenaImportError::CacheOutOfRange { index } => {
                write!(f, "app-cache entry references missing node {index}")
            }
        }
    }
}

impl std::error::Error for ArenaImportError {}

/// What [`import_arena`] did.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ArenaImportStats {
    /// Nodes in the imported snapshot.
    pub snapshot_nodes: usize,
    /// Snapshot nodes that were already interned (identical structure).
    pub preexisting: usize,
    /// Snapshot nodes newly added to the arena.
    pub added: usize,
    /// App-cache pairs merged (pairs whose raw node already had a cached
    /// result are kept as-is and not counted).
    pub app_cache_merged: usize,
}

/// Hydrate the process-wide arena from an export, returning the
/// remapping table `snapshot index → live ExprRef` plus import
/// statistics.
///
/// The arena need not be empty: every snapshot node is re-interned
/// structurally, so ids are remapped, shared structure lands on the
/// existing ids, and snapshots taken by different processes compose.
/// Nodes are inserted verbatim (no re-simplification — the snapshot
/// already stores post-simplification structure), and the app cache is
/// merged without overwriting live entries.
///
/// Every reference in `export` is validated before anything is
/// interned; a malformed export leaves the arena untouched.
pub fn import_arena(export: &ArenaExport) -> Result<(Vec<ExprRef>, ArenaImportStats), ArenaImportError> {
    // Validate up front so no partial import can corrupt the arena.
    for (i, node) in export.nodes.iter().enumerate() {
        if let ExportedNode::App(op, args) = node {
            if let Some(arity) = op.arity() {
                if args.len() != arity {
                    return Err(ArenaImportError::BadArity {
                        node: i,
                        opcode: *op,
                        argc: args.len(),
                    });
                }
            } else if args.is_empty() {
                return Err(ArenaImportError::BadArity {
                    node: i,
                    opcode: *op,
                    argc: 0,
                });
            }
            for &c in args {
                if c as usize >= i {
                    return Err(ArenaImportError::ChildOutOfRange { node: i, child: c });
                }
            }
        }
    }
    let n = export.nodes.len() as u32;
    for &(raw, result) in &export.app_cache {
        for index in [raw, result] {
            if index >= n {
                return Err(ArenaImportError::CacheOutOfRange { index });
            }
        }
    }
    with_arena_mut(|a| {
        let mut stats = ArenaImportStats {
            snapshot_nodes: export.nodes.len(),
            ..Default::default()
        };
        let mut remap: Vec<ExprRef> = Vec::with_capacity(export.nodes.len());
        for node in &export.nodes {
            let node = match node {
                ExportedNode::Const(v) => Node::Const(*v),
                ExportedNode::Var(v) => Node::Var(VarId(*v)),
                ExportedNode::App(op, args) => Node::App(
                    *op,
                    args.iter().map(|&c| remap[c as usize]).collect(),
                ),
            };
            let before = a.nodes.len();
            let e = a.intern(node);
            if a.nodes.len() == before {
                stats.preexisting += 1;
            } else {
                stats.added += 1;
            }
            remap.push(e);
        }
        for &(raw, result) in &export.app_cache {
            let (raw, result) = (remap[raw as usize], remap[result as usize]);
            if let std::collections::hash_map::Entry::Vacant(v) = a.app_cache.entry(raw) {
                v.insert(result);
                stats.app_cache_merged += 1;
            }
        }
        Ok((remap, stats))
    })
}

impl ExprRef {
    /// A constant.
    pub fn constant(v: u64) -> ExprRef {
        with_arena_mut(|a| a.constant(v))
    }

    /// A variable.
    pub fn var(v: VarId) -> ExprRef {
        with_arena_mut(|a| a.var(v))
    }

    /// Apply an opcode, folding constants and simplifying. Structurally
    /// identical results — however they were derived — intern to the
    /// same id.
    ///
    /// # Panics
    ///
    /// Panics if the operand count violates the opcode's arity — callers
    /// construct applications from machine instructions, which were
    /// arity-checked at assembly time.
    pub fn app(opcode: OpCode, args: Vec<ExprRef>) -> ExprRef {
        with_arena_mut(|a| a.app(opcode, args))
    }

    /// Intern an application verbatim, without simplification. Used by
    /// tests and diagnostics to compare raw against simplified forms;
    /// production construction goes through [`ExprRef::app`].
    pub fn raw_app(opcode: OpCode, args: Vec<ExprRef>) -> ExprRef {
        with_arena_mut(|a| a.raw_app(opcode, args))
    }

    /// The constant value, if this expression is a constant.
    pub fn as_const(self) -> Option<u64> {
        with_arena(|a| a.as_const(self))
    }

    /// The variable, if this expression is one.
    pub fn as_var(self) -> Option<VarId> {
        with_arena(|a| a.as_var(self))
    }

    /// The node shape: constant, variable, or application (children as
    /// [`ExprRef`]s).
    pub fn kind(self) -> ExprKind {
        with_arena(|a| a.kind(self))
    }

    /// `true` when the expression contains no variables.
    pub fn is_concrete(self) -> bool {
        self.as_const().is_some()
    }

    /// Evaluate under a model (total: missing variables read 0).
    pub fn eval(self, model: &Model) -> u64 {
        with_arena(|a| a.eval(self, model))
    }

    /// Collect the variables occurring in the expression.
    pub fn collect_vars(self, out: &mut BTreeSet<VarId>) {
        with_arena(|a| a.collect_vars(self, out));
    }

    /// The variables occurring in the expression.
    pub fn vars(self) -> BTreeSet<VarId> {
        let mut s = BTreeSet::new();
        self.collect_vars(&mut s);
        s
    }

    /// Structural equality — with hash-consing this is id equality.
    /// Kept for readability at call sites predating the arena.
    pub fn same(self, other: ExprRef) -> bool {
        self == other
    }

    /// All constants occurring in the expression (seed values for the
    /// solver's candidate search).
    pub fn collect_consts(self, out: &mut BTreeSet<u64>) {
        with_arena(|a| a.collect_consts(self, out));
    }
}

impl From<u64> for ExprRef {
    fn from(v: u64) -> Self {
        ExprRef::constant(v)
    }
}

impl fmt::Display for ExprRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        with_arena(|a| a.display(*self, f))
    }
}

impl fmt::Debug for ExprRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}`{self}`", self.index())
    }
}

/// Mints fresh variables with remembered debug names.
#[derive(Clone, Debug, Default)]
pub struct VarPool {
    names: Vec<String>,
}

impl VarPool {
    /// An empty pool.
    pub fn new() -> Self {
        VarPool::default()
    }

    /// Mint a fresh variable with a debug name.
    pub fn fresh(&mut self, name: impl Into<String>) -> VarId {
        let id = VarId(self.names.len() as u32);
        self.names.push(name.into());
        id
    }

    /// The debug name of a variable from this pool.
    pub fn name(&self, v: VarId) -> Option<&str> {
        self.names.get(v.0 as usize).map(String::as_str)
    }

    /// Number of minted variables.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` if no variable was minted.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_fold_through_concrete_evaluator() {
        let e = Expr::app(
            OpCode::Add,
            vec![Expr::constant(2), Expr::constant(3), Expr::constant(4)],
        );
        assert_eq!(e.as_const(), Some(9));
        let e = Expr::app(OpCode::Gt, vec![Expr::constant(4), Expr::constant(9)]);
        assert_eq!(e.as_const(), Some(0));
    }

    #[test]
    fn interning_is_structural() {
        let a = Expr::app(OpCode::Add, vec![Expr::var(VarId(0)), Expr::constant(3)]);
        let b = Expr::app(OpCode::Add, vec![Expr::var(VarId(0)), Expr::constant(3)]);
        assert_eq!(a, b, "same structure must intern to the same id");
        let c = Expr::app(OpCode::Add, vec![Expr::var(VarId(1)), Expr::constant(3)]);
        assert_ne!(a, c);
    }

    #[test]
    fn eval_matches_concrete_semantics_on_random_exprs() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..500 {
            let op = OpCode::ALL[rng.gen_range(0..OpCode::ALL.len())];
            let n = op.arity().unwrap_or(2).max(1);
            let args: Vec<u64> = (0..n).map(|_| rng.gen_range(0..64)).collect();
            let sym = Expr::app(op, args.iter().map(|&v| Expr::constant(v)).collect());
            let conc = op::eval(op, &args.iter().map(|&v| Val::public(v)).collect::<Vec<_>>())
                .unwrap()
                .bits;
            assert_eq!(sym.as_const(), Some(conc), "{op:?} {args:?}");
        }
    }

    #[test]
    fn variables_evaluate_under_models() {
        let x = VarId(0);
        let e = Expr::app(OpCode::Add, vec![Expr::var(x), Expr::constant(5)]);
        let mut m = Model::new();
        assert_eq!(e.eval(&m), 5);
        m.set(x, 10);
        assert_eq!(e.eval(&m), 15);
    }

    #[test]
    fn vars_and_consts_are_collected() {
        let x = VarId(0);
        let y = VarId(1);
        let e = Expr::app(
            OpCode::Add,
            vec![
                Expr::var(x),
                Expr::app(OpCode::Mul, vec![Expr::var(y), Expr::constant(8)]),
            ],
        );
        assert_eq!(e.vars().len(), 2);
        let mut consts = BTreeSet::new();
        e.collect_consts(&mut consts);
        assert!(consts.contains(&8));
    }

    #[test]
    fn pool_names_variables() {
        let mut pool = VarPool::new();
        let a = pool.fresh("ra");
        let b = pool.fresh("mem_0x48");
        assert_eq!(pool.name(a), Some("ra"));
        assert_eq!(pool.name(b), Some("mem_0x48"));
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn display_is_readable() {
        let e = Expr::app(OpCode::Add, vec![Expr::var(VarId(3)), Expr::constant(0x44)]);
        assert_eq!(e.to_string(), "add(v3, 0x44)");
    }

    #[test]
    fn app_constructor_is_memoized() {
        let before = arena_stats();
        let x = Expr::var(VarId(7));
        let a = Expr::app(OpCode::Add, vec![x, Expr::constant(41)]);
        let b = Expr::app(OpCode::Add, vec![x, Expr::constant(41)]);
        assert_eq!(a, b);
        let after = arena_stats();
        assert!(
            after.app_cache_hits > before.app_cache_hits,
            "second construction must hit the cache"
        );
    }
}
