//! Hash-consed symbolic bit-vector expressions over 64-bit words.
//!
//! Expressions are immutable nodes interned in a process-wide arena:
//! an [`ExprRef`] is a 32-bit id, structural equality is id equality
//! (O(1)), and every distinct structure is stored exactly once, so
//! cloning machine states shares all expression structure. The
//! [`ExprRef::app`] constructor folds constants eagerly (delegating to
//! the *concrete* evaluator of `sct-core`, so symbolic and concrete
//! semantics cannot drift), applies the algebraic simplifications of
//! [`crate::simplify`], and memoizes `(op, args) → result`, so
//! re-deriving the same value along different schedules is a cache hit.
//!
//! The arena is shared by every analysis in the process (see
//! [`arena_stats`]); batch runs over many programs reuse each other's
//! interned expressions.

use sct_core::op::{self, OpCode};
use sct_core::Val;
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::{LazyLock, PoisonError, RwLock, RwLockReadGuard};

/// A symbolic input variable.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct VarId(pub u32);

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// An assignment of concrete values to variables (default 0).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Model {
    map: std::collections::BTreeMap<VarId, u64>,
}

impl Model {
    /// The all-zero model.
    pub fn new() -> Self {
        Model::default()
    }

    /// Look up a variable (0 when unassigned).
    pub fn get(&self, v: VarId) -> u64 {
        self.map.get(&v).copied().unwrap_or(0)
    }

    /// Assign a variable.
    pub fn set(&mut self, v: VarId, value: u64) {
        self.map.insert(v, value);
    }

    /// Iterate over explicit assignments.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, u64)> + '_ {
        self.map.iter().map(|(&v, &x)| (v, x))
    }
}

impl FromIterator<(VarId, u64)> for Model {
    fn from_iter<I: IntoIterator<Item = (VarId, u64)>>(iter: I) -> Self {
        Model {
            map: iter.into_iter().collect(),
        }
    }
}

/// An interned expression node. Children are [`ExprRef`]s, so the node
/// itself is small and hashes in O(arity).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub(crate) enum Node {
    Const(u64),
    Var(VarId),
    App(OpCode, Box<[ExprRef]>),
}

/// A reference into the expression arena: a 32-bit id whose equality is
/// structural equality of the interned (simplified) expression.
///
/// `ExprRef` is `Copy`; cloning a whole symbolic machine state copies
/// ids, never expression trees. The `Ord` instance is interning order —
/// arbitrary but deterministic within a process, which is what the
/// explorer needs to canonicalize path-condition sets.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ExprRef(u32);

/// The traditional name: the seed's `Expr` tree type is now an interned
/// reference.
pub type Expr = ExprRef;

/// A borrowed view of a node, for callers that need to match on
/// structure (the solver's bound extraction, the interval analysis).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ExprKind {
    /// A constant.
    Const(u64),
    /// A variable.
    Var(VarId),
    /// An application.
    App(OpCode, Vec<ExprRef>),
}

/// The hash-consing interner. One process-wide instance lives behind a
/// [`RwLock`]; public [`ExprRef`] methods lock it, crate-internal code
/// (the simplifier, the interval analysis, the solver's hot loops)
/// receives `&ExprArena`/`&mut ExprArena` to stay re-entrancy-free.
#[derive(Debug, Default)]
pub(crate) struct ExprArena {
    nodes: Vec<Node>,
    dedup: HashMap<Node, u32>,
    app_cache: HashMap<ExprRef, ExprRef>,
    app_hits: u64,
    app_misses: u64,
}

impl ExprArena {
    /// Intern a node, returning the existing id when the structure is
    /// already present.
    fn intern(&mut self, node: Node) -> ExprRef {
        if let Some(&id) = self.dedup.get(&node) {
            return ExprRef(id);
        }
        let id = u32::try_from(self.nodes.len()).expect("expression arena overflow");
        self.nodes.push(node.clone());
        self.dedup.insert(node, id);
        ExprRef(id)
    }

    fn node(&self, e: ExprRef) -> &Node {
        &self.nodes[e.0 as usize]
    }

    pub(crate) fn constant(&mut self, v: u64) -> ExprRef {
        self.intern(Node::Const(v))
    }

    pub(crate) fn var(&mut self, v: VarId) -> ExprRef {
        self.intern(Node::Var(v))
    }

    /// Intern an application verbatim, without simplification (used by
    /// the simplifier to terminate).
    pub(crate) fn raw_app(&mut self, opcode: OpCode, args: Vec<ExprRef>) -> ExprRef {
        self.intern(Node::App(opcode, args.into_boxed_slice()))
    }

    /// Fold, simplify, and intern an application; memoized per raw
    /// interned node. The (dominant) cache-hit path costs one interning
    /// probe — exact-capacity argument vectors convert to boxed slices
    /// without reallocating, so no fresh allocation on a hit beyond
    /// that probe's key.
    pub(crate) fn app(&mut self, opcode: OpCode, args: Vec<ExprRef>) -> ExprRef {
        let raw = self.intern(Node::App(opcode, args.into_boxed_slice()));
        if let Some(&cached) = self.app_cache.get(&raw) {
            self.app_hits += 1;
            return cached;
        }
        self.app_misses += 1;
        let args: Vec<ExprRef> = match self.node(raw) {
            Node::App(_, a) => a.to_vec(),
            _ => unreachable!("raw app interned above"),
        };
        // Constant folding through the concrete evaluator.
        let result = if let Some(consts) = args
            .iter()
            .map(|a| self.as_const(*a))
            .collect::<Option<Vec<u64>>>()
        {
            let vals: Vec<Val> = consts.into_iter().map(Val::public).collect();
            let folded = op::eval(opcode, &vals).expect("arity checked upstream");
            self.constant(folded.bits)
        } else {
            crate::simplify::simplify_app(self, opcode, args)
        };
        self.app_cache.insert(raw, result);
        result
    }

    pub(crate) fn as_const(&self, e: ExprRef) -> Option<u64> {
        match self.node(e) {
            Node::Const(v) => Some(*v),
            _ => None,
        }
    }

    pub(crate) fn as_var(&self, e: ExprRef) -> Option<VarId> {
        match self.node(e) {
            Node::Var(v) => Some(*v),
            _ => None,
        }
    }

    pub(crate) fn as_app(&self, e: ExprRef) -> Option<(OpCode, &[ExprRef])> {
        match self.node(e) {
            Node::App(op, args) => Some((*op, args)),
            _ => None,
        }
    }

    pub(crate) fn kind(&self, e: ExprRef) -> ExprKind {
        match self.node(e) {
            Node::Const(v) => ExprKind::Const(*v),
            Node::Var(v) => ExprKind::Var(*v),
            Node::App(op, args) => ExprKind::App(*op, args.to_vec()),
        }
    }

    pub(crate) fn eval(&self, e: ExprRef, model: &Model) -> u64 {
        match self.node(e) {
            Node::Const(v) => *v,
            Node::Var(v) => model.get(*v),
            Node::App(opcode, args) => {
                let vals: Vec<Val> = args
                    .iter()
                    .map(|&a| Val::public(self.eval(a, model)))
                    .collect();
                op::eval(*opcode, &vals)
                    .expect("arity checked at construction")
                    .bits
            }
        }
    }

    pub(crate) fn collect_vars(&self, e: ExprRef, out: &mut BTreeSet<VarId>) {
        match self.node(e) {
            Node::Const(_) => {}
            Node::Var(v) => {
                out.insert(*v);
            }
            Node::App(_, args) => {
                for &a in args.iter() {
                    self.collect_vars(a, out);
                }
            }
        }
    }

    pub(crate) fn collect_consts(&self, e: ExprRef, out: &mut BTreeSet<u64>) {
        match self.node(e) {
            Node::Const(v) => {
                out.insert(*v);
            }
            Node::Var(_) => {}
            Node::App(_, args) => {
                for &a in args.iter() {
                    self.collect_consts(a, out);
                }
            }
        }
    }

    fn display(&self, e: ExprRef, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.node(e) {
            Node::Const(v) => write!(f, "{v:#x}"),
            Node::Var(v) => write!(f, "{v}"),
            Node::App(opcode, args) => {
                write!(f, "{}(", opcode.mnemonic())?;
                for (i, &a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    self.display(a, f)?;
                }
                write!(f, ")")
            }
        }
    }
}

static ARENA: LazyLock<RwLock<ExprArena>> = LazyLock::new(|| RwLock::new(ExprArena::default()));

/// Run `f` with shared access to the process-wide arena.
///
/// Lock discipline: arena-internal code never calls back into these
/// helpers; a poisoned lock (panic in an unrelated test) is ignored
/// because the arena is append-only and stays structurally valid.
pub(crate) fn with_arena<R>(f: impl FnOnce(&ExprArena) -> R) -> R {
    f(&ARENA.read().unwrap_or_else(PoisonError::into_inner))
}

/// Run `f` with exclusive access to the process-wide arena.
pub(crate) fn with_arena_mut<R>(f: impl FnOnce(&mut ExprArena) -> R) -> R {
    f(&mut ARENA.write().unwrap_or_else(PoisonError::into_inner))
}

/// A read guard on the arena, for hot loops that make many read-only
/// queries (the solver's model search) without re-locking.
pub(crate) fn read_arena() -> RwLockReadGuard<'static, ExprArena> {
    ARENA.read().unwrap_or_else(PoisonError::into_inner)
}

/// Counters describing the process-wide expression arena.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ArenaStats {
    /// Distinct interned nodes.
    pub nodes: usize,
    /// Memoized application-constructor hits.
    pub app_cache_hits: u64,
    /// Application-constructor misses (simplifier actually ran).
    pub app_cache_misses: u64,
}

/// Snapshot the arena counters (used by batch analyses to report
/// structural sharing across programs).
pub fn arena_stats() -> ArenaStats {
    with_arena(|a| ArenaStats {
        nodes: a.nodes.len(),
        app_cache_hits: a.app_hits,
        app_cache_misses: a.app_misses,
    })
}

impl ExprRef {
    /// A constant.
    pub fn constant(v: u64) -> ExprRef {
        with_arena_mut(|a| a.constant(v))
    }

    /// A variable.
    pub fn var(v: VarId) -> ExprRef {
        with_arena_mut(|a| a.var(v))
    }

    /// Apply an opcode, folding constants and simplifying. Structurally
    /// identical results — however they were derived — intern to the
    /// same id.
    ///
    /// # Panics
    ///
    /// Panics if the operand count violates the opcode's arity — callers
    /// construct applications from machine instructions, which were
    /// arity-checked at assembly time.
    pub fn app(opcode: OpCode, args: Vec<ExprRef>) -> ExprRef {
        with_arena_mut(|a| a.app(opcode, args))
    }

    /// Intern an application verbatim, without simplification. Used by
    /// tests and diagnostics to compare raw against simplified forms;
    /// production construction goes through [`ExprRef::app`].
    pub fn raw_app(opcode: OpCode, args: Vec<ExprRef>) -> ExprRef {
        with_arena_mut(|a| a.raw_app(opcode, args))
    }

    /// The constant value, if this expression is a constant.
    pub fn as_const(self) -> Option<u64> {
        with_arena(|a| a.as_const(self))
    }

    /// The variable, if this expression is one.
    pub fn as_var(self) -> Option<VarId> {
        with_arena(|a| a.as_var(self))
    }

    /// The node shape: constant, variable, or application (children as
    /// [`ExprRef`]s).
    pub fn kind(self) -> ExprKind {
        with_arena(|a| a.kind(self))
    }

    /// `true` when the expression contains no variables.
    pub fn is_concrete(self) -> bool {
        self.as_const().is_some()
    }

    /// Evaluate under a model (total: missing variables read 0).
    pub fn eval(self, model: &Model) -> u64 {
        with_arena(|a| a.eval(self, model))
    }

    /// Collect the variables occurring in the expression.
    pub fn collect_vars(self, out: &mut BTreeSet<VarId>) {
        with_arena(|a| a.collect_vars(self, out));
    }

    /// The variables occurring in the expression.
    pub fn vars(self) -> BTreeSet<VarId> {
        let mut s = BTreeSet::new();
        self.collect_vars(&mut s);
        s
    }

    /// Structural equality — with hash-consing this is id equality.
    /// Kept for readability at call sites predating the arena.
    pub fn same(self, other: ExprRef) -> bool {
        self == other
    }

    /// All constants occurring in the expression (seed values for the
    /// solver's candidate search).
    pub fn collect_consts(self, out: &mut BTreeSet<u64>) {
        with_arena(|a| a.collect_consts(self, out));
    }
}

impl From<u64> for ExprRef {
    fn from(v: u64) -> Self {
        ExprRef::constant(v)
    }
}

impl fmt::Display for ExprRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        with_arena(|a| a.display(*self, f))
    }
}

impl fmt::Debug for ExprRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}`{self}`", self.0)
    }
}

/// Mints fresh variables with remembered debug names.
#[derive(Clone, Debug, Default)]
pub struct VarPool {
    names: Vec<String>,
}

impl VarPool {
    /// An empty pool.
    pub fn new() -> Self {
        VarPool::default()
    }

    /// Mint a fresh variable with a debug name.
    pub fn fresh(&mut self, name: impl Into<String>) -> VarId {
        let id = VarId(self.names.len() as u32);
        self.names.push(name.into());
        id
    }

    /// The debug name of a variable from this pool.
    pub fn name(&self, v: VarId) -> Option<&str> {
        self.names.get(v.0 as usize).map(String::as_str)
    }

    /// Number of minted variables.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` if no variable was minted.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_fold_through_concrete_evaluator() {
        let e = Expr::app(
            OpCode::Add,
            vec![Expr::constant(2), Expr::constant(3), Expr::constant(4)],
        );
        assert_eq!(e.as_const(), Some(9));
        let e = Expr::app(OpCode::Gt, vec![Expr::constant(4), Expr::constant(9)]);
        assert_eq!(e.as_const(), Some(0));
    }

    #[test]
    fn interning_is_structural() {
        let a = Expr::app(OpCode::Add, vec![Expr::var(VarId(0)), Expr::constant(3)]);
        let b = Expr::app(OpCode::Add, vec![Expr::var(VarId(0)), Expr::constant(3)]);
        assert_eq!(a, b, "same structure must intern to the same id");
        let c = Expr::app(OpCode::Add, vec![Expr::var(VarId(1)), Expr::constant(3)]);
        assert_ne!(a, c);
    }

    #[test]
    fn eval_matches_concrete_semantics_on_random_exprs() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..500 {
            let op = OpCode::ALL[rng.gen_range(0..OpCode::ALL.len())];
            let n = op.arity().unwrap_or(2).max(1);
            let args: Vec<u64> = (0..n).map(|_| rng.gen_range(0..64)).collect();
            let sym = Expr::app(op, args.iter().map(|&v| Expr::constant(v)).collect());
            let conc = op::eval(op, &args.iter().map(|&v| Val::public(v)).collect::<Vec<_>>())
                .unwrap()
                .bits;
            assert_eq!(sym.as_const(), Some(conc), "{op:?} {args:?}");
        }
    }

    #[test]
    fn variables_evaluate_under_models() {
        let x = VarId(0);
        let e = Expr::app(OpCode::Add, vec![Expr::var(x), Expr::constant(5)]);
        let mut m = Model::new();
        assert_eq!(e.eval(&m), 5);
        m.set(x, 10);
        assert_eq!(e.eval(&m), 15);
    }

    #[test]
    fn vars_and_consts_are_collected() {
        let x = VarId(0);
        let y = VarId(1);
        let e = Expr::app(
            OpCode::Add,
            vec![
                Expr::var(x),
                Expr::app(OpCode::Mul, vec![Expr::var(y), Expr::constant(8)]),
            ],
        );
        assert_eq!(e.vars().len(), 2);
        let mut consts = BTreeSet::new();
        e.collect_consts(&mut consts);
        assert!(consts.contains(&8));
    }

    #[test]
    fn pool_names_variables() {
        let mut pool = VarPool::new();
        let a = pool.fresh("ra");
        let b = pool.fresh("mem_0x48");
        assert_eq!(pool.name(a), Some("ra"));
        assert_eq!(pool.name(b), Some("mem_0x48"));
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn display_is_readable() {
        let e = Expr::app(OpCode::Add, vec![Expr::var(VarId(3)), Expr::constant(0x44)]);
        assert_eq!(e.to_string(), "add(v3, 0x44)");
    }

    #[test]
    fn app_constructor_is_memoized() {
        let before = arena_stats();
        let x = Expr::var(VarId(7));
        let a = Expr::app(OpCode::Add, vec![x, Expr::constant(41)]);
        let b = Expr::app(OpCode::Add, vec![x, Expr::constant(41)]);
        assert_eq!(a, b);
        let after = arena_stats();
        assert!(
            after.app_cache_hits > before.app_cache_hits,
            "second construction must hit the cache"
        );
    }
}
