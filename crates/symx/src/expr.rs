//! Symbolic bit-vector expressions over 64-bit words.
//!
//! Expressions are immutable reference-counted trees. Constructors fold
//! constants eagerly (by delegating to the *concrete* evaluator of
//! `sct-core`, so symbolic and concrete semantics cannot drift) and apply
//! the algebraic simplifications of [`crate::simplify`].

use sct_core::op::{self, OpCode};
use sct_core::Val;
use std::collections::BTreeSet;
use std::fmt;
use std::rc::Rc;

/// A symbolic input variable.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct VarId(pub u32);

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// An assignment of concrete values to variables (default 0).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Model {
    map: std::collections::BTreeMap<VarId, u64>,
}

impl Model {
    /// The all-zero model.
    pub fn new() -> Self {
        Model::default()
    }

    /// Look up a variable (0 when unassigned).
    pub fn get(&self, v: VarId) -> u64 {
        self.map.get(&v).copied().unwrap_or(0)
    }

    /// Assign a variable.
    pub fn set(&mut self, v: VarId, value: u64) {
        self.map.insert(v, value);
    }

    /// Iterate over explicit assignments.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, u64)> + '_ {
        self.map.iter().map(|(&v, &x)| (v, x))
    }
}

impl FromIterator<(VarId, u64)> for Model {
    fn from_iter<I: IntoIterator<Item = (VarId, u64)>>(iter: I) -> Self {
        Model {
            map: iter.into_iter().collect(),
        }
    }
}

#[derive(PartialEq, Eq, Hash, Debug)]
pub(crate) enum Node {
    Const(u64),
    Var(VarId),
    App(OpCode, Vec<Expr>),
}

/// A symbolic expression (cheap to clone).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Expr(pub(crate) Rc<Node>);

impl Expr {
    /// A constant.
    pub fn constant(v: u64) -> Expr {
        Expr(Rc::new(Node::Const(v)))
    }

    /// A variable.
    pub fn var(v: VarId) -> Expr {
        Expr(Rc::new(Node::Var(v)))
    }

    /// Apply an opcode, folding constants and simplifying.
    ///
    /// # Panics
    ///
    /// Panics if the operand count violates the opcode's arity — callers
    /// construct applications from machine instructions, which were
    /// arity-checked at assembly time.
    pub fn app(opcode: OpCode, args: Vec<Expr>) -> Expr {
        // Constant folding through the concrete evaluator.
        if let Some(consts) = args
            .iter()
            .map(|a| a.as_const())
            .collect::<Option<Vec<u64>>>()
        {
            let vals: Vec<Val> = consts.into_iter().map(Val::public).collect();
            let folded = op::eval(opcode, &vals).expect("arity checked upstream");
            return Expr::constant(folded.bits);
        }
        crate::simplify::simplify_app(opcode, args)
    }

    /// Raw application without simplification (used by the simplifier to
    /// terminate).
    pub(crate) fn raw_app(opcode: OpCode, args: Vec<Expr>) -> Expr {
        Expr(Rc::new(Node::App(opcode, args)))
    }

    /// The constant value, if this expression is a constant.
    pub fn as_const(&self) -> Option<u64> {
        match &*self.0 {
            Node::Const(v) => Some(*v),
            _ => None,
        }
    }

    /// The variable, if this expression is one.
    pub fn as_var(&self) -> Option<VarId> {
        match &*self.0 {
            Node::Var(v) => Some(*v),
            _ => None,
        }
    }

    /// `true` when the expression contains no variables.
    pub fn is_concrete(&self) -> bool {
        self.as_const().is_some()
    }

    /// Evaluate under a model (total: missing variables read 0).
    pub fn eval(&self, model: &Model) -> u64 {
        match &*self.0 {
            Node::Const(v) => *v,
            Node::Var(v) => model.get(*v),
            Node::App(opcode, args) => {
                let vals: Vec<Val> = args
                    .iter()
                    .map(|a| Val::public(a.eval(model)))
                    .collect();
                op::eval(*opcode, &vals)
                    .expect("arity checked at construction")
                    .bits
            }
        }
    }

    /// Collect the variables occurring in the expression.
    pub fn collect_vars(&self, out: &mut BTreeSet<VarId>) {
        match &*self.0 {
            Node::Const(_) => {}
            Node::Var(v) => {
                out.insert(*v);
            }
            Node::App(_, args) => {
                for a in args {
                    a.collect_vars(out);
                }
            }
        }
    }

    /// The variables occurring in the expression.
    pub fn vars(&self) -> BTreeSet<VarId> {
        let mut s = BTreeSet::new();
        self.collect_vars(&mut s);
        s
    }

    /// Number of nodes (used to bound simplifier work).
    pub fn size(&self) -> usize {
        match &*self.0 {
            Node::Const(_) | Node::Var(_) => 1,
            Node::App(_, args) => 1 + args.iter().map(Expr::size).sum::<usize>(),
        }
    }

    /// Structural equality with a pointer fast path.
    pub fn same(&self, other: &Expr) -> bool {
        Rc::ptr_eq(&self.0, &other.0) || self == other
    }

    /// All constants occurring in the expression (seed values for the
    /// solver's candidate search).
    pub fn collect_consts(&self, out: &mut BTreeSet<u64>) {
        match &*self.0 {
            Node::Const(v) => {
                out.insert(*v);
            }
            Node::Var(_) => {}
            Node::App(_, args) => {
                for a in args {
                    a.collect_consts(out);
                }
            }
        }
    }
}

impl From<u64> for Expr {
    fn from(v: u64) -> Self {
        Expr::constant(v)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &*self.0 {
            Node::Const(v) => write!(f, "{v:#x}"),
            Node::Var(v) => write!(f, "{v}"),
            Node::App(opcode, args) => {
                write!(f, "{}(", opcode.mnemonic())?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// Mints fresh variables with remembered debug names.
#[derive(Clone, Debug, Default)]
pub struct VarPool {
    names: Vec<String>,
}

impl VarPool {
    /// An empty pool.
    pub fn new() -> Self {
        VarPool::default()
    }

    /// Mint a fresh variable with a debug name.
    pub fn fresh(&mut self, name: impl Into<String>) -> VarId {
        let id = VarId(self.names.len() as u32);
        self.names.push(name.into());
        id
    }

    /// The debug name of a variable from this pool.
    pub fn name(&self, v: VarId) -> Option<&str> {
        self.names.get(v.0 as usize).map(String::as_str)
    }

    /// Number of minted variables.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` if no variable was minted.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_fold_through_concrete_evaluator() {
        let e = Expr::app(
            OpCode::Add,
            vec![Expr::constant(2), Expr::constant(3), Expr::constant(4)],
        );
        assert_eq!(e.as_const(), Some(9));
        let e = Expr::app(OpCode::Gt, vec![Expr::constant(4), Expr::constant(9)]);
        assert_eq!(e.as_const(), Some(0));
    }

    #[test]
    fn eval_matches_concrete_semantics_on_random_exprs() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..500 {
            let op = OpCode::ALL[rng.gen_range(0..OpCode::ALL.len())];
            let n = op.arity().unwrap_or(2).max(1);
            let args: Vec<u64> = (0..n).map(|_| rng.gen_range(0..64)).collect();
            let sym = Expr::app(op, args.iter().map(|&v| Expr::constant(v)).collect());
            let conc = op::eval(op, &args.iter().map(|&v| Val::public(v)).collect::<Vec<_>>())
                .unwrap()
                .bits;
            assert_eq!(sym.as_const(), Some(conc), "{op:?} {args:?}");
        }
    }

    #[test]
    fn variables_evaluate_under_models() {
        let x = VarId(0);
        let e = Expr::app(OpCode::Add, vec![Expr::var(x), Expr::constant(5)]);
        let mut m = Model::new();
        assert_eq!(e.eval(&m), 5);
        m.set(x, 10);
        assert_eq!(e.eval(&m), 15);
    }

    #[test]
    fn vars_and_consts_are_collected() {
        let x = VarId(0);
        let y = VarId(1);
        let e = Expr::app(
            OpCode::Add,
            vec![
                Expr::var(x),
                Expr::app(OpCode::Mul, vec![Expr::var(y), Expr::constant(8)]),
            ],
        );
        assert_eq!(e.vars().len(), 2);
        let mut consts = BTreeSet::new();
        e.collect_consts(&mut consts);
        assert!(consts.contains(&8));
    }

    #[test]
    fn pool_names_variables() {
        let mut pool = VarPool::new();
        let a = pool.fresh("ra");
        let b = pool.fresh("mem_0x48");
        assert_eq!(pool.name(a), Some("ra"));
        assert_eq!(pool.name(b), Some("mem_0x48"));
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn display_is_readable() {
        let e = Expr::app(OpCode::Add, vec![Expr::var(VarId(3)), Expr::constant(0x44)]);
        assert_eq!(e.to_string(), "add(v3, 0x44)");
    }
}
