//! Symbolic machine state: labeled symbolic values, register files, and
//! memories.
//!
//! Pitchfork's machine concretizes addresses before touching memory
//! (as angr does, §4.2 of the paper), so the memory is keyed by concrete
//! addresses while *contents* stay symbolic.

use crate::expr::{Expr, Model, VarId, VarPool};
use sct_core::{Label, Lattice, Reg, Val};
use std::collections::BTreeMap;

/// A labeled symbolic value — the symbolic analogue of [`sct_core::Val`].
///
/// With the hash-consed expression arena this is two words and `Copy`:
/// register files and memories clone by `memcpy`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SymVal {
    /// The symbolic word.
    pub expr: Expr,
    /// Its security label.
    pub label: Label,
}

impl SymVal {
    /// A labeled symbolic value.
    pub fn new(expr: Expr, label: Label) -> Self {
        SymVal { expr, label }
    }

    /// A concrete public value.
    pub fn public(bits: u64) -> Self {
        SymVal::new(Expr::constant(bits), Label::Public)
    }

    /// A concrete secret value.
    pub fn secret(bits: u64) -> Self {
        SymVal::new(Expr::constant(bits), Label::Secret)
    }

    /// A fresh symbolic variable with the given label.
    pub fn fresh(pool: &mut VarPool, name: impl Into<String>, label: Label) -> (Self, VarId) {
        let v = pool.fresh(name);
        (SymVal::new(Expr::var(v), label), v)
    }

    /// Lift a concrete labeled value.
    pub fn from_val(v: Val) -> Self {
        SymVal::new(Expr::constant(v.bits), v.label)
    }

    /// The concrete value, if the expression is constant.
    pub fn as_const(&self) -> Option<Val> {
        self.expr.as_const().map(|b| Val::new(b, self.label))
    }

    /// Join the label (`v_{ℓ ⊔ ℓ'}`).
    pub fn join_label(mut self, l: Label) -> Self {
        self.label = self.label.join(l);
        self
    }

    /// Evaluate under a model to a concrete labeled value.
    pub fn eval(&self, model: &Model) -> Val {
        Val::new(self.expr.eval(model), self.label)
    }
}

impl std::fmt::Display for SymVal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}{}", self.expr, self.label)
    }
}

/// Symbolic register file (`ρ` with symbolic values).
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct SymRegFile {
    map: BTreeMap<Reg, SymVal>,
}

impl SymRegFile {
    /// An empty register file.
    pub fn new() -> Self {
        SymRegFile::default()
    }

    /// Read a register; unmapped registers read as concrete public zero.
    pub fn read(&self, r: Reg) -> SymVal {
        self.map.get(&r).copied().unwrap_or_else(|| SymVal::public(0))
    }

    /// Write a register.
    pub fn write(&mut self, r: Reg, v: SymVal) {
        self.map.insert(r, v);
    }

    /// Iterate over explicitly-set registers.
    pub fn iter(&self) -> impl Iterator<Item = (Reg, &SymVal)> + '_ {
        self.map.iter().map(|(&r, v)| (r, v))
    }

    /// Lift a concrete register file.
    pub fn from_concrete(regs: &sct_core::RegFile) -> Self {
        SymRegFile {
            map: regs
                .iter()
                .map(|(r, v)| (r, SymVal::from_val(v)))
                .collect(),
        }
    }

    /// Concretize under a model.
    pub fn eval(&self, model: &Model) -> sct_core::RegFile {
        self.map.iter().map(|(&r, v)| (r, v.eval(model))).collect()
    }
}

/// Symbolic memory: concrete addresses, symbolic labeled contents.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct SymMemory {
    map: BTreeMap<u64, SymVal>,
}

impl SymMemory {
    /// An empty (all zero, public) memory.
    pub fn new() -> Self {
        SymMemory::default()
    }

    /// Read an address; unmapped addresses read as concrete public zero.
    pub fn read(&self, addr: u64) -> SymVal {
        self.map
            .get(&addr)
            .copied()
            .unwrap_or_else(|| SymVal::public(0))
    }

    /// Write an address.
    pub fn write(&mut self, addr: u64, v: SymVal) {
        self.map.insert(addr, v);
    }

    /// Iterate over explicitly-written cells.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &SymVal)> + '_ {
        self.map.iter().map(|(&a, v)| (a, v))
    }

    /// Lift a concrete memory.
    pub fn from_concrete(mem: &sct_core::Memory) -> Self {
        SymMemory {
            map: mem.iter().map(|(a, v)| (a, SymVal::from_val(v))).collect(),
        }
    }

    /// Concretize under a model.
    pub fn eval(&self, model: &Model) -> sct_core::Memory {
        self.map.iter().map(|(&a, v)| (a, v.eval(model))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sct_core::reg::names::*;

    #[test]
    fn symval_lifting_round_trips() {
        let v = Val::secret(9);
        let s = SymVal::from_val(v);
        assert_eq!(s.as_const(), Some(v));
        assert_eq!(s.eval(&Model::new()), v);
    }

    #[test]
    fn fresh_values_are_symbolic() {
        let mut pool = VarPool::new();
        let (s, id) = SymVal::fresh(&mut pool, "ra", Label::Secret);
        assert!(s.as_const().is_none());
        let mut m = Model::new();
        m.set(id, 42);
        assert_eq!(s.eval(&m), Val::secret(42));
    }

    #[test]
    fn regfile_defaults_and_lifting() {
        let rf = SymRegFile::new();
        assert_eq!(rf.read(RA).as_const(), Some(Val::public(0)));
        let concrete: sct_core::RegFile =
            [(RA, Val::public(7)), (RB, Val::secret(3))].into_iter().collect();
        let lifted = SymRegFile::from_concrete(&concrete);
        assert_eq!(lifted.eval(&Model::new()), concrete);
    }

    #[test]
    fn memory_defaults_and_lifting() {
        let mut mem = sct_core::Memory::new();
        mem.write(0x40, Val::secret(5));
        let lifted = SymMemory::from_concrete(&mem);
        assert_eq!(lifted.read(0x40).as_const(), Some(Val::secret(5)));
        assert_eq!(lifted.read(0x99).as_const(), Some(Val::public(0)));
        assert_eq!(lifted.eval(&Model::new()), mem);
    }

    #[test]
    fn join_label_raises() {
        let s = SymVal::public(1).join_label(Label::Secret);
        assert!(s.label.is_secret());
    }
}
