//! A heuristic bit-vector constraint solver.
//!
//! The paper's tool delegates feasibility to angr's SMT solver (with
//! concretization and timeouts); our substitute combines:
//!
//! 1. structural simplification and constant checks;
//! 2. interval-analysis unsatisfiability proofs ([`crate::interval`]);
//! 3. a candidate/model search over "interesting" values (constants
//!    appearing in the constraints ± 1, small values, random probes) with
//!    greedy per-variable repair.
//!
//! The search is complete for the small arithmetic constraints our
//! worst-case schedules generate; when it proves nothing it answers
//! [`Verdict::Unknown`], which the detector treats as satisfiable — an
//! over-approximation that can cost a false positive but never a missed
//! leak, matching how angr concretization errs.
//!
//! Verdicts are memoized in a **lock-striped** process-wide table: the
//! canonical constraint-set key picks one of [`MEMO_SHARDS`] mutexes,
//! so parallel explorations answering from the memo contend only when
//! two threads ask about keys in the same stripe. Recency and capacity
//! stay *global* — one logical LRU across all stripes — so the
//! eviction contract is unchanged from the single-table implementation.

use crate::expr::{Expr, LocalView, Model, VarId};
use crate::interval::{provably_false_in, VarIntervals};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cell::{Cell, RefCell};
use std::collections::{BTreeSet, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{LazyLock, Mutex, MutexGuard, PoisonError, TryLockError};

/// The solver's answer.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// A model satisfying every constraint.
    Sat(Model),
    /// Proven unsatisfiable.
    Unsat,
    /// Nothing proven within budget.
    Unknown,
}

impl Verdict {
    /// `true` for [`Verdict::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, Verdict::Sat(_))
    }

    /// Treat [`Verdict::Unknown`] as satisfiable (the detector's
    /// over-approximating reading).
    pub fn maybe_sat(&self) -> bool {
        !matches!(self, Verdict::Unsat)
    }
}

/// Tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct SolverOptions {
    /// Random probes per query.
    pub random_probes: usize,
    /// Exhaustive-product budget (number of assignments tried).
    pub exhaustive_budget: usize,
    /// Greedy repair sweeps.
    pub repair_rounds: usize,
    /// RNG seed (solving is deterministic given the seed).
    pub seed: u64,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            random_probes: 64,
            exhaustive_budget: 4_096,
            repair_rounds: 4,
            seed: 0x5eed,
        }
    }
}

impl SolverOptions {
    /// A fingerprint of every knob that influences verdicts. Memoized
    /// verdicts are keyed by this tag so a solver with different
    /// options never reads another configuration's cache.
    pub fn tag(&self) -> u64 {
        let mut h = std::hash::DefaultHasher::new();
        self.random_probes.hash(&mut h);
        self.exhaustive_budget.hash(&mut h);
        self.repair_rounds.hash(&mut h);
        self.seed.hash(&mut h);
        h.finish()
    }
}

// ----- verdict memoization ------------------------------------------------

/// Lock stripes of the verdict memo. A key's stripe is its hash modulo
/// this; per-stripe hit/miss counters roll up into
/// [`SolverMemoStats`].
pub const MEMO_SHARDS: usize = 16;

/// A canonical memo key: options tag plus the sorted, deduplicated
/// constraint ids, with the structural hash computed **once** at
/// construction. The hash picks the stripe *and* feeds the stripe's
/// table (via a multiplicative finisher), so the hot probe path hashes
/// the id list exactly once — hashing it twice was a measurable tax on
/// v4-mode exploration.
#[derive(Clone, PartialEq, Eq)]
struct MemoKey {
    hash: u64,
    tag: u64,
    ids: Box<[Expr]>,
}

impl MemoKey {
    fn new(tag: u64, ids: Box<[Expr]>) -> MemoKey {
        let mut h = std::hash::DefaultHasher::new();
        tag.hash(&mut h);
        ids.hash(&mut h);
        MemoKey {
            hash: h.finish(),
            tag,
            ids,
        }
    }

    fn shard(&self) -> usize {
        (self.hash as usize) % MEMO_SHARDS
    }
}

impl Hash for MemoKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

/// Memo storage: [`MemoKey`]s to `(verdict, last-hit tick)`, hashed by
/// the key's precomputed hash.
type MemoEntries =
    HashMap<MemoKey, (Verdict, u64), std::hash::BuildHasherDefault<crate::expr::FibHasher>>;

/// One stripe of the memo.
///
/// Keys hold full `ExprRef`s (epoch tag included), not bare indices: a
/// stale reference used after [`crate::expr::retire_arena`] can then
/// never be answered from the memo — it misses here and trips the
/// arena's stale-ref panic in the solver pipeline, keeping the epoch
/// contract loud.
#[derive(Default)]
struct MemoShard {
    entries: MemoEntries,
    queries: u64,
    hits: u64,
    misses: u64,
    stale_dropped: u64,
    evicted: u64,
}

/// Default cap on memoized verdicts. Within an epoch the memo grows
/// monotonically; the cap keeps a months-old long-running service (and
/// the snapshot it persists) from ballooning without bound.
pub const DEFAULT_MEMO_CAPACITY: usize = 1 << 20;

static MEMO: LazyLock<[Mutex<MemoShard>; MEMO_SHARDS]> =
    LazyLock::new(|| std::array::from_fn(|_| Mutex::new(MemoShard::default())));

/// Global recency clock: each probe and insert takes a fresh tick, so
/// "least recently hit" is well defined across stripes.
static MEMO_TICK: AtomicU64 = AtomicU64::new(0);
/// Total entries across stripes (the capacity trigger).
static MEMO_TOTAL: AtomicUsize = AtomicUsize::new(0);
/// The global capacity cap (one budget shared by all stripes).
static MEMO_CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_MEMO_CAPACITY);
/// Contended memo-lock acquisitions (the `try_lock` probe failed).
static MEMO_LOCK_WAITS: AtomicU64 = AtomicU64::new(0);
/// Serializes eviction passes (the passes lock stripes one at a time;
/// two concurrent passes would double-evict).
static EVICT_LOCK: Mutex<()> = Mutex::new(());

fn lock_memo(i: usize) -> MutexGuard<'static, MemoShard> {
    match MEMO[i].try_lock() {
        Ok(g) => g,
        Err(TryLockError::Poisoned(p)) => p.into_inner(),
        Err(TryLockError::WouldBlock) => {
            MEMO_LOCK_WAITS.fetch_add(1, Ordering::Relaxed);
            TLS_MEMO_WAITS.with(|w| w.set(w.get() + 1));
            MEMO[i].lock().unwrap_or_else(PoisonError::into_inner)
        }
    }
}

// ----- thread-local memo-read cache ---------------------------------------
//
// In front of the striped memo each thread keeps a small direct-mapped
// read cache of `(key, verdict)` pairs. A hit answers `Solver::check`
// without touching any shared lock. Keys are compared in full (options
// tag + sorted ids), the cache is stamped with the arena epoch and
// flushed lazily after [`crate::expr::retire_arena`], so a stale-epoch
// verdict is never replayed. Thread-cache hits bypass the stripe's
// recency touch (the entry may be evicted by the LRU guard while still
// locally cached — harmless, verdicts are deterministic) and are folded
// into [`solver_memo_stats`] through [`MEMO_TLS_HITS`] so hit-rate
// reporting stays truthful.

/// Slots in the per-thread verdict cache (direct-mapped).
const LOCAL_MEMO_SLOTS: usize = 1 << 10;

struct LocalMemo {
    epoch: u64,
    slots: Box<[Option<(MemoKey, Verdict)>]>,
}

thread_local! {
    static LOCAL_MEMO: RefCell<Option<LocalMemo>> = const { RefCell::new(None) };
    /// Per-thread mirror of [`MEMO_LOCK_WAITS`] (exact attribution for
    /// parallel workers).
    static TLS_MEMO_WAITS: Cell<u64> = const { Cell::new(0) };
    /// Per-thread count of thread-cache verdict hits.
    static TLS_MEMO_HITS: Cell<u64> = const { Cell::new(0) };
}

/// Queries answered by a thread-local verdict cache (process-wide).
/// These bypass the per-stripe counters, so [`solver_memo_stats`] adds
/// them to both `queries` and `hits`.
static MEMO_TLS_HITS: AtomicU64 = AtomicU64::new(0);

// ----- check-latency spans ------------------------------------------------
//
// Every `Solver::check` is timed into one of two process-wide
// histograms — answered-from-memo vs full-pipeline — through a
// per-thread `LocalHist` buffer (plain integer bumps on the hot path,
// published on the auto-flush threshold, on `flush_thread_caches`, and
// on thread exit). Timing is skipped entirely when
// `sct_telemetry::enabled()` is off.

static CHECK_HIT_HIST: LazyLock<&'static sct_telemetry::Histogram> =
    LazyLock::new(|| sct_telemetry::histogram(sct_telemetry::names::SOLVER_CHECK_HIT));
static CHECK_MISS_HIST: LazyLock<&'static sct_telemetry::Histogram> =
    LazyLock::new(|| sct_telemetry::histogram(sct_telemetry::names::SOLVER_CHECK_MISS));

struct CheckSpans {
    hit: sct_telemetry::LocalHist,
    miss: sct_telemetry::LocalHist,
}

thread_local! {
    static CHECK_SPANS: RefCell<Option<CheckSpans>> = const { RefCell::new(None) };
}

fn record_check_span(hit: bool, ns: u64) {
    CHECK_SPANS.with(|cell| {
        let mut slot = cell.borrow_mut();
        let spans = slot.get_or_insert_with(|| CheckSpans {
            hit: sct_telemetry::LocalHist::with_auto_flush(*CHECK_HIT_HIST, 64),
            miss: sct_telemetry::LocalHist::with_auto_flush(*CHECK_MISS_HIST, 16),
        });
        if hit {
            spans.hit.record_ns(ns);
        } else {
            spans.miss.record_ns(ns);
        }
    });
}

/// Publish the calling thread's buffered check-latency spans to the
/// process-wide histograms.
pub(crate) fn flush_check_spans() {
    CHECK_SPANS.with(|cell| {
        if let Some(spans) = cell.borrow_mut().as_mut() {
            spans.hit.flush();
            spans.miss.flush();
        }
    });
}

fn with_local_memo<R>(f: impl FnOnce(&mut LocalMemo) -> R) -> R {
    LOCAL_MEMO.with(|cell| {
        let mut slot = cell.borrow_mut();
        let epoch = crate::expr::arena_epoch();
        let memo = match slot.as_mut() {
            Some(m) => {
                if m.epoch != epoch {
                    m.slots.fill(None);
                    m.epoch = epoch;
                }
                m
            }
            None => slot.insert(LocalMemo {
                epoch,
                slots: vec![None; LOCAL_MEMO_SLOTS].into_boxed_slice(),
            }),
        };
        f(memo)
    })
}

fn local_memo_slot(key: &MemoKey) -> usize {
    (key.hash.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) as usize & (LOCAL_MEMO_SLOTS - 1)
}

fn local_memo_get(key: &MemoKey) -> Option<Verdict> {
    with_local_memo(|m| match &m.slots[local_memo_slot(key)] {
        Some((k, v)) if k == key => Some(v.clone()),
        _ => None,
    })
}

fn local_memo_put(key: MemoKey, verdict: Verdict) {
    let slot = local_memo_slot(&key);
    with_local_memo(|m| m.slots[slot] = Some((key, verdict)));
}

/// Drop the calling thread's L1 verdict cache (the shared memo is
/// untouched).
pub(crate) fn flush_local_memo() {
    LOCAL_MEMO.with(|cell| {
        if let Some(m) = cell.borrow_mut().as_mut() {
            m.slots.fill(None);
        }
    });
}

/// This thread's cumulative contended memo-lock acquisitions (the
/// thread's share of [`solver_memo_lock_waits`]).
pub(crate) fn tls_memo_waits() -> u64 {
    TLS_MEMO_WAITS.with(Cell::get)
}

/// This thread's cumulative thread-cache verdict hits.
pub(crate) fn tls_memo_hits() -> u64 {
    TLS_MEMO_HITS.with(Cell::get)
}

fn next_tick() -> u64 {
    MEMO_TICK.fetch_add(1, Ordering::Relaxed) + 1
}

/// Evict least-recently-hit entries (across all stripes) until the
/// table fits the capacity. Eviction is batched — when the cap is
/// crossed, the table is taken ~1/16th below it — so an insert-heavy
/// workload pays the O(n) recency scan once per batch, not once per
/// insert. Entries touched or inserted while the pass runs simply
/// survive it; the cap is a bound, not an invariant the hot path
/// re-establishes per insert.
fn enforce_capacity_global() {
    let capacity = MEMO_CAPACITY.load(Ordering::Relaxed);
    if MEMO_TOTAL.load(Ordering::Relaxed) <= capacity {
        return;
    }
    let _pass = EVICT_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let total = MEMO_TOTAL.load(Ordering::Relaxed);
    if total <= capacity {
        return;
    }
    let slack = (capacity / 16).max(1);
    let target = capacity.saturating_sub(slack).max(1);
    let excess = total - target;
    let mut stamps: Vec<u64> = Vec::with_capacity(total);
    for i in 0..MEMO_SHARDS {
        stamps.extend(lock_memo(i).entries.values().map(|(_, hit)| *hit));
    }
    if stamps.len() < excess {
        return;
    }
    stamps.sort_unstable();
    let cutoff = stamps[excess - 1];
    // Drop everything at or below the cutoff stamp, but never more
    // than `excess` entries (ties on the cutoff stamp cannot happen
    // with a monotonic tick, so this retains exactly `target` barring
    // concurrent touches).
    let mut to_drop = excess;
    for i in 0..MEMO_SHARDS {
        if to_drop == 0 {
            break;
        }
        let mut m = lock_memo(i);
        let before = m.entries.len();
        m.entries.retain(|_, (_, hit)| {
            if to_drop > 0 && *hit <= cutoff {
                to_drop -= 1;
                false
            } else {
                true
            }
        });
        let dropped = before - m.entries.len();
        m.evicted += dropped as u64;
        MEMO_TOTAL.fetch_sub(dropped, Ordering::Relaxed);
    }
}

/// Cap the process-wide verdict memo at `capacity` entries (LRU by
/// last hit; clamped to at least 1). Returns the previous capacity.
/// Shrinking below the current size evicts immediately.
pub fn set_solver_memo_capacity(capacity: usize) -> usize {
    let old = MEMO_CAPACITY.swap(capacity.max(1), Ordering::Relaxed);
    enforce_capacity_global();
    old
}

/// The current verdict-memo capacity (see [`set_solver_memo_capacity`]).
pub fn solver_memo_capacity() -> usize {
    MEMO_CAPACITY.load(Ordering::Relaxed)
}

/// The canonical memo key for a constraint list: sorted, deduplicated
/// interned references. `Solver::check` treats constraints as a set,
/// so logically equal path conditions share one entry.
fn canonical_key(constraints: &[Expr]) -> Box<[Expr]> {
    let mut ids: Vec<Expr> = constraints.to_vec();
    ids.sort_unstable();
    ids.dedup();
    ids.into_boxed_slice()
}

/// Counters describing the process-wide solver verdict memo (per-shard
/// counters rolled up).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SolverMemoStats {
    /// Total `Solver::check` queries issued.
    pub queries: u64,
    /// Queries answered from the memo.
    pub hits: u64,
    /// Queries that ran the full solver pipeline.
    pub misses: u64,
    /// Entries dropped as stale (epoch retirement, or snapshot entries
    /// whose ids could not be remapped).
    pub stale_dropped: u64,
    /// Entries evicted by the capacity guard (LRU by last hit; see
    /// [`set_solver_memo_capacity`]).
    pub evicted: u64,
    /// Entries currently memoized (all stripes).
    pub entries: usize,
    /// The capacity the memo is capped at.
    pub capacity: usize,
    /// Memo-lock acquisitions that had to block (the uncontended
    /// `try_lock` probe failed). Explorations report the delta as
    /// `memo_lock_waits`.
    pub lock_waits: u64,
    /// Lock stripes the memo is divided into.
    pub shards: usize,
}

/// Snapshot the verdict-memo counters. Queries answered by a
/// thread-local read cache never reach a stripe; they are added to both
/// `queries` and `hits` here so rates stay truthful.
pub fn solver_memo_stats() -> SolverMemoStats {
    let tls_hits = MEMO_TLS_HITS.load(Ordering::Relaxed);
    let mut stats = SolverMemoStats {
        queries: tls_hits,
        hits: tls_hits,
        capacity: MEMO_CAPACITY.load(Ordering::Relaxed),
        lock_waits: MEMO_LOCK_WAITS.load(Ordering::Relaxed),
        shards: MEMO_SHARDS,
        ..SolverMemoStats::default()
    };
    for i in 0..MEMO_SHARDS {
        let m = lock_memo(i);
        stats.queries += m.queries;
        stats.hits += m.hits;
        stats.misses += m.misses;
        stats.stale_dropped += m.stale_dropped;
        stats.evicted += m.evicted;
        stats.entries += m.entries.len();
    }
    stats
}

/// Cumulative count of contended memo-lock acquisitions (see
/// [`SolverMemoStats::lock_waits`]).
pub fn solver_memo_lock_waits() -> u64 {
    MEMO_LOCK_WAITS.load(Ordering::Relaxed)
}

/// Drop every memoized verdict: ids are arena references, so a retired
/// arena invalidates the whole table. Called by
/// [`crate::expr::retire_arena`]; counts the drops as stale.
pub(crate) fn reset_memo_for_new_epoch() {
    for i in 0..MEMO_SHARDS {
        let mut m = lock_memo(i);
        let dropped = m.entries.len();
        m.stale_dropped += dropped as u64;
        m.entries = MemoEntries::default();
        MEMO_TOTAL.fetch_sub(dropped, Ordering::Relaxed);
    }
}

/// A flat copy of the verdict memo for persistence: `(options tag,
/// canonical key indices, verdict)` triples, sorted for determinism.
#[derive(Clone, Default, Debug)]
pub struct MemoExport {
    /// The memo entries. Key ids are positions in the arena snapshot
    /// the memo was exported with; [`import_solver_memo`] remaps them.
    pub entries: Vec<(u64, Vec<u32>, Verdict)>,
}

/// Flatten the memo, translating each key id through `position` (the
/// live-index → snapshot-position map of the arena export taken under
/// the same shard guards — see [`crate::expr::export_all`]). Entries
/// with an untranslatable id are dropped rather than exported wrong.
pub(crate) fn export_memo_with(position: impl Fn(u32) -> Option<u32>) -> MemoExport {
    let mut entries: Vec<(u64, Vec<u32>, Verdict)> = Vec::new();
    for i in 0..MEMO_SHARDS {
        let m = lock_memo(i);
        'entry: for (key, (v, _)) in m.entries.iter() {
            let mut ids = Vec::with_capacity(key.ids.len());
            for e in key.ids.iter() {
                match position(e.index()) {
                    Some(p) => ids.push(p),
                    None => continue 'entry,
                }
            }
            entries.push((key.tag, ids, v.clone()));
        }
    }
    entries.sort_unstable_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
    MemoExport { entries }
}

/// What [`import_solver_memo`] did.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct MemoImportStats {
    /// Entries merged into the live memo.
    pub imported: usize,
    /// Entries dropped: a key id was outside the remap table, or the
    /// live memo already held a verdict for the remapped key.
    pub dropped: usize,
}

/// Merge a persisted verdict memo into the process-wide table,
/// remapping every key id through `remap` (the table returned by
/// [`crate::expr::import_arena`] for the snapshot the memo was saved
/// with). Entries that fail to remap are dropped and counted, never
/// trusted.
pub fn import_solver_memo(export: &MemoExport, remap: &[Expr]) -> MemoImportStats {
    let mut stats = MemoImportStats::default();
    'entry: for (tag, key, verdict) in &export.entries {
        let mut ids: Vec<Expr> = Vec::with_capacity(key.len());
        for &old in key {
            match remap.get(old as usize) {
                Some(&e) => ids.push(e),
                None => {
                    stats.dropped += 1;
                    let si = old as usize % MEMO_SHARDS;
                    lock_memo(si).stale_dropped += 1;
                    continue 'entry;
                }
            }
        }
        // Remapping does not preserve order: re-canonicalize.
        ids.sort_unstable();
        ids.dedup();
        let key = MemoKey::new(*tag, ids.into_boxed_slice());
        let si = key.shard();
        let stamp = next_tick();
        let mut m = lock_memo(si);
        match m.entries.entry(key) {
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert((verdict.clone(), stamp));
                MEMO_TOTAL.fetch_add(1, Ordering::Relaxed);
                stats.imported += 1;
            }
            std::collections::hash_map::Entry::Occupied(_) => stats.dropped += 1,
        }
    }
    // One batched pass: snapshot imports land in file order, so the
    // surviving tail under a tight cap is the most recently saved.
    enforce_capacity_global();
    stats
}

/// The solver. Stateless between queries apart from options.
#[derive(Clone, Debug, Default)]
pub struct Solver {
    options: SolverOptions,
}

impl Solver {
    /// A solver with default options.
    pub fn new() -> Self {
        Solver::default()
    }

    /// A solver with explicit options.
    pub fn with_options(options: SolverOptions) -> Self {
        Solver { options }
    }

    /// Check whether all `constraints` (non-zero = true) are
    /// simultaneously satisfiable.
    ///
    /// Results are memoized process-wide per canonical constraint set
    /// (sorted, deduplicated ids) and options tag — solving is
    /// deterministic, and the same path conditions recur constantly
    /// across schedules, programs, and worker threads. See
    /// [`solver_memo_stats`].
    pub fn check(&self, constraints: &[Expr]) -> Verdict {
        let span = sct_telemetry::span_start();
        let key = MemoKey::new(self.options.tag(), canonical_key(constraints));
        // L0: the thread-local read cache — no shared lock on a hit.
        if let Some(v) = local_memo_get(&key) {
            MEMO_TLS_HITS.fetch_add(1, Ordering::Relaxed);
            TLS_MEMO_HITS.with(|h| h.set(h.get() + 1));
            if let Some(ns) = sct_telemetry::span_ns(span) {
                record_check_span(true, ns);
            }
            return v;
        }
        let si = key.shard();
        {
            let mut m = lock_memo(si);
            m.queries += 1;
            let stamp = next_tick();
            if let Some((v, hit)) = m.entries.get_mut(&key) {
                *hit = stamp;
                let v = v.clone();
                m.hits += 1;
                drop(m);
                local_memo_put(key, v.clone());
                if let Some(ns) = sct_telemetry::span_ns(span) {
                    record_check_span(true, ns);
                }
                return v;
            }
        }
        let verdict = self.check_uncached(constraints);
        {
            let mut m = lock_memo(si);
            m.misses += 1;
            let stamp = next_tick();
            // Two threads racing on the same uncached key both solve it
            // (deterministically, to the same verdict); only the first
            // insert grows the table.
            if m.entries.insert(key.clone(), (verdict.clone(), stamp)).is_none() {
                MEMO_TOTAL.fetch_add(1, Ordering::Relaxed);
            }
        }
        local_memo_put(key, verdict.clone());
        enforce_capacity_global();
        if let Some(ns) = sct_telemetry::span_ns(span) {
            record_check_span(false, ns);
        }
        verdict
    }

    /// The full solver pipeline, bypassing (and not populating) the
    /// verdict memo.
    pub fn check_uncached(&self, constraints: &[Expr]) -> Verdict {
        // A query-local node cache: every sub-step is read-only against
        // the arena, and each distinct node is fetched (one shard read
        // lock) at most once for the whole query.
        let mut view = LocalView::new();
        // 1. Constant and structural checks.
        let mut live: Vec<Expr> = Vec::new();
        for &c in constraints {
            match view.as_const(c) {
                Some(0) => return Verdict::Unsat,
                Some(_) => {}
                None => live.push(c),
            }
        }
        if live.is_empty() {
            return Verdict::Sat(Model::new());
        }
        // 2. Interval refutation: derive per-variable bounds from the
        // simple comparisons among the constraints, then re-check every
        // constraint under those assumptions.
        let assumptions = match derive_var_intervals(&mut view, &live) {
            Some(a) => a,
            None => return Verdict::Unsat, // contradictory bounds
        };
        if live
            .iter()
            .any(|&c| provably_false_in(&mut view, c, &assumptions))
        {
            return Verdict::Unsat;
        }
        // 3. Model search.
        match self.search(&mut view, &live) {
            Some(model) => Verdict::Sat(model),
            None => Verdict::Unknown,
        }
    }

    /// Find a model for `expr != 0` alone.
    pub fn check_one(&self, expr: &Expr) -> Verdict {
        self.check(std::slice::from_ref(expr))
    }

    /// Find a model and evaluate `expr` under it, preferring small
    /// values — the angr-style concretization used for addresses.
    /// Returns `None` when the constraints are unsatisfiable.
    pub fn concretize(&self, expr: &Expr, constraints: &[Expr]) -> Option<u64> {
        match self.check(constraints) {
            Verdict::Sat(m) => Some(expr.eval(&m)),
            Verdict::Unsat => None,
            // Unknown: fall back to the all-zero model — arbitrary but
            // deterministic, like angr's preferred-value concretization.
            Verdict::Unknown => Some(expr.eval(&Model::new())),
        }
    }

    fn candidate_values(&self, view: &mut LocalView, constraints: &[Expr]) -> Vec<u64> {
        let mut consts = BTreeSet::new();
        for &c in constraints {
            view.collect_consts(c, &mut consts);
        }
        let mut cands = BTreeSet::new();
        for v in [0u64, 1, 2, 3, 4, 8, 16, 255, u64::MAX] {
            cands.insert(v);
        }
        for &c in &consts {
            cands.insert(c);
            cands.insert(c.wrapping_add(1));
            cands.insert(c.wrapping_sub(1));
        }
        // Pairwise sums/differences catch derived values such as the `7`
        // in `x + 5 == 12` (capped: the grid must stay exhaustible).
        let consts: Vec<u64> = consts.into_iter().take(24).collect();
        for &a in &consts {
            for &b in &consts {
                cands.insert(a.wrapping_add(b));
                cands.insert(a.wrapping_sub(b));
            }
        }
        cands.into_iter().collect()
    }

    fn satisfied(view: &mut LocalView, model: &Model, constraints: &[Expr]) -> usize {
        constraints
            .iter()
            .filter(|&&c| view.eval(c, model) != 0)
            .count()
    }

    fn search(&self, view: &mut LocalView, constraints: &[Expr]) -> Option<Model> {
        let mut vars = BTreeSet::new();
        for &c in constraints {
            view.collect_vars(c, &mut vars);
        }
        let vars: Vec<VarId> = vars.into_iter().collect();
        let cands = self.candidate_values(view, constraints);
        let total = constraints.len();

        // Exhaustive product when affordable.
        let combos = cands.len().checked_pow(vars.len() as u32);
        if let Some(n) = combos {
            if n <= self.options.exhaustive_budget {
                let mut model = Model::new();
                if self.exhaustive(view, &vars, &cands, constraints, &mut model, 0) {
                    return Some(model);
                }
                // Complete search over the candidate grid failed; random
                // probes below may still succeed on off-grid values.
            }
        }

        let mut rng = SmallRng::seed_from_u64(self.options.seed);
        // Random probing with greedy repair.
        for _ in 0..self.options.random_probes {
            let mut model: Model = vars
                .iter()
                .map(|&v| {
                    let x = if rng.gen_bool(0.5) {
                        cands[rng.gen_range(0..cands.len())]
                    } else {
                        rng.gen()
                    };
                    (v, x)
                })
                .collect();
            if Self::satisfied(view, &model, constraints) == total {
                return Some(model);
            }
            // Greedy repair: sweep variables, try every candidate.
            for _ in 0..self.options.repair_rounds {
                let mut improved = false;
                for &v in &vars {
                    let before = Self::satisfied(view, &model, constraints);
                    if before == total {
                        return Some(model);
                    }
                    let orig = model.get(v);
                    let mut best = (before, orig);
                    for &cand in &cands {
                        model.set(v, cand);
                        let score = Self::satisfied(view, &model, constraints);
                        if score > best.0 {
                            best = (score, cand);
                        }
                    }
                    model.set(v, best.1);
                    if best.1 != orig {
                        improved = true;
                    }
                }
                if Self::satisfied(view, &model, constraints) == total {
                    return Some(model);
                }
                if !improved {
                    break;
                }
            }
        }
        None
    }

    #[allow(clippy::too_many_arguments)]
    fn exhaustive(
        &self,
        view: &mut LocalView,
        vars: &[VarId],
        cands: &[u64],
        constraints: &[Expr],
        model: &mut Model,
        depth: usize,
    ) -> bool {
        if depth == vars.len() {
            return Self::satisfied(view, model, constraints) == constraints.len();
        }
        for &c in cands {
            model.set(vars[depth], c);
            if self.exhaustive(view, vars, cands, constraints, model, depth + 1) {
                return true;
            }
        }
        false
    }
}

/// Extract `var ⋈ const` bounds from the constraints and intersect them
/// per variable; `None` means the bounds are contradictory.
fn derive_var_intervals(view: &mut LocalView, constraints: &[Expr]) -> Option<VarIntervals> {
    use crate::interval::Interval;
    use sct_core::op::OpCode::*;

    fn intersect(a: Interval, b: Interval) -> Option<Interval> {
        let lo = a.lo.max(b.lo);
        let hi = a.hi.min(b.hi);
        (lo <= hi).then(|| Interval::new(lo, hi))
    }

    let mut out = VarIntervals::new();
    let mut refine = |v: VarId, iv: Interval| -> bool {
        let cur = out.get(&v).copied().unwrap_or(Interval::TOP);
        match intersect(cur, iv) {
            Some(joined) => {
                out.insert(v, joined);
                true
            }
            None => false,
        }
    };

    for &c in constraints {
        let Some((op, args)) = view.as_app(c) else {
            continue;
        };
        if args.len() != 2 {
            continue;
        }
        // Normalize to (var ⋈ const).
        let (v, k, op) = match (view.as_var(args[0]), view.as_const(args[1])) {
            (Some(v), Some(k)) => (v, k, op),
            _ => match (view.as_const(args[0]), view.as_var(args[1])) {
                // Mirror: const ⋈ var  ⇒  var ⋈' const.
                (Some(k), Some(v)) => {
                    let mirrored = match op {
                        Lt => Gt,
                        Le => Ge,
                        Gt => Lt,
                        Ge => Le,
                        Eq => Eq,
                        other => {
                            let _ = other;
                            continue;
                        }
                    };
                    (v, k, mirrored)
                }
                _ => continue,
            },
        };
        let iv = match op {
            Eq => Interval::point(k),
            Lt => {
                if k == 0 {
                    return None;
                }
                Interval::new(0, k - 1)
            }
            Le => Interval::new(0, k),
            Gt => {
                if k == u64::MAX {
                    return None;
                }
                Interval::new(k + 1, u64::MAX)
            }
            Ge => Interval::new(k, u64::MAX),
            _ => continue,
        };
        if !refine(v, iv) {
            return None;
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sct_core::op::OpCode;

    fn x() -> Expr {
        Expr::var(VarId(0))
    }

    fn y() -> Expr {
        Expr::var(VarId(1))
    }

    #[test]
    fn trivial_cases() {
        let s = Solver::new();
        assert_eq!(s.check(&[]), Verdict::Sat(Model::new()));
        assert_eq!(s.check(&[Expr::constant(1)]), Verdict::Sat(Model::new()));
        assert_eq!(s.check(&[Expr::constant(0)]), Verdict::Unsat);
    }

    #[test]
    fn finds_bound_satisfying_models() {
        let s = Solver::new();
        // x < 4 (Figure 1's in-bounds path)
        let c = Expr::app(OpCode::Gt, vec![Expr::constant(4), x()]);
        match s.check(std::slice::from_ref(&c)) {
            Verdict::Sat(m) => assert!(m.get(VarId(0)) < 4),
            other => panic!("expected sat, got {other:?}"),
        }
        // ¬(4 > x), i.e. x ≥ 4 (the out-of-bounds path)
        let neg = Expr::app(OpCode::Eq, vec![c, Expr::constant(0)]);
        match s.check(&[neg]) {
            Verdict::Sat(m) => assert!(m.get(VarId(0)) >= 4),
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn refutes_contradictions() {
        let s = Solver::new();
        // x < 2 together with x > 5: the derived per-variable intervals
        // are disjoint, so this is proven Unsat.
        let a = Expr::app(OpCode::Lt, vec![x(), Expr::constant(2)]);
        let b = Expr::app(OpCode::Gt, vec![x(), Expr::constant(5)]);
        assert_eq!(s.check(&[a, b]), Verdict::Unsat);
        // Mirrored operand order is normalized: 2 > x ∧ 5 < x.
        let a = Expr::app(OpCode::Gt, vec![Expr::constant(2), x()]);
        let b = Expr::app(OpCode::Lt, vec![Expr::constant(5), x()]);
        assert_eq!(s.check(&[a, b]), Verdict::Unsat);
    }

    #[test]
    fn refutes_impossible_strict_bounds() {
        let s = Solver::new();
        // x < 0 is unsatisfiable for unsigned x.
        let c = Expr::app(OpCode::Lt, vec![x(), Expr::constant(0)]);
        assert_eq!(s.check(&[c]), Verdict::Unsat);
        // x > u64::MAX likewise.
        let c = Expr::app(OpCode::Gt, vec![x(), Expr::constant(u64::MAX)]);
        assert_eq!(s.check(&[c]), Verdict::Unsat);
    }

    #[test]
    fn refutes_reflexive_falsehood() {
        let s = Solver::new();
        let c = Expr::app(OpCode::Lt, vec![x(), x()]);
        assert_eq!(s.check(&[c]), Verdict::Unsat);
    }

    #[test]
    fn solves_equalities_on_two_vars() {
        let s = Solver::new();
        // x + 5 == y  ∧  y == 12
        let c1 = Expr::app(
            OpCode::Eq,
            vec![
                Expr::app(OpCode::Add, vec![x(), Expr::constant(5)]),
                y(),
            ],
        );
        let c2 = Expr::app(OpCode::Eq, vec![y(), Expr::constant(12)]);
        match s.check(&[c1, c2]) {
            Verdict::Sat(m) => {
                assert_eq!(m.get(VarId(0)), 7);
                assert_eq!(m.get(VarId(1)), 12);
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn concretize_prefers_a_model() {
        let s = Solver::new();
        let c = Expr::app(OpCode::Gt, vec![Expr::constant(4), x()]);
        let addr = Expr::app(OpCode::Add, vec![Expr::constant(0x40), x()]);
        let a = s.concretize(&addr, &[c]).unwrap();
        assert!((0x40..0x44).contains(&a));
    }

    #[test]
    fn concretize_of_unsat_is_none() {
        let s = Solver::new();
        assert_eq!(s.concretize(&x(), &[Expr::constant(0)]), None);
    }

    #[test]
    fn deterministic_given_seed() {
        let s1 = Solver::new();
        let s2 = Solver::new();
        let c = Expr::app(OpCode::Gt, vec![x(), Expr::constant(1000)]);
        assert_eq!(s1.check(std::slice::from_ref(&c)), s2.check(&[c]));
    }

    #[test]
    fn concurrent_checks_agree() {
        let handles: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    let s = Solver::new();
                    let _ = t;
                    (0..16u64)
                        .map(|k| {
                            let c = Expr::app(
                                OpCode::Gt,
                                vec![Expr::var(VarId(400)), Expr::constant(0x7000 + k)],
                            );
                            s.check(&[c]).is_sat()
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let results: Vec<Vec<bool>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for other in &results[1..] {
            assert_eq!(&results[0], other, "memo races must not change verdicts");
        }
    }
}
