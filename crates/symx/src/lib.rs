//! # sct-symx
//!
//! The symbolic-execution substrate for Pitchfork: bit-vector
//! expressions with eager constant folding and algebraic simplification,
//! unsigned interval analysis, a heuristic model-finding solver, and
//! symbolic machine state (labeled symbolic values, register files,
//! memories).
//!
//! The paper builds its tool on angr\'s symbolic execution (citation 30); this
//! crate is the from-scratch substitute. Like angr, it concretizes
//! memory addresses and over-approximates path feasibility (the solver
//! answers [`solver::Verdict::Unknown`] rather than missing models),
//! which is sound for violation *detection*.
//!
//! # Example
//!
//! ```
//! use sct_symx::expr::{Expr, VarPool};
//! use sct_symx::solver::{Solver, Verdict};
//! use sct_core::OpCode;
//!
//! let mut pool = VarPool::new();
//! let idx = pool.fresh("idx");
//! // The Figure 1 bounds check: 4 > idx.
//! let in_bounds = Expr::app(OpCode::Gt, vec![Expr::constant(4), Expr::var(idx)]);
//! // Is the out-of-bounds (mispredicted) path feasible? ¬(4 > idx).
//! let oob = Expr::app(OpCode::Eq, vec![in_bounds, Expr::constant(0)]);
//! let verdict = Solver::new().check(&[oob]);
//! assert!(matches!(verdict, Verdict::Sat(_)));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod expr;
pub mod interval;
pub mod simplify;
pub mod solver;
pub mod symmem;

pub use expr::{Expr, Model, VarId, VarPool};
pub use interval::{interval_of, Interval};
pub use solver::{Solver, SolverOptions, Verdict};
pub use symmem::{SymMemory, SymRegFile, SymVal};
