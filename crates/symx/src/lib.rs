//! # sct-symx
//!
//! The symbolic-execution substrate for Pitchfork, built around a
//! **hash-consed expression arena**:
//!
//! * [`ExprRef`] (alias [`Expr`]) — a `Copy` 32-bit id into a
//!   process-wide interner. Structural equality is id equality (O(1)),
//!   every distinct expression is stored once, and the simplifying
//!   constructor [`ExprRef::app`] is memoized, so re-deriving the same
//!   value along different schedules costs a hash lookup;
//! * [`simplify`](crate::simplify) — conservative algebraic rewrites
//!   applied at construction (each distinct application simplifies once
//!   per process, then lives in the cache);
//! * [`interval`](crate::interval) — unsigned interval analysis for
//!   cheap unsatisfiability proofs;
//! * [`solver`](crate::solver) — a heuristic model finder (interval
//!   refutation + candidate/model search) that answers
//!   [`Verdict::Unknown`] rather than missing models, sound for
//!   violation *detection*. Verdicts are memoized process-wide per
//!   canonical constraint set ([`solver_memo_stats`]) — the same path
//!   conditions recur constantly across schedules and programs;
//! * [`symmem`](crate::symmem) — labeled symbolic values ([`SymVal`] is
//!   two words and `Copy`), register files, and memories, all cheap to
//!   clone because contents are interned ids.
//!
//! The arena is shared by every analysis in the process — batch runs
//! over a corpus, and worker threads of one parallel exploration,
//! reuse each other's expressions; [`arena_stats`] reports the
//! sharing. Both the interner and the verdict memo are **lock-striped**
//! ([`NUM_SHARDS`] / [`MEMO_SHARDS`] shards keyed by structural hash),
//! so concurrent interning and memo probes from many threads contend
//! only within a stripe; contended acquisitions are counted
//! ([`arena_lock_waits`], [`solver_memo_lock_waits`]) so regressions
//! show up in stats, not just profiles. The arena also outlives the
//! process: [`export_all`] / [`import_arena`] flatten and re-intern it
//! with id remapping (the `sct-cache` crate persists both the arena
//! and the verdict memo to disk), and [`retire_arena`] gives
//! long-lived processes an epoch lifecycle — the whole arena is
//! dropped, and any `ExprRef` that outlives the reset is detectably
//! stale (its packed epoch tag no longer matches, so use panics
//! instead of aliasing a new node).
//!
//! The paper builds its tool on angr's symbolic
//! execution (citation 30); this crate is the from-scratch substitute.
//! Like angr, it concretizes memory addresses and over-approximates
//! path feasibility, which is sound for violation detection.
//!
//! # Example
//!
//! ```
//! use sct_symx::expr::{Expr, VarPool};
//! use sct_symx::solver::{Solver, Verdict};
//! use sct_core::OpCode;
//!
//! let mut pool = VarPool::new();
//! let idx = pool.fresh("idx");
//! // The Figure 1 bounds check: 4 > idx.
//! let in_bounds = Expr::app(OpCode::Gt, vec![Expr::constant(4), Expr::var(idx)]);
//! // Interning is structural: rebuilding yields the same id.
//! assert_eq!(
//!     in_bounds,
//!     Expr::app(OpCode::Gt, vec![Expr::constant(4), Expr::var(idx)]),
//! );
//! // Is the out-of-bounds (mispredicted) path feasible? ¬(4 > idx).
//! let oob = Expr::app(OpCode::Eq, vec![in_bounds, Expr::constant(0)]);
//! let verdict = Solver::new().check(&[oob]);
//! assert!(matches!(verdict, Verdict::Sat(_)));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod expr;
pub mod interval;
pub mod simplify;
pub mod solver;
pub mod symmem;

pub use expr::{
    arena_epoch, arena_lock_waits, arena_stats, export_all, export_arena, import_arena,
    retire_arena, ArenaExport, ArenaImportError, ArenaImportStats, ArenaStats, ExportedNode, Expr,
    ExprKind, ExprRef, Model, VarId, VarPool, NUM_SHARDS,
};
pub use interval::{interval_of, Interval};
pub use solver::{
    import_solver_memo, set_solver_memo_capacity, solver_memo_capacity, solver_memo_lock_waits,
    solver_memo_stats, MemoExport, MemoImportStats, Solver, SolverMemoStats, SolverOptions,
    Verdict, DEFAULT_MEMO_CAPACITY, MEMO_SHARDS,
};
pub use symmem::{SymMemory, SymRegFile, SymVal};
