//! # sct-symx
//!
//! The symbolic-execution substrate for Pitchfork, built around a
//! **hash-consed expression arena**:
//!
//! * [`ExprRef`] (alias [`Expr`]) — a `Copy` 32-bit id into a
//!   process-wide interner. Structural equality is id equality (O(1)),
//!   every distinct expression is stored once, and the simplifying
//!   constructor [`ExprRef::app`] is memoized, so re-deriving the same
//!   value along different schedules costs a hash lookup;
//! * [`simplify`](crate::simplify) — conservative algebraic rewrites
//!   applied at construction (each distinct application simplifies once
//!   per process, then lives in the cache);
//! * [`interval`](crate::interval) — unsigned interval analysis for
//!   cheap unsatisfiability proofs;
//! * [`solver`](crate::solver) — a heuristic model finder (interval
//!   refutation + candidate/model search) that answers
//!   [`Verdict::Unknown`] rather than missing models, sound for
//!   violation *detection*. Verdicts are memoized process-wide per
//!   canonical constraint set ([`solver_memo_stats`]) — the same path
//!   conditions recur constantly across schedules and programs;
//! * [`symmem`](crate::symmem) — labeled symbolic values ([`SymVal`] is
//!   two words and `Copy`), register files, and memories, all cheap to
//!   clone because contents are interned ids.
//!
//! The arena is shared by every analysis in the process — batch runs
//! over a corpus, and worker threads of one parallel exploration,
//! reuse each other's expressions; [`arena_stats`] reports the
//! sharing. Both the interner and the verdict memo are **lock-striped**
//! ([`NUM_SHARDS`] / [`MEMO_SHARDS`] shards keyed by structural hash),
//! so concurrent interning and memo probes from many threads contend
//! only within a stripe; contended acquisitions are counted
//! ([`arena_lock_waits`], [`solver_memo_lock_waits`]) so regressions
//! show up in stats, not just profiles. In front of the stripes each
//! thread keeps small direct-mapped **L1 caches** — interned constants
//! and applications, and memoized solver verdicts — so the dominant
//! hit path touches no shared lock at all; the caches are flushed on
//! epoch retirement, and [`thread_stats`] reports the calling thread's
//! exact hit and lock-wait counts for per-worker attribution. The arena also outlives the
//! process: [`export_all`] / [`import_arena`] flatten and re-intern it
//! with id remapping (the `sct-cache` crate persists both the arena
//! and the verdict memo to disk), and [`retire_arena`] gives
//! long-lived processes an epoch lifecycle — the whole arena is
//! dropped, and any `ExprRef` that outlives the reset is detectably
//! stale (its packed epoch tag no longer matches, so use panics
//! instead of aliasing a new node).
//!
//! The paper builds its tool on angr's symbolic
//! execution (citation 30); this crate is the from-scratch substitute.
//! Like angr, it concretizes memory addresses and over-approximates
//! path feasibility, which is sound for violation detection.
//!
//! # Example
//!
//! ```
//! use sct_symx::expr::{Expr, VarPool};
//! use sct_symx::solver::{Solver, Verdict};
//! use sct_core::OpCode;
//!
//! let mut pool = VarPool::new();
//! let idx = pool.fresh("idx");
//! // The Figure 1 bounds check: 4 > idx.
//! let in_bounds = Expr::app(OpCode::Gt, vec![Expr::constant(4), Expr::var(idx)]);
//! // Interning is structural: rebuilding yields the same id.
//! assert_eq!(
//!     in_bounds,
//!     Expr::app(OpCode::Gt, vec![Expr::constant(4), Expr::var(idx)]),
//! );
//! // Is the out-of-bounds (mispredicted) path feasible? ¬(4 > idx).
//! let oob = Expr::app(OpCode::Eq, vec![in_bounds, Expr::constant(0)]);
//! let verdict = Solver::new().check(&[oob]);
//! assert!(matches!(verdict, Verdict::Sat(_)));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod expr;
pub mod interval;
pub mod simplify;
pub mod solver;
pub mod symmem;

pub use expr::{
    arena_epoch, arena_lock_waits, arena_stats, export_all, export_all_rooted, export_arena,
    import_arena,
    retire_arena, ArenaExport, ArenaImportError, ArenaImportStats, ArenaStats, ExportedNode, Expr,
    ExprKind, ExprRef, Model, VarId, VarPool, NUM_SHARDS,
};
pub use interval::{interval_of, Interval};
pub use solver::{
    import_solver_memo, set_solver_memo_capacity, solver_memo_capacity, solver_memo_lock_waits,
    solver_memo_stats, MemoExport, MemoImportStats, Solver, SolverMemoStats, SolverOptions,
    Verdict, DEFAULT_MEMO_CAPACITY, MEMO_SHARDS,
};
pub use symmem::{SymMemory, SymRegFile, SymVal};

/// Cumulative counters private to the **calling thread**: its share of
/// the process-wide contention counters plus its thread-cache hits.
///
/// The process-wide counters ([`arena_lock_waits`],
/// [`solver_memo_lock_waits`]) can only be sampled as deltas around a
/// whole exploration, which mis-attributes contention when several
/// explorations run concurrently in one process. These counters are
/// exact per thread: a worker snapshots [`thread_stats`] before and
/// after its work and reports the difference.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ThreadStats {
    /// Contended interner-shard lock acquisitions by this thread.
    pub arena_lock_waits: u64,
    /// Contended verdict-memo lock acquisitions by this thread.
    pub memo_lock_waits: u64,
    /// Constructions answered by this thread's L1 intern caches
    /// (constants + applications) without touching a shared lock.
    pub intern_cache_hits: u64,
    /// `Solver::check` queries answered by this thread's L1 verdict
    /// cache without touching a shared lock.
    pub memo_cache_hits: u64,
}

impl ThreadStats {
    /// All thread-cache hits (intern + verdict).
    pub fn local_cache_hits(&self) -> u64 {
        self.intern_cache_hits + self.memo_cache_hits
    }

    /// Counter-wise difference `self - earlier` (saturating).
    pub fn since(&self, earlier: &ThreadStats) -> ThreadStats {
        ThreadStats {
            arena_lock_waits: self.arena_lock_waits.saturating_sub(earlier.arena_lock_waits),
            memo_lock_waits: self.memo_lock_waits.saturating_sub(earlier.memo_lock_waits),
            intern_cache_hits: self
                .intern_cache_hits
                .saturating_sub(earlier.intern_cache_hits),
            memo_cache_hits: self.memo_cache_hits.saturating_sub(earlier.memo_cache_hits),
        }
    }
}

/// Drop the calling thread's L1 caches (intern + verdict). The shared
/// arena and memo are untouched; subsequent hits simply go back through
/// the stripes. For tests that pin shared-level behavior (LRU
/// eviction, shard hit counters) and benchmarks measuring cold paths.
pub fn flush_thread_caches() {
    expr::flush_local_caches();
    solver::flush_local_memo();
    flush_thread_telemetry();
}

/// Publish the calling thread's buffered telemetry (check-latency
/// spans) to the process-wide `sct-telemetry` histograms. Buffers also
/// publish on their auto-flush threshold and when the thread exits;
/// this makes a just-finished job's spans visible to a concurrent
/// metrics scrape immediately.
pub fn flush_thread_telemetry() {
    solver::flush_check_spans();
}

/// Snapshot the calling thread's private counters (see [`ThreadStats`]).
pub fn thread_stats() -> ThreadStats {
    ThreadStats {
        arena_lock_waits: expr::tls_lock_waits(),
        memo_lock_waits: solver::tls_memo_waits(),
        intern_cache_hits: expr::tls_local_hits(),
        memo_cache_hits: solver::tls_memo_hits(),
    }
}
