//! Unsigned interval analysis over symbolic expressions.
//!
//! Used by the solver for cheap unsatisfiability proofs: if a
//! constraint's interval is exactly `[0, 0]` it cannot be satisfied. The
//! analysis is deliberately conservative — any operation that might wrap
//! returns the full range.

use crate::expr::{Expr, LocalView, VarId};
use sct_core::op::OpCode;
use std::collections::BTreeMap;

/// A closed unsigned interval `[lo, hi]`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Interval {
    /// Smallest possible value.
    pub lo: u64,
    /// Largest possible value.
    pub hi: u64,
}

impl Interval {
    /// The full 64-bit range.
    pub const TOP: Interval = Interval {
        lo: 0,
        hi: u64::MAX,
    };

    /// A singleton interval.
    pub fn point(v: u64) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// An interval from bounds.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new(lo: u64, hi: u64) -> Interval {
        assert!(lo <= hi, "malformed interval [{lo}, {hi}]");
        Interval { lo, hi }
    }

    /// `true` iff the interval is the single value `v`.
    pub fn is_point(&self, v: u64) -> bool {
        self.lo == v && self.hi == v
    }

    /// `true` iff `v` lies in the interval.
    pub fn contains(&self, v: u64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Sum, or TOP on potential wrap.
    fn add(self, other: Interval) -> Interval {
        match (self.lo.checked_add(other.lo), self.hi.checked_add(other.hi)) {
            (Some(lo), Some(hi)) => Interval { lo, hi },
            _ => Interval::TOP,
        }
    }

    /// Product, or TOP on potential wrap.
    fn mul(self, other: Interval) -> Interval {
        match (self.lo.checked_mul(other.lo), self.hi.checked_mul(other.hi)) {
            (Some(lo), Some(hi)) => Interval { lo, hi },
            _ => Interval::TOP,
        }
    }

    /// Difference, or TOP on potential wrap.
    fn sub(self, other: Interval) -> Interval {
        match (self.lo.checked_sub(other.hi), self.hi.checked_sub(other.lo)) {
            (Some(lo), Some(hi)) => Interval { lo, hi },
            _ => Interval::TOP,
        }
    }

    const BOOL: Interval = Interval { lo: 0, hi: 1 };
}

/// Per-variable interval assumptions (unlisted variables are TOP).
pub type VarIntervals = BTreeMap<VarId, Interval>;

/// Compute an interval over-approximation of `expr` under `vars`.
pub fn interval_of(expr: &Expr, vars: &VarIntervals) -> Interval {
    interval_of_in(&mut LocalView::new(), *expr, vars)
}

/// [`interval_of`] against a query-local node cache (the solver's hot
/// path, which reuses one view across a whole query).
pub(crate) fn interval_of_in(view: &mut LocalView, expr: Expr, vars: &VarIntervals) -> Interval {
    use crate::expr::ExprKind;
    match view.kind(expr) {
        ExprKind::Const(v) => Interval::point(v),
        ExprKind::Var(v) => vars.get(&v).copied().unwrap_or(Interval::TOP),
        ExprKind::App(opcode, args) => {
            let iv: Vec<Interval> = args
                .iter()
                .map(|&a| interval_of_in(view, a, vars))
                .collect();
            apply(opcode, &iv)
        }
    }
}

fn apply(opcode: OpCode, iv: &[Interval]) -> Interval {
    use OpCode::*;
    match opcode {
        Add | Addr => iv
            .iter()
            .copied()
            .fold(Interval::point(0), Interval::add),
        Mul => iv
            .iter()
            .copied()
            .fold(Interval::point(1), Interval::mul),
        Sub => iv[1..]
            .iter()
            .copied()
            .fold(iv[0], Interval::sub),
        Mov => iv[0],
        // Comparison results are 0/1; sharpen when the intervals separate.
        Eq => {
            if iv[0].hi < iv[1].lo || iv[1].hi < iv[0].lo {
                Interval::point(0)
            } else if iv[0].is_point(iv[1].lo) && iv[1].is_point(iv[0].lo) {
                Interval::point(1)
            } else {
                Interval::BOOL
            }
        }
        Ne => {
            if iv[0].hi < iv[1].lo || iv[1].hi < iv[0].lo {
                Interval::point(1)
            } else if iv[0].is_point(iv[1].lo) && iv[1].is_point(iv[0].lo) {
                Interval::point(0)
            } else {
                Interval::BOOL
            }
        }
        Lt => {
            if iv[0].hi < iv[1].lo {
                Interval::point(1)
            } else if iv[0].lo >= iv[1].hi {
                Interval::point(0)
            } else {
                Interval::BOOL
            }
        }
        Le => {
            if iv[0].hi <= iv[1].lo {
                Interval::point(1)
            } else if iv[0].lo > iv[1].hi {
                Interval::point(0)
            } else {
                Interval::BOOL
            }
        }
        Gt => {
            if iv[0].lo > iv[1].hi {
                Interval::point(1)
            } else if iv[0].hi <= iv[1].lo {
                Interval::point(0)
            } else {
                Interval::BOOL
            }
        }
        Ge => {
            if iv[0].lo >= iv[1].hi {
                Interval::point(1)
            } else if iv[0].hi < iv[1].lo {
                Interval::point(0)
            } else {
                Interval::BOOL
            }
        }
        SLt | SLe => Interval::BOOL,
        // Bitwise/shift/abstract-stack results: give up precisely but
        // cheaply. `x & y ≤ min(x, y)`, so the smallest operand `hi`
        // bounds an `and`.
        And => Interval {
            lo: 0,
            hi: iv.iter().map(|i| i.hi).min().unwrap_or(u64::MAX),
        },
        Or | Xor | Shl | Shr | Not | Succ | Pred => Interval::TOP,
        Csel => {
            let lo = iv[1].lo.min(iv[2].lo);
            let hi = iv[1].hi.max(iv[2].hi);
            Interval { lo, hi }
        }
    }
}

/// `true` when interval analysis proves the constraint can never be
/// non-zero (i.e. the constraint is unsatisfiable).
pub fn provably_false(expr: &Expr, vars: &VarIntervals) -> bool {
    interval_of(expr, vars).is_point(0)
}

/// [`provably_false`] against a query-local node cache.
pub(crate) fn provably_false_in(view: &mut LocalView, expr: Expr, vars: &VarIntervals) -> bool {
    interval_of_in(view, expr, vars).is_point(0)
}

/// `true` when interval analysis proves the constraint is always
/// non-zero under the assumptions.
pub fn provably_true(expr: &Expr, vars: &VarIntervals) -> bool {
    let iv = interval_of(expr, vars);
    iv.lo >= 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> Expr {
        Expr::var(VarId(0))
    }

    #[test]
    fn constants_are_points() {
        assert!(interval_of(&Expr::constant(7), &VarIntervals::new()).is_point(7));
    }

    #[test]
    fn bounded_variable_comparison() {
        let mut vars = VarIntervals::new();
        vars.insert(VarId(0), Interval::new(0, 3));
        // x < 4 is provably true; x > 9 provably false.
        let lt = Expr::raw_app(OpCode::Lt, vec![x(), Expr::constant(4)]);
        assert!(provably_true(&lt, &vars));
        let gt = Expr::raw_app(OpCode::Gt, vec![x(), Expr::constant(9)]);
        assert!(provably_false(&gt, &vars));
    }

    #[test]
    fn unbounded_comparison_is_bool() {
        let lt = Expr::raw_app(OpCode::Lt, vec![x(), Expr::constant(4)]);
        let iv = interval_of(&lt, &VarIntervals::new());
        assert_eq!(iv, Interval::BOOL);
        assert!(!provably_false(&lt, &VarIntervals::new()));
        assert!(!provably_true(&lt, &VarIntervals::new()));
    }

    #[test]
    fn addition_tracks_bounds_without_wrap() {
        let mut vars = VarIntervals::new();
        vars.insert(VarId(0), Interval::new(1, 2));
        let e = Expr::raw_app(OpCode::Add, vec![x(), Expr::constant(10)]);
        assert_eq!(interval_of(&e, &vars), Interval::new(11, 12));
        // Potential wrap collapses to TOP.
        let e = Expr::raw_app(OpCode::Add, vec![x(), Expr::constant(u64::MAX)]);
        assert_eq!(interval_of(&e, &vars), Interval::TOP);
    }

    #[test]
    fn eq_separated_intervals_is_false() {
        let mut vars = VarIntervals::new();
        vars.insert(VarId(0), Interval::new(0, 3));
        let eq = Expr::raw_app(OpCode::Eq, vec![x(), Expr::constant(9)]);
        assert!(provably_false(&eq, &vars));
    }

    #[test]
    fn soundness_spot_check() {
        // The interval must always contain the true value.
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        use crate::expr::Model;
        let mut rng = SmallRng::seed_from_u64(17);
        for _ in 0..500 {
            let op = OpCode::ALL[rng.gen_range(0..OpCode::ALL.len())];
            let n = op.arity().unwrap_or(2);
            let args: Vec<Expr> = (0..n)
                .map(|_| {
                    if rng.gen_bool(0.5) {
                        Expr::constant(rng.gen_range(0..100))
                    } else {
                        Expr::var(VarId(0))
                    }
                })
                .collect();
            let e = Expr::raw_app(op, args);
            let xval = rng.gen_range(0..50u64);
            let mut vars = VarIntervals::new();
            vars.insert(VarId(0), Interval::new(0, 50));
            let model: Model = [(VarId(0), xval)].into_iter().collect();
            let true_val = e.eval(&model);
            let iv = interval_of(&e, &vars);
            assert!(
                iv.contains(true_val),
                "{e}: {true_val} not in [{}, {}]",
                iv.lo,
                iv.hi
            );
        }
    }
}
