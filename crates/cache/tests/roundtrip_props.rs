//! Property tests for snapshot round-trips: capture → encode → decode →
//! retire → hydrate preserves structural interning and solver verdicts,
//! imports into non-empty arenas are pure merges, and corrupted or
//! truncated snapshots are rejected, never trusted, never a panic.
//!
//! Tests in this binary retire the process-wide arena, so they
//! serialize on a file-local lock (other test binaries are separate
//! processes).

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sct_cache::Snapshot;
use sct_core::OpCode;
use sct_symx::{
    arena_stats, retire_arena, solver_memo_stats, Expr, ExportedNode, Solver, VarId, Verdict,
};
use std::sync::Mutex;

static ARENA_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    ARENA_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// An owned expression shape that survives arena retirement.
#[derive(Clone, Debug)]
enum Tree {
    Const(u64),
    Var(u32),
    App(OpCode, Vec<Tree>),
}

fn random_tree(rng: &mut SmallRng, depth: usize) -> Tree {
    if depth == 0 || rng.gen_bool(0.3) {
        return if rng.gen_bool(0.5) {
            Tree::Var(rng.gen_range(0..3))
        } else {
            Tree::Const(rng.gen_range(0..16))
        };
    }
    let op = OpCode::ALL[rng.gen_range(0..OpCode::ALL.len())];
    let n = op.arity().unwrap_or(rng.gen_range(1..4)).max(1);
    Tree::App(op, (0..n).map(|_| random_tree(rng, depth - 1)).collect())
}

/// Build through the production constructor (simplifying, memoized).
fn build(tree: &Tree) -> Expr {
    match tree {
        Tree::Const(v) => Expr::constant(*v),
        Tree::Var(v) => Expr::var(VarId(*v)),
        Tree::App(op, args) => Expr::app(*op, args.iter().map(build).collect()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The full warm-start story on synthetic constraints: everything
    /// the cold run interned and solved is served by the snapshot after
    /// an epoch reset — zero fresh nodes, memo hits, identical verdicts.
    #[test]
    fn snapshot_roundtrip_preserves_interning_and_verdicts(seed in any::<u64>()) {
        let _guard = lock();
        let mut rng = SmallRng::seed_from_u64(seed);
        let sets: Vec<Vec<Tree>> = (0..3)
            .map(|_| (0..rng.gen_range(1..4)).map(|_| random_tree(&mut rng, 3)).collect())
            .collect();
        let solver = Solver::new();
        let cold_verdicts: Vec<Verdict> = sets
            .iter()
            .map(|set| solver.check(&set.iter().map(build).collect::<Vec<_>>()))
            .collect();

        let bytes = Snapshot::capture().encode();
        let decoded = Snapshot::decode(&bytes).expect("own snapshot decodes");

        retire_arena();
        let stats = decoded.hydrate().expect("own snapshot hydrates");
        prop_assert_eq!(
            stats.arena.added, stats.arena.snapshot_nodes,
            "into an empty epoch, every snapshot node is new"
        );
        let nodes_after_hydrate = arena_stats().nodes;

        // Rebuilding the same structures interns nothing new: the
        // snapshot covered the whole cold arena.
        let rebuilt: Vec<Vec<Expr>> = sets
            .iter()
            .map(|set| set.iter().map(build).collect())
            .collect();
        prop_assert_eq!(
            arena_stats().nodes, nodes_after_hydrate,
            "warm rebuild must be fully served by hydrated nodes"
        );

        // Re-solving is served by the imported memo, verbatim.
        let hits_before = solver_memo_stats().hits;
        for (set, cold) in rebuilt.iter().zip(&cold_verdicts) {
            let warm = solver.check(set);
            prop_assert_eq!(&warm, cold, "verdict changed across snapshot round-trip");
        }
        prop_assert!(
            solver_memo_stats().hits >= hits_before + cold_verdicts.len() as u64,
            "warm re-solves must hit the imported memo"
        );

        // A second hydrate into the now-warm arena is a pure merge.
        let again = decoded.hydrate().expect("re-hydrate");
        prop_assert_eq!(again.arena.added, 0);
        prop_assert_eq!(again.arena.preexisting, again.arena.snapshot_nodes);
    }

    /// Truncating a valid snapshot anywhere is rejected cleanly.
    #[test]
    fn truncated_snapshots_are_rejected(seed in any::<u64>()) {
        let _guard = lock();
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..4 {
            build(&random_tree(&mut rng, 3));
        }
        let bytes = Snapshot::capture().encode();
        let len = rng.gen_range(0..bytes.len());
        prop_assert!(Snapshot::decode(&bytes[..len]).is_err());
    }

    /// Randomly corrupted bytes are rejected cleanly (checksum or
    /// structural validation), never a panic, never a silent accept.
    #[test]
    fn corrupted_snapshots_are_rejected(seed in any::<u64>()) {
        let _guard = lock();
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..4 {
            build(&random_tree(&mut rng, 3));
        }
        let mut bytes = Snapshot::capture().encode();
        let at = rng.gen_range(0..bytes.len());
        let xor = rng.gen_range(1..=255u8);
        bytes[at] ^= xor;
        prop_assert!(Snapshot::decode(&bytes).is_err(), "flip at {} undetected", at);
    }

    /// Hand-crafted snapshots with dangling indices are caught by
    /// structural validation even under a valid checksum.
    #[test]
    fn forward_references_never_hydrate(seed in any::<u64>()) {
        let extra = (seed % 8) as u32;
        let snap = Snapshot {
            arena: sct_symx::ArenaExport {
                nodes: vec![
                    ExportedNode::Const(1),
                    // Self- or forward-reference, offset by `extra`.
                    ExportedNode::App(OpCode::Not, vec![1 + extra]),
                ],
                app_cache: vec![],
            },
            memo: sct_symx::MemoExport::default(),
        };
        // Either the codec rejects it at decode, or (constructed in
        // memory) the importer rejects it at hydrate; both before any
        // arena mutation.
        prop_assert!(Snapshot::decode(&snap.encode()).is_err());
        prop_assert!(snap.hydrate().is_err());
    }
}
