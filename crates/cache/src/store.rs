//! High-level cache files: capture/save and load/hydrate the
//! process-wide symbolic state with one call each, reporting what was
//! transferred.

use crate::snapshot::{Snapshot, SnapshotError};
use sct_symx::ArenaImportError;
use std::fmt;
use std::path::Path;
use std::time::{Duration, Instant};

/// Why a cache file could not be saved or loaded.
#[derive(Debug)]
pub enum CacheError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The file decoded to garbage (corruption, truncation, version
    /// skew).
    Format(SnapshotError),
    /// The file decoded but violated a structural invariant during
    /// import.
    Import(ArenaImportError),
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheError::Io(e) => write!(f, "cache io error: {e}"),
            CacheError::Format(e) => write!(f, "cache format error: {e}"),
            CacheError::Import(e) => write!(f, "cache import error: {e}"),
        }
    }
}

impl std::error::Error for CacheError {}

impl From<std::io::Error> for CacheError {
    fn from(e: std::io::Error) -> Self {
        CacheError::Io(e)
    }
}

impl From<SnapshotError> for CacheError {
    fn from(e: SnapshotError) -> Self {
        CacheError::Format(e)
    }
}

impl From<ArenaImportError> for CacheError {
    fn from(e: ArenaImportError) -> Self {
        CacheError::Import(e)
    }
}

/// What a [`load`] transferred into the process.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct LoadStats {
    /// Nodes in the snapshot file.
    pub snapshot_nodes: usize,
    /// Snapshot nodes the live arena already had.
    pub preexisting: usize,
    /// Snapshot nodes newly interned.
    pub added: usize,
    /// Application-cache pairs merged.
    pub app_cache_merged: usize,
    /// Solver verdicts merged into the memo.
    pub verdicts_imported: usize,
    /// Solver verdicts dropped (unmappable or already memoized).
    pub verdicts_dropped: usize,
    /// Size of the snapshot file in bytes.
    pub bytes: usize,
    /// Wall-clock time for read + decode + hydrate.
    pub load_time: Duration,
}

impl fmt::Display for LoadStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} nodes ({} new, {} shared), {} verdicts, {} bytes in {:.1?}",
            self.snapshot_nodes,
            self.added,
            self.preexisting,
            self.verdicts_imported,
            self.bytes,
            self.load_time,
        )
    }
}

/// What a [`save`] or [`save_rooted`] wrote.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SaveStats {
    /// Nodes written.
    pub nodes: usize,
    /// Solver verdicts written.
    pub verdicts: usize,
    /// Verdicts the capacity guard evicted from the live memo before
    /// this save (cumulative for the process; see
    /// [`sct_symx::set_solver_memo_capacity`]) — what the snapshot does
    /// *not* carry because the LRU cap dropped it first.
    pub verdicts_evicted: u64,
    /// File size in bytes as written (post-pruning for
    /// [`save_rooted`]).
    pub bytes: usize,
    /// Unreachable nodes dropped by reachability pruning (0 for the
    /// unpruned [`save`]).
    pub pruned_nodes: usize,
    /// Encoded size the snapshot would have had without pruning: the
    /// on-disk win is `unpruned_bytes - bytes`. Equal to `bytes` for
    /// the unpruned [`save`].
    pub unpruned_bytes: usize,
}

impl fmt::Display for SaveStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} nodes, {} verdicts ({} evicted), {} bytes",
            self.nodes, self.verdicts, self.verdicts_evicted, self.bytes
        )?;
        if self.pruned_nodes > 0 {
            write!(
                f,
                " [pruned {} unreachable nodes, {} bytes unpruned]",
                self.pruned_nodes, self.unpruned_bytes
            )?;
        }
        Ok(())
    }
}

/// Load a snapshot file and hydrate the process-wide arena and verdict
/// memo (id-remapped; the arena need not be empty).
///
/// On any error the process state is untouched; treating the error as
/// "cold start" is always sound.
pub fn load(path: &Path) -> Result<LoadStats, CacheError> {
    let start = Instant::now();
    let mut bytes = std::fs::read(path)?;
    if sct_faults::enabled() && sct_faults::should_fire(sct_faults::FaultPoint::SnapshotBitFlip) {
        sct_faults::flip_bit(&mut bytes);
    }
    let snapshot = Snapshot::decode(&bytes)?;
    let stats = snapshot.hydrate()?;
    Ok(LoadStats {
        snapshot_nodes: stats.arena.snapshot_nodes,
        preexisting: stats.arena.preexisting,
        added: stats.arena.added,
        app_cache_merged: stats.arena.app_cache_merged,
        verdicts_imported: stats.memo.imported,
        verdicts_dropped: stats.memo.dropped,
        bytes: bytes.len(),
        load_time: start.elapsed(),
    })
}

/// [`load`], but a missing file is `Ok(None)` (the cold-start case)
/// rather than an error.
pub fn load_if_exists(path: &Path) -> Result<Option<LoadStats>, CacheError> {
    match load(path) {
        Ok(stats) => Ok(Some(stats)),
        Err(CacheError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e),
    }
}

/// How [`load_or_quarantine`] resolved a cache path.
#[derive(Debug)]
pub enum DegradedLoad {
    /// The snapshot loaded and hydrated cleanly.
    Loaded(LoadStats),
    /// No file at the path: an ordinary cold start.
    Missing,
    /// The file existed but was corrupt (or unreadable). A corrupt
    /// file has been renamed aside to `moved_to` so the next run does
    /// not trip on it again; `None` means the rename itself failed and
    /// the bad file is still in place.
    Quarantined {
        /// Where the bad bytes were moved (`PATH.bad`), if the rename
        /// succeeded.
        moved_to: Option<std::path::PathBuf>,
        /// Why the load failed.
        error: CacheError,
    },
}

/// [`load`], but corruption degrades instead of erroring: a snapshot
/// that fails to decode or hydrate is renamed aside to `PATH.bad`
/// (quarantined) and reported as [`DegradedLoad::Quarantined`] so the
/// caller can warn and proceed with a cold analysis. The process state
/// is untouched on any failure, so continuing is always sound — a
/// corrupt cache can cost time, never a verdict.
///
/// Bumps the `cache_quarantined_total` telemetry counter on
/// quarantine (when telemetry is enabled).
pub fn load_or_quarantine(path: &Path) -> DegradedLoad {
    match load(path) {
        Ok(stats) => DegradedLoad::Loaded(stats),
        Err(CacheError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => DegradedLoad::Missing,
        Err(error) => {
            let moved_to = quarantine(path);
            DegradedLoad::Quarantined { moved_to, error }
        }
    }
}

/// Move a bad cache file aside to `PATH.bad` (overwriting any previous
/// quarantine of the same path). Returns the destination on success;
/// `None` if the rename failed (e.g. a read-only directory), in which
/// case the file is left in place. Bumps the `cache_quarantined_total`
/// telemetry counter either way — the corruption happened even if the
/// evidence could not be preserved.
pub fn quarantine(path: &Path) -> Option<std::path::PathBuf> {
    if sct_telemetry::enabled() {
        sct_telemetry::counter(sct_telemetry::names::CACHE_QUARANTINED).inc();
    }
    let mut bad = path.as_os_str().to_owned();
    bad.push(".bad");
    let bad = std::path::PathBuf::from(bad);
    match std::fs::rename(path, &bad) {
        Ok(()) => Some(bad),
        Err(_) => None,
    }
}

/// Capture the process-wide arena and verdict memo and write them to
/// `path`, atomically: the bytes land in a uniquely named temporary
/// sibling first (per-process, so concurrent savers to the same path
/// do not clobber each other's half-written bytes) and are renamed
/// over the target, so a crashed writer never leaves a torn cache for
/// the next run to trip on.
pub fn save(path: &Path) -> Result<SaveStats, CacheError> {
    let snapshot = Snapshot::capture();
    let bytes = snapshot.encode();
    write_atomic(path, &bytes)?;
    Ok(SaveStats {
        nodes: snapshot.arena.nodes.len(),
        verdicts: snapshot.memo.entries.len(),
        verdicts_evicted: sct_symx::solver_memo_stats().evicted,
        bytes: bytes.len(),
        pruned_nodes: 0,
        unpruned_bytes: bytes.len(),
    })
}

/// [`save`], but through [`Snapshot::capture_rooted`]: only nodes
/// reachable from the memoized verdicts' keys and the caller's live
/// `roots` are written. The returned [`SaveStats`] reports both the
/// pruned size actually on disk and the size the unpruned snapshot
/// would have encoded to, so the win is visible in stats output and
/// bench artifacts.
pub fn save_rooted(path: &Path, roots: &[sct_symx::ExprRef]) -> Result<SaveStats, CacheError> {
    let (snapshot, prune) = Snapshot::capture_rooted(roots);
    let bytes = snapshot.encode();
    // Pricing the win needs the unpruned encoding too; encoding is
    // linear and saves are rare (retirement / shutdown), so just
    // capture and encode the full snapshot when anything was pruned.
    let unpruned_bytes = if prune.pruned_nodes == 0 {
        bytes.len()
    } else {
        Snapshot::capture().encode().len()
    };
    write_atomic(path, &bytes)?;
    Ok(SaveStats {
        nodes: snapshot.arena.nodes.len(),
        verdicts: snapshot.memo.entries.len(),
        verdicts_evicted: sct_symx::solver_memo_stats().evicted,
        bytes: bytes.len(),
        pruned_nodes: prune.pruned_nodes,
        unpruned_bytes,
    })
}

/// Write `bytes` to `path` atomically: a uniquely named temporary
/// sibling first (per-process, so concurrent savers to the same path
/// do not clobber each other's half-written bytes), renamed over the
/// target, so a crashed writer never leaves a torn cache behind.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), CacheError> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SAVE_SEQ: AtomicU64 = AtomicU64::new(0);
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(
        ".{}.{}.tmp",
        std::process::id(),
        SAVE_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let tmp = std::path::PathBuf::from(tmp);
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(&tmp, bytes)?;
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e.into());
    }
    Ok(())
}
