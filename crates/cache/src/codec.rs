//! The hand-rolled binary codec: little-endian integer primitives over
//! a growable byte buffer, a bounds-checked reader, and the FNV-1a 64
//! checksum guarding snapshot files. No dependencies, no unsafe — the
//! reader treats its input as untrusted and fails with
//! [`crate::SnapshotError::Truncated`] instead of panicking.

use crate::snapshot::SnapshotError;

/// FNV-1a 64 over `bytes` (the snapshot trailer checksum).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Append-only little-endian writer.
#[derive(Default, Debug)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// The bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far (borrowing).
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Append raw bytes.
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u16`, little-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
}

/// Bounds-checked little-endian reader over untrusted bytes.
#[derive(Clone, Copy, Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Read `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated { at: self.pos });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.bytes(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(self.bytes(2)?.try_into().expect("len 2")))
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().expect("len 4")))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().expect("len 8")))
    }

    /// Read a `u32` element count whose elements occupy at least
    /// `min_elem_bytes` each, rejecting counts the remaining input
    /// cannot possibly hold — the guard that keeps a corrupted count
    /// from driving a pathological allocation.
    pub fn count(&mut self, min_elem_bytes: usize) -> Result<usize, SnapshotError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(SnapshotError::BadCount {
                at: self.pos,
                count: n,
            });
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_primitives() {
        let mut w = Writer::new();
        w.u8(7);
        w.u16(0x1234);
        w.u32(0xdead_beef);
        w.u64(u64::MAX - 5);
        w.bytes(b"sct");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 0x1234);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX - 5);
        assert_eq!(r.bytes(3).unwrap(), b"sct");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut r = Reader::new(&[1, 2]);
        assert!(matches!(r.u32(), Err(SnapshotError::Truncated { .. })));
    }

    #[test]
    fn absurd_counts_are_rejected() {
        let mut w = Writer::new();
        w.u32(u32::MAX);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.count(4), Err(SnapshotError::BadCount { .. })));
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }
}
