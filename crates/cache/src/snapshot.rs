//! The versioned snapshot format: capture the process-wide arena and
//! verdict memo, encode to bytes, decode with full validation, and
//! hydrate a (possibly non-empty) process arena with id remapping.
//!
//! Field layout of format version 1 (all integers little-endian):
//!
//! ```text
//! magic        8 × u8   "SCTCACHE"
//! version      u32      = 1
//! node_count   u32
//! node*        tag u8:  0 ⇒ const u64
//!                       1 ⇒ var   u32
//!                       2 ⇒ app   opcode u8, argc u16, argc × u32
//! app_count    u32
//! app_pair*    raw u32, simplified u32
//! memo_count   u32
//! memo_entry*  options_tag u64, key_len u32, key_len × u32,
//!              verdict u8: 0 ⇒ unsat
//!                          1 ⇒ unknown
//!                          2 ⇒ sat, model_len u32, model_len × (u32, u64)
//! checksum     u64      FNV-1a 64 over every preceding byte
//! ```
//!
//! Node children and app-cache indices refer to positions in the node
//! table, memo key ids likewise; all are re-validated against the table
//! bounds (and, at hydrate time, the topological-order and arity
//! invariants) before anything touches the live arena.

use crate::codec::{fnv1a, Reader, Writer};
use sct_core::OpCode;
use sct_symx::{
    export_all, export_all_rooted, import_arena, import_solver_memo, ArenaExport, ArenaImportError,
    ArenaImportStats, ExportedNode, ExprRef, MemoExport, MemoImportStats, Model, VarId, Verdict,
};
use std::fmt;

/// The 8-byte file magic.
pub const MAGIC: &[u8; 8] = b"SCTCACHE";

/// The current snapshot format version. Bump on any layout change; old
/// versions are rejected (a stale cache is rebuilt, never migrated).
pub const FORMAT_VERSION: u32 = 1;

/// Why a snapshot failed to decode. Every variant is a rejection of
/// untrusted input — decoding never panics and never partially applies.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SnapshotError {
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The format version is not [`FORMAT_VERSION`].
    BadVersion {
        /// The version found in the header.
        found: u32,
    },
    /// The input ended mid-field.
    Truncated {
        /// Byte offset at which more input was needed.
        at: usize,
    },
    /// An element count larger than the remaining input could hold.
    BadCount {
        /// Byte offset of the count.
        at: usize,
        /// The count read.
        count: usize,
    },
    /// The trailing checksum did not match the content.
    BadChecksum {
        /// Checksum recomputed from the content.
        expected: u64,
        /// Checksum stored in the trailer.
        found: u64,
    },
    /// An opcode byte outside the opcode table.
    BadOpcode {
        /// Byte offset of the opcode.
        at: usize,
        /// The byte found.
        byte: u8,
    },
    /// A node tag byte outside `{0, 1, 2}`.
    BadNodeTag {
        /// Byte offset of the tag.
        at: usize,
        /// The byte found.
        byte: u8,
    },
    /// A verdict tag byte outside `{0, 1, 2}`.
    BadVerdictTag {
        /// Byte offset of the tag.
        at: usize,
        /// The byte found.
        byte: u8,
    },
    /// An index (node child, app-cache pair, or memo key id) outside
    /// the node table.
    IndexOutOfRange {
        /// Byte offset of the index.
        at: usize,
        /// The index found.
        index: u32,
    },
    /// Well-formed content followed by unexpected extra bytes.
    TrailingBytes {
        /// Offset where the trailing bytes begin.
        at: usize,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::BadVersion { found } => {
                write!(f, "unsupported snapshot version {found} (expected {FORMAT_VERSION})")
            }
            SnapshotError::Truncated { at } => write!(f, "snapshot truncated at byte {at}"),
            SnapshotError::BadCount { at, count } => {
                write!(f, "implausible element count {count} at byte {at}")
            }
            SnapshotError::BadChecksum { expected, found } => {
                write!(f, "checksum mismatch: content hashes to {expected:#x}, trailer says {found:#x}")
            }
            SnapshotError::BadOpcode { at, byte } => {
                write!(f, "invalid opcode byte {byte:#x} at byte {at}")
            }
            SnapshotError::BadNodeTag { at, byte } => {
                write!(f, "invalid node tag {byte:#x} at byte {at}")
            }
            SnapshotError::BadVerdictTag { at, byte } => {
                write!(f, "invalid verdict tag {byte:#x} at byte {at}")
            }
            SnapshotError::IndexOutOfRange { at, index } => {
                write!(f, "index {index} out of range at byte {at}")
            }
            SnapshotError::TrailingBytes { at } => {
                write!(f, "trailing bytes after snapshot content at byte {at}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// A decoded (or captured) snapshot: the flattened arena plus the
/// verdict memo, ready to encode or hydrate.
#[derive(Clone, Default, Debug)]
pub struct Snapshot {
    /// The flattened expression arena.
    pub arena: ArenaExport,
    /// The flattened solver-verdict memo.
    pub memo: MemoExport,
}

/// What [`Snapshot::hydrate`] did: arena import statistics plus memo
/// merge statistics.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct HydrateStats {
    /// Arena-side statistics (nodes preexisting/added, cache merged).
    pub arena: ArenaImportStats,
    /// Memo-side statistics (verdicts imported/dropped).
    pub memo: MemoImportStats,
}

/// What reachability pruning dropped and kept (see
/// [`Snapshot::capture_rooted`] / [`Snapshot::prune_unreachable`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PruneStats {
    /// Nodes reachable from the root set, kept in the pruned snapshot.
    pub kept_nodes: usize,
    /// Unreachable nodes dropped by the prune.
    pub pruned_nodes: usize,
}

impl Snapshot {
    /// Capture the current process-wide arena and verdict memo. The
    /// two are exported under one set of interner read guards
    /// ([`sct_symx::export_all`]), so memo key ids always resolve
    /// inside the captured node table even while other threads intern.
    pub fn capture() -> Snapshot {
        let (arena, memo) = export_all();
        Snapshot { arena, memo }
    }

    /// Capture a **reachability-pruned** snapshot: export the arena and
    /// memo consistently (as [`Snapshot::capture`] does), then keep only
    /// nodes reachable from the root set — every memoized verdict's key
    /// expressions plus the caller's live `roots` — remapping ids and
    /// dropping everything else. A months-old cache accumulates every
    /// dead expression ever interned; the pruned snapshot carries only
    /// what a warm start can actually use, and hydrates to the same
    /// verdict memo (the pruned-vs-unpruned equivalence test pins this).
    ///
    /// Stale-epoch roots are skipped, not errors.
    pub fn capture_rooted(roots: &[ExprRef]) -> (Snapshot, PruneStats) {
        let (arena, memo, positions) = export_all_rooted(roots);
        Snapshot { arena, memo }.prune_unreachable(&positions)
    }

    /// The pure pruning pass behind [`Snapshot::capture_rooted`]: keep
    /// the transitive children of the memo keys and of `extra_roots`
    /// (positions into this snapshot's node table; out-of-range entries
    /// are ignored), remap indices, and drop app-cache pairs whose
    /// endpoints did not both survive. Node order — and with it the
    /// children-precede-parents invariant — is preserved.
    pub fn prune_unreachable(&self, extra_roots: &[u32]) -> (Snapshot, PruneStats) {
        let n = self.arena.nodes.len();
        let mut keep = vec![false; n];
        for (_, key, _) in &self.memo.entries {
            for &id in key {
                if (id as usize) < n {
                    keep[id as usize] = true;
                }
            }
        }
        for &root in extra_roots {
            if (root as usize) < n {
                keep[root as usize] = true;
            }
        }
        // Children precede parents, so one descending pass reaches the
        // whole closure: by the time a position is visited, every
        // parent that could mark it already has.
        for pos in (0..n).rev() {
            if keep[pos] {
                if let ExportedNode::App(_, args) = &self.arena.nodes[pos] {
                    for &c in args {
                        keep[c as usize] = true;
                    }
                }
            }
        }
        let mut remap = vec![u32::MAX; n];
        let mut nodes = Vec::new();
        for (pos, node) in self.arena.nodes.iter().enumerate() {
            if !keep[pos] {
                continue;
            }
            remap[pos] = nodes.len() as u32;
            nodes.push(match node {
                ExportedNode::App(op, args) => ExportedNode::App(
                    *op,
                    args.iter().map(|&c| remap[c as usize]).collect(),
                ),
                other => other.clone(),
            });
        }
        let app_cache = self
            .arena
            .app_cache
            .iter()
            .filter(|&&(raw, simplified)| keep[raw as usize] && keep[simplified as usize])
            .map(|&(raw, simplified)| (remap[raw as usize], remap[simplified as usize]))
            .collect();
        let entries = self
            .memo
            .entries
            .iter()
            .map(|(tag, key, verdict)| {
                // Remapping is monotonic, so canonical (sorted) keys
                // stay sorted.
                let key = key.iter().map(|&id| remap[id as usize]).collect();
                (*tag, key, verdict.clone())
            })
            .collect();
        let stats = PruneStats {
            kept_nodes: nodes.len(),
            pruned_nodes: n - nodes.len(),
        };
        (
            Snapshot {
                arena: ArenaExport { nodes, app_cache },
                memo: MemoExport { entries },
            },
            stats,
        )
    }

    /// `true` when the snapshot holds no nodes and no verdicts.
    pub fn is_empty(&self) -> bool {
        self.arena.nodes.is_empty() && self.memo.entries.is_empty()
    }

    /// Encode to the versioned, checksummed byte format.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.bytes(MAGIC);
        w.u32(FORMAT_VERSION);
        w.u32(self.arena.nodes.len() as u32);
        for node in &self.arena.nodes {
            match node {
                ExportedNode::Const(v) => {
                    w.u8(0);
                    w.u64(*v);
                }
                ExportedNode::Var(v) => {
                    w.u8(1);
                    w.u32(*v);
                }
                ExportedNode::App(op, args) => {
                    w.u8(2);
                    w.u8(opcode_to_byte(*op));
                    assert!(
                        args.len() <= usize::from(u16::MAX),
                        "application arity {} exceeds the snapshot format's u16 field",
                        args.len()
                    );
                    w.u16(args.len() as u16);
                    for &c in args {
                        w.u32(c);
                    }
                }
            }
        }
        w.u32(self.arena.app_cache.len() as u32);
        for &(raw, simplified) in &self.arena.app_cache {
            w.u32(raw);
            w.u32(simplified);
        }
        w.u32(self.memo.entries.len() as u32);
        for (tag, key, verdict) in &self.memo.entries {
            w.u64(*tag);
            w.u32(key.len() as u32);
            for &id in key {
                w.u32(id);
            }
            match verdict {
                Verdict::Unsat => w.u8(0),
                Verdict::Unknown => w.u8(1),
                Verdict::Sat(model) => {
                    w.u8(2);
                    let entries: Vec<(VarId, u64)> = model.iter().collect();
                    w.u32(entries.len() as u32);
                    for (var, val) in entries {
                        w.u32(var.0);
                        w.u64(val);
                    }
                }
            }
        }
        let checksum = fnv1a(w.as_bytes());
        w.u64(checksum);
        w.into_bytes()
    }

    /// Decode and validate a snapshot. Rejects bad magic/version,
    /// truncation, checksum mismatches, out-of-range opcodes, verdict
    /// tags, and indices — see [`SnapshotError`].
    pub fn decode(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
        if bytes.len() < MAGIC.len() + 4 + 8 {
            return Err(SnapshotError::Truncated { at: bytes.len() });
        }
        let (content, trailer) = bytes.split_at(bytes.len() - 8);
        let found = u64::from_le_bytes(trailer.try_into().expect("len 8"));
        let expected = fnv1a(content);
        if expected != found {
            return Err(SnapshotError::BadChecksum { expected, found });
        }
        let mut r = Reader::new(content);
        if r.bytes(MAGIC.len())? != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = r.u32()?;
        if version != FORMAT_VERSION {
            return Err(SnapshotError::BadVersion { found: version });
        }
        let node_count = r.count(2)?;
        let mut nodes = Vec::with_capacity(node_count);
        for _ in 0..node_count {
            let at = r.position();
            let node = match r.u8()? {
                0 => ExportedNode::Const(r.u64()?),
                1 => ExportedNode::Var(r.u32()?),
                2 => {
                    let op_at = r.position();
                    let op_byte = r.u8()?;
                    let op = opcode_from_byte(op_byte)
                        .ok_or(SnapshotError::BadOpcode { at: op_at, byte: op_byte })?;
                    let argc = r.u16()? as usize;
                    let mut args = Vec::with_capacity(argc);
                    for _ in 0..argc {
                        let id_at = r.position();
                        let c = r.u32()?;
                        if c as usize >= nodes.len() {
                            return Err(SnapshotError::IndexOutOfRange { at: id_at, index: c });
                        }
                        args.push(c);
                    }
                    ExportedNode::App(op, args)
                }
                byte => return Err(SnapshotError::BadNodeTag { at, byte }),
            };
            nodes.push(node);
        }
        let n = nodes.len() as u32;
        let read_index = |r: &mut Reader<'_>| -> Result<u32, SnapshotError> {
            let at = r.position();
            let index = r.u32()?;
            if index >= n {
                return Err(SnapshotError::IndexOutOfRange { at, index });
            }
            Ok(index)
        };
        let app_count = r.count(8)?;
        let mut app_cache = Vec::with_capacity(app_count);
        for _ in 0..app_count {
            let raw = read_index(&mut r)?;
            let simplified = read_index(&mut r)?;
            app_cache.push((raw, simplified));
        }
        let memo_count = r.count(13)?;
        let mut entries = Vec::with_capacity(memo_count);
        for _ in 0..memo_count {
            let tag = r.u64()?;
            let key_len = r.count(4)?;
            let mut key = Vec::with_capacity(key_len);
            for _ in 0..key_len {
                key.push(read_index(&mut r)?);
            }
            let tag_at = r.position();
            let verdict = match r.u8()? {
                0 => Verdict::Unsat,
                1 => Verdict::Unknown,
                2 => {
                    let model_len = r.count(12)?;
                    let mut model = Model::new();
                    for _ in 0..model_len {
                        let var = r.u32()?;
                        let val = r.u64()?;
                        model.set(VarId(var), val);
                    }
                    Verdict::Sat(model)
                }
                byte => return Err(SnapshotError::BadVerdictTag { at: tag_at, byte }),
            };
            entries.push((tag, key, verdict));
        }
        if r.remaining() != 0 {
            return Err(SnapshotError::TrailingBytes { at: r.position() });
        }
        Ok(Snapshot {
            arena: ArenaExport { nodes, app_cache },
            memo: MemoExport { entries },
        })
    }

    /// Hydrate the process-wide arena and verdict memo from this
    /// snapshot, remapping every id. The arena need not be empty.
    pub fn hydrate(&self) -> Result<HydrateStats, ArenaImportError> {
        let (remap, arena) = import_arena(&self.arena)?;
        let memo = import_solver_memo(&self.memo, &remap);
        Ok(HydrateStats { arena, memo })
    }
}

/// Stable `OpCode` → byte mapping: the opcode's position in
/// [`OpCode::ALL`]. Part of format version 1; reordering `ALL` without
/// bumping [`FORMAT_VERSION`] would silently corrupt caches, which is
/// why `decode ∘ encode` round-trip tests pin this down.
fn opcode_to_byte(op: OpCode) -> u8 {
    OpCode::ALL
        .iter()
        .position(|&o| o == op)
        .expect("every opcode is in OpCode::ALL") as u8
}

/// Byte → `OpCode`, rejecting out-of-table bytes.
fn opcode_from_byte(byte: u8) -> Option<OpCode> {
    OpCode::ALL.get(byte as usize).copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> Snapshot {
        Snapshot {
            arena: ArenaExport {
                nodes: vec![
                    ExportedNode::Const(4),
                    ExportedNode::Var(0),
                    ExportedNode::App(OpCode::Gt, vec![0, 1]),
                    ExportedNode::App(OpCode::Add, vec![0, 0, 1]),
                ],
                app_cache: vec![(2, 2), (3, 3)],
            },
            memo: MemoExport {
                entries: vec![
                    (7, vec![2], Verdict::Sat(Model::from_iter([(VarId(0), 3)]))),
                    (7, vec![2, 3], Verdict::Unknown),
                    (9, vec![3], Verdict::Unsat),
                ],
            },
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let snap = sample_snapshot();
        let bytes = snap.encode();
        let back = Snapshot::decode(&bytes).expect("decodes");
        assert_eq!(back.arena.nodes, snap.arena.nodes);
        assert_eq!(back.arena.app_cache, snap.arena.app_cache);
        assert_eq!(back.memo.entries.len(), snap.memo.entries.len());
        for ((t1, k1, v1), (t2, k2, v2)) in back.memo.entries.iter().zip(&snap.memo.entries) {
            assert_eq!((t1, k1), (t2, k2));
            assert_eq!(v1, v2);
        }
    }

    #[test]
    fn prune_drops_unreachable_nodes_and_remaps() {
        // Table: 0=Const(4), 1=Var(0), 2=Gt(0,1) [memo key],
        // 3=Add(0,0,1) [unreachable from the memo].
        let snap = sample_snapshot();
        let only_first_memo = Snapshot {
            arena: snap.arena.clone(),
            memo: MemoExport {
                entries: vec![snap.memo.entries[0].clone()],
            },
        };
        let (pruned, stats) = only_first_memo.prune_unreachable(&[]);
        assert_eq!(stats.kept_nodes, 3);
        assert_eq!(stats.pruned_nodes, 1);
        assert_eq!(
            pruned.arena.nodes,
            vec![
                ExportedNode::Const(4),
                ExportedNode::Var(0),
                ExportedNode::App(OpCode::Gt, vec![0, 1]),
            ]
        );
        // The (3, 3) app-cache pair died with node 3; (2, 2) survives.
        assert_eq!(pruned.arena.app_cache, vec![(2, 2)]);
        assert_eq!(pruned.memo.entries.len(), 1);
        assert_eq!(pruned.memo.entries[0].1, vec![2]);
        // A pruned snapshot is still a valid snapshot.
        let bytes = pruned.encode();
        assert!(Snapshot::decode(&bytes).is_ok());
    }

    #[test]
    fn prune_keeps_extra_roots_alive() {
        let snap = Snapshot {
            arena: sample_snapshot().arena,
            memo: MemoExport::default(),
        };
        let (pruned, stats) = snap.prune_unreachable(&[3]);
        // Node 3 = Add(0, 0, 1) keeps its children 0 and 1; node 2 dies.
        assert_eq!(stats.kept_nodes, 3);
        assert_eq!(stats.pruned_nodes, 1);
        assert_eq!(
            pruned.arena.nodes,
            vec![
                ExportedNode::Const(4),
                ExportedNode::Var(0),
                ExportedNode::App(OpCode::Add, vec![0, 0, 1]),
            ]
        );
        assert_eq!(pruned.arena.app_cache, vec![(2, 2)]);
    }

    #[test]
    fn prune_with_all_memo_keys_is_lossless_for_the_memo() {
        let snap = sample_snapshot();
        let (pruned, stats) = snap.prune_unreachable(&[]);
        // Both memo keys (nodes 2 and 3) root the whole table here.
        assert_eq!(stats.pruned_nodes, 0);
        assert_eq!(pruned.arena.nodes, snap.arena.nodes);
        assert_eq!(pruned.memo.entries.len(), snap.memo.entries.len());
    }

    #[test]
    fn every_opcode_survives_the_byte_mapping() {
        for op in OpCode::ALL {
            assert_eq!(opcode_from_byte(opcode_to_byte(op)), Some(op));
        }
        assert_eq!(opcode_from_byte(OpCode::ALL.len() as u8), None);
    }

    #[test]
    fn truncation_anywhere_is_rejected() {
        let bytes = sample_snapshot().encode();
        for len in 0..bytes.len() {
            let err = Snapshot::decode(&bytes[..len]).expect_err("truncated must fail");
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated { .. } | SnapshotError::BadChecksum { .. }
                ),
                "unexpected error at prefix {len}: {err:?}"
            );
        }
    }

    #[test]
    fn single_bit_flips_are_rejected() {
        let bytes = sample_snapshot().encode();
        for byte in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[byte] ^= 0x10;
            assert!(
                Snapshot::decode(&corrupt).is_err(),
                "bit flip at byte {byte} went undetected"
            );
        }
    }

    #[test]
    fn forward_references_are_rejected() {
        // A hand-crafted snapshot whose App node references itself; the
        // checksum is valid, so only structural validation catches it.
        let snap = Snapshot {
            arena: ArenaExport {
                nodes: vec![ExportedNode::Const(1), ExportedNode::App(OpCode::Not, vec![1])],
                app_cache: vec![],
            },
            memo: MemoExport::default(),
        };
        let bytes = snap.encode();
        assert!(matches!(
            Snapshot::decode(&bytes),
            Err(SnapshotError::IndexOutOfRange { .. })
        ));
    }

    #[test]
    fn unknown_version_is_rejected() {
        let mut bytes = sample_snapshot().encode();
        bytes[8] = 0xfe; // version field, after the 8-byte magic
        let len = bytes.len();
        let checksum = fnv1a(&bytes[..len - 8]);
        bytes[len - 8..].copy_from_slice(&checksum.to_le_bytes());
        assert!(matches!(
            Snapshot::decode(&bytes),
            Err(SnapshotError::BadVersion { found: 0xfe })
        ));
    }
}
