//! # sct-cache
//!
//! Warm-start persistence for the symbolic substrate: expression-arena
//! snapshots and memoized solver verdicts, saved to disk between runs
//! so repeated CLI/CI invocations over the same corpus do not rebuild
//! the arena or re-solve recurring path conditions from nothing.
//!
//! Three cooperating layers:
//!
//! * **Arena snapshots** — the process-wide interner flattened to a
//!   table of `(op, child-indices)` triples plus the memoized
//!   application-constructor cache ([`sct_symx::export_arena`]),
//!   serialized with a hand-rolled binary codec (see [`snapshot`]).
//!   Loading re-interns every node structurally, so a snapshot can
//!   hydrate a **non-empty** arena: ids are remapped, shared structure
//!   lands on existing ids, and snapshots from different processes
//!   compose.
//! * **Solver verdict memoization** — `Solver::check` results keyed by
//!   the canonical sorted constraint-id vector and the solver-options
//!   tag ([`sct_symx::export_solver_memo`]), persisted alongside the
//!   arena and remapped through the same table on load.
//! * **Epoch lifecycle** — [`sct_symx::retire_arena`] lets a long-lived
//!   process drop the whole arena (and the verdict memo with it)
//!   between batches; stale `ExprRef`s are detected by an epoch tag and
//!   panic instead of aliasing nodes of the new epoch. Snapshots are
//!   epoch-agnostic: they store indices, never raw tagged ids.
//!
//! # On-disk format
//!
//! A snapshot file is `magic ∥ version ∥ arena ∥ app-cache ∥ memo ∥
//! checksum` (all integers little-endian; see [`snapshot`] for the
//! exact field layout). **Versioning and invalidation rules:**
//!
//! * the 8-byte magic `SCTCACHE` and a `u32` format version head the
//!   file; an unknown version is rejected outright — there is no
//!   cross-version migration, a stale cache is simply rebuilt;
//! * the trailing FNV-1a 64 checksum covers every preceding byte;
//!   truncated or bit-flipped files are rejected before anything is
//!   imported;
//! * every structural invariant is re-validated on load (child indices
//!   strictly below their parent, opcode bytes in range, arities
//!   respected, cache and memo indices inside the node table) — a
//!   snapshot is untrusted input, and a malformed one leaves the
//!   process arena untouched;
//! * memoized verdicts carry the solver-options tag they were computed
//!   under; a solver running with different options never reads them
//!   (they stay in the table keyed under their own tag);
//! * a load **merges**: nodes already interned count as `preexisting`
//!   (the disk hit), verdicts already memoized keep the live entry.
//!
//! Failure of [`load`] is always safe to ignore — the caller falls back
//! to a cold start and the next [`save`] rewrites the file.
//!
//! # Example
//!
//! ```no_run
//! use sct_cache::{load_if_exists, save};
//!
//! let path = std::path::Path::new("target/sct.cache");
//! if let Ok(Some(stats)) = load_if_exists(path) {
//!     eprintln!("warm start: {} nodes ({} new)", stats.snapshot_nodes, stats.added);
//! }
//! // ... run analyses; the arena and verdict memo fill up ...
//! save(path).expect("persist warm-start cache");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod codec;
pub mod snapshot;
mod store;

pub use snapshot::{HydrateStats, PruneStats, Snapshot, SnapshotError, FORMAT_VERSION};
pub use store::{
    load, load_if_exists, load_or_quarantine, quarantine, save, save_rooted, CacheError,
    DegradedLoad, LoadStats, SaveStats,
};
