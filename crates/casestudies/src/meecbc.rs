//! OpenSSL MAC-then-Encode-then-CBC-encrypt (MEE-CBC).
//!
//! Table 2: the **C** build is flagged in v1 mode (record-length bounds
//! check bypassed). The **FaCT** build is flagged **only with
//! forwarding-hazard detection** — the Figure 10 gadget: after
//! `_sha1_update` returns, the return-address load can speculatively
//! receive the *previous* return address stored at the same stack slot
//! (the one from the `aesni_cbc_encrypt` call), re-executing the
//! `_out[%r14]` access with `%r14` holding the secret-derived `ret`
//! value instead of the public length.

use crate::common::regs::*;
use crate::common::{
    load_block, quarter_round, standard_config, CaseStudy, Variant, KEY, MSG, OUT, SCRATCH,
    TABLE,
};
use sct_asm::builder::{imm, reg, ProgramBuilder};
use sct_core::reg::names::*;
use sct_core::OpCode;

/// A small AES-CBC-flavoured body for `aesni_cbc_encrypt`.
fn cbc_body(b: &mut ProgramBuilder) {
    let st = [RA, RB];
    load_block(b, KEY, &st);
    b.load(RC, [imm(MSG)]);
    b.op(RC, OpCode::Xor, [reg(RC), reg(RA)]); // CBC xor
    quarter_round(b, RA, RB, RC); // "rounds"
    quarter_round(b, RB, RC, RA);
    b.store(reg(RC), [imm(OUT)]);
}

/// A small SHA1-flavoured body for `_sha1_update`.
fn sha_body(b: &mut ProgramBuilder) {
    b.load(R8, [imm(OUT)]);
    b.op(R9, OpCode::Shl, [reg(R8), imm(5)]);
    b.op(R10, OpCode::Shr, [reg(R8), imm(27)]);
    b.op(R9, OpCode::Or, [reg(R9), reg(R10)]);
    b.op(R9, OpCode::Add, [reg(R9), imm(0x5a827999)]);
    b.store(reg(R9), [imm(SCRATCH + 3)]);
}

/// The FaCT build (Figure 10): constant-time padding handling, leaking
/// only through the speculative-return re-execution of the `_out[r14]`
/// load.
pub fn fact_variant() -> CaseStudy {
    let mut b = ProgramBuilder::new();
    b.entry("main");
    b.label("main");
    // %r14 holds the public output length.
    b.op(R14, OpCode::Mov, [imm(7)]);
    b.call("aesni_cbc_encrypt");
    // Figure 10 line 3: pad = _out[len _out - 1] — public address, the
    // value (the pad byte) is secret. Re-executed speculatively with
    // r14 = ret (secret-derived), this same load leaks.
    b.op(R15, OpCode::Sub, [reg(R14), imm(1)]);
    b.load(RC, [imm(OUT), reg(R15)]); // pad (secret value)
    // maxpad = tmppad > 255 ? 255 : tmppad (public; constant here).
    b.op(RD, OpCode::Mov, [imm(255)]);
    // FaCT turns `if (pad > maxpad) { pad = maxpad; ret = 0; }` into
    // straight-line selects; ret (and thus r14) becomes secret-derived.
    b.op(RE, OpCode::Gt, [reg(RC), reg(RD)]);
    b.op(RC, OpCode::Csel, [reg(RE), reg(RD), reg(RC)]);
    b.op(R14, OpCode::Csel, [reg(RE), imm(0), imm(1)]); // overwrites %r14
    b.call("sha1_update");
    // Epilogue bookkeeping (public).
    b.store(reg(R14), [imm(SCRATCH + 4)]);
    b.jmp("end");
    b.label("aesni_cbc_encrypt");
    cbc_body(&mut b);
    b.ret();
    b.label("sha1_update");
    sha_body(&mut b);
    b.ret();
    b.label("end");
    let program = b.build().expect("mee fact builds");
    let config = standard_config(program.entry);
    CaseStudy {
        name: "OpenSSL MEE-CBC",
        variant: Variant::Fact,
        description: "fig. 10: stale return address re-executes _out[r14] with secret r14",
        program,
        config,
    }
}

/// The C build: same structure, but record handling bounds-checks the
/// (attacker-controlled) length with a branch — a v1 gadget.
pub fn c_variant() -> CaseStudy {
    let mut b = ProgramBuilder::new();
    b.entry("main");
    b.label("main");
    b.op(R14, OpCode::Mov, [imm(7)]);
    b.call("aesni_cbc_encrypt");
    // len = wire length (attacker-controlled, architecturally OOB).
    b.load(RA, [imm(SCRATCH)]);
    b.br(OpCode::Gt, [imm(8), reg(RA)], "pad_ok", "bad_record");
    b.label("pad_ok");
    // pad = _out[len]; speculatively out of bounds into key material.
    b.load(RC, [imm(OUT), reg(RA)]);
    b.load(RD, [imm(TABLE), reg(RC)]); // pad-dependent lookup: leak
    b.label("bad_record");
    b.call("sha1_update");
    b.store(reg(R14), [imm(SCRATCH + 4)]);
    b.jmp("end");
    b.label("aesni_cbc_encrypt");
    cbc_body(&mut b);
    b.ret();
    b.label("sha1_update");
    sha_body(&mut b);
    b.ret();
    b.label("end");
    let program = b.build().expect("mee c builds");
    let mut config = standard_config(program.entry);
    config.mem.write(SCRATCH, sct_core::Val::public(12)); // OOB length (lands in secret _out)
    CaseStudy {
        name: "OpenSSL MEE-CBC",
        variant: Variant::C,
        description: "branchy record-length check: speculative OOB pad read (v1)",
        program,
        config,
    }
}
