//! libsodium `crypto_secretbox`: an XSalsa20/Poly1305-flavoured seal.
//!
//! The paper (Table 2, §4.2.2) found a Spectre v1 violation in the **C**
//! build only — not in the crypto core, but in ancillary code: the
//! stack-protector epilogue. On a mispredicted canary check the
//! processor runs into `__libc_message`'s linked-list walk (Figure 9),
//! traverses non-existent links, and dereferences secret bytes as
//! pointers. The **FaCT** build has no such epilogue and is clean.

use crate::common::regs::*;
use crate::common::{
    load_block, quarter_round, standard_config, store_block, CaseStudy, Variant, CANARY, KEY,
    LIST_HEAD, MSG, NONCE, OUT, SCRATCH,
};
use sct_asm::builder::{imm, reg, ProgramBuilder};
use sct_core::reg::names::*;
use sct_core::OpCode;

/// The crypto core shared by both builds: an ARX stream-cipher block
/// (key ⊕ nonce mixing, two double-rounds) and a Poly1305-ish MAC
/// accumulation. Straight-line, constant addresses.
fn crypto_core(b: &mut ProgramBuilder) {
    let state = [RA, RB, RC, RD];
    load_block(b, KEY, &state);
    b.load(RE, [imm(NONCE)]);
    b.load(RF, [imm(NONCE + 1)]);
    // Mix the nonce into the state.
    b.op(RA, OpCode::Xor, [reg(RA), reg(RE)]);
    b.op(RB, OpCode::Xor, [reg(RB), reg(RF)]);
    // Two double-rounds.
    for _ in 0..2 {
        quarter_round(b, RA, RB, RC);
        quarter_round(b, RB, RC, RD);
        quarter_round(b, RC, RD, RA);
        quarter_round(b, RD, RA, RB);
    }
    // Encrypt four message words.
    for k in 0..4u64 {
        b.load(R8, [imm(MSG + k)]);
        b.op(R9, OpCode::Xor, [reg(R8), reg(state[k as usize])]);
        b.store(reg(R9), [imm(OUT + k)]);
    }
    // Poly1305-ish MAC accumulation over the ciphertext.
    b.op(R10, OpCode::Mov, [imm(0)]);
    for k in 0..4u64 {
        b.load(R8, [imm(OUT + k)]);
        b.op(R10, OpCode::Add, [reg(R10), reg(R8)]);
        b.op(R10, OpCode::Mul, [reg(R10), imm(5)]);
        b.op(R10, OpCode::And, [reg(R10), imm(0x3ffffff)]);
    }
    b.store(reg(R10), [imm(OUT + 8)]);
    store_block(b, SCRATCH, &[RA]);
}

/// The stack-protector epilogue of the C build: reload the canary and
/// compare; on mismatch, call the fatal-error path which walks the
/// `__libc_message` argument list (Figure 9's gadget).
fn stack_protector_epilogue(b: &mut ProgramBuilder) {
    b.load(R11, [imm(CANARY)]); // the reference canary
    b.load(R12, [imm(SCRATCH + 7)]); // the copy saved in this frame
    // The frame is intact, so architecturally the check always passes
    // and the error path below is speculative-only.
    b.br(OpCode::Eq, [reg(R11), reg(R12)], "ok", "smashed");
    b.label("smashed");
    // __libc_message: walk the iovec list (Figure 9). The misspeculated
    // walk runs one node past the real list into key material.
    b.load(R14, [imm(LIST_HEAD)]); // list
    b.load(R15, [reg(R14)]); // iov_base = list->str   (valid node)
    b.load(R14, [reg(R14), imm(1)]); // list = list->next → points at KEY
    b.load(R15, [reg(R14)]); // list->str: loads a *secret* word
    b.load(R15, [reg(R15)]); // dereferences it: secret-addressed load
    b.label("ok");
}

/// The C build: crypto core + canary save/check + error path.
pub fn c_variant() -> CaseStudy {
    let mut b = ProgramBuilder::new();
    // Prologue: save the canary into the frame (so the check passes
    // architecturally and the error path is speculative-only).
    b.load(R11, [imm(CANARY)]);
    b.store(reg(R11), [imm(SCRATCH + 7)]);
    crypto_core(&mut b);
    stack_protector_epilogue(&mut b);
    let program = b.build().expect("secretbox C builds");
    let config = standard_config(program.entry);
    CaseStudy {
        name: "libsodium secretbox",
        variant: Variant::C,
        description: "stack-protector error path walks a list into key material (fig. 9)",
        program,
        config,
    }
}

/// The FaCT build: the crypto core only — FaCT emits no stack-protector
/// branches and its epilogue is straight-line.
pub fn fact_variant() -> CaseStudy {
    let mut b = ProgramBuilder::new();
    crypto_core(&mut b);
    let program = b.build().expect("secretbox FaCT builds");
    let config = standard_config(program.entry);
    CaseStudy {
        name: "libsodium secretbox",
        variant: Variant::Fact,
        description: "straight-line seal; no ancillary branches",
        program,
        config,
    }
}
