//! curve25519-donna: straightforward constant-time field arithmetic.
//!
//! The paper found **no** SCT violations in either build (Table 2, first
//! row) — "the curve25519-donna library is a straightforward
//! implementation of crypto primitives". We reproduce the shape: field
//! multiplication and squaring as *functions* (called through the
//! `call`/`ret` machinery, as the real library's `fmul`/`fsquare` are),
//! a constant-time conditional swap keyed on a secret scalar bit, and a
//! Montgomery-ladder step composed from them. Everything is
//! straight-line with constant addresses; both builds are structurally
//! identical, matching the paper's twin ✓ verdicts.

use crate::common::regs::*;
use crate::common::{
    load_block, mul_chain, quarter_round, standard_config, CaseStudy, Variant, KEY, NONCE, OUT,
    SCRATCH,
};
use sct_asm::builder::{imm, reg, ProgramBuilder};
use sct_core::reg::names::*;
use sct_core::OpCode;

/// `fmul`: operands in `x[0..2]`/`y[0..2]`, result in `r10`.
fn emit_fmul(b: &mut ProgramBuilder, name: &str) {
    b.label(name);
    mul_chain(b, &[RA, RB], &[RE, RF], R10);
    b.ret();
}

/// `fsquare`: operand in `x[0..2]`, result in `r11`.
fn emit_fsquare(b: &mut ProgramBuilder, name: &str) {
    b.label(name);
    mul_chain(b, &[RA, RB], &[RA, RB], R11);
    b.ret();
}

/// One ladder step body: cswap on the secret bit, multiply, square,
/// mix, store the outputs.
fn emit_ladder_step(b: &mut ProgramBuilder, round: u64) {
    // cswap keyed on a secret scalar bit (data flow only).
    b.load(R12, [imm(KEY + 4)]);
    b.op(R12, OpCode::Shr, [reg(R12), imm(round)]);
    b.op(R12, OpCode::And, [reg(R12), imm(1)]);
    for (x, y) in [(RA, RE), (RB, RF)] {
        b.op(RG, OpCode::Csel, [reg(R12), reg(y), reg(x)]);
        b.op(RH, OpCode::Csel, [reg(R12), reg(x), reg(y)]);
        b.op(x, OpCode::Mov, [reg(RG)]);
        b.op(y, OpCode::Mov, [reg(RH)]);
    }
    b.call("fmul");
    b.store(reg(R10), [imm(OUT + 2 * round)]);
    b.call("fsquare");
    b.store(reg(R11), [imm(OUT + 2 * round + 1)]);
    // ARX-flavoured mixing between the limbs.
    quarter_round(b, RA, RB, RE);
    quarter_round(b, RE, RF, RA);
}

fn build(variant: Variant) -> CaseStudy {
    let mut b = ProgramBuilder::new();
    b.entry("main");
    b.label("main");

    // Load the (secret) scalar limbs and the (public) base-point limbs.
    load_block(&mut b, KEY, &[RA, RB]);
    load_block(&mut b, NONCE, &[RE, RF]);

    // Three ladder rounds through the shared field routines.
    for round in 0..3u64 {
        emit_ladder_step(&mut b, round);
    }

    // fe_add / fe_sub over the limbs, then a final reduction.
    for (k, (x, y)) in [(RA, RE), (RB, RF)].into_iter().enumerate() {
        b.op(RG, OpCode::Add, [reg(x), reg(y)]);
        b.store(reg(RG), [imm(OUT + 8 + k as u64)]);
        b.op(RH, OpCode::Sub, [reg(x), reg(y)]);
        b.store(reg(RH), [imm(OUT + 10 + k as u64)]);
    }
    mul_chain(&mut b, &[RA, RB], &[RE, RF], R13);
    b.store(reg(R13), [imm(SCRATCH)]);
    b.jmp("end");

    emit_fmul(&mut b, "fmul");
    emit_fsquare(&mut b, "fsquare");
    b.label("end");

    let program = b.build().expect("donna builds");
    let config = standard_config(program.entry);
    CaseStudy {
        name: "curve25519-donna",
        variant,
        description: "straight-line field arithmetic behind call/ret; no speculative leaks",
        program,
        config,
    }
}

/// The C build.
pub fn c_variant() -> CaseStudy {
    build(Variant::C)
}

/// The FaCT build.
pub fn fact_variant() -> CaseStudy {
    build(Variant::Fact)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sct_core::sched::sequential::run_sequential;

    #[test]
    fn donna_runs_to_completion_with_balanced_stack() {
        let study = fact_variant();
        let out = run_sequential(
            &study.program,
            study.config.clone(),
            sct_core::Params::paper(),
            1_000_000,
        )
        .unwrap();
        assert!(out.terminal);
        assert!(out.outcome.trace.is_public());
        assert_eq!(
            out.config.regs.read(sct_core::Reg::RSP),
            study.config.regs.read(sct_core::Reg::RSP),
            "all calls returned"
        );
        // Outputs were produced.
        assert_ne!(out.config.mem.read(OUT).bits, 0);
    }

    #[test]
    fn both_variants_are_structurally_identical() {
        assert_eq!(c_variant().program, fact_variant().program);
    }
}
