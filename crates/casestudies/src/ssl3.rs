//! OpenSSL `ssl3_record_validate`-style record processing.
//!
//! Table 2: the **C** build is flagged in v1 mode (a record-length
//! bounds check speculatively bypassed into an out-of-bounds read whose
//! result indexes a table); the **FaCT** build is constant-time but is
//! flagged **only with forwarding-hazard detection** (`f` in the
//! table): its sanitized padding scratch slot can be read *before* the
//! sanitizing store resolves its address, reviving the secret
//! intermediate (a Spectre v4 pattern).

use crate::common::regs::*;
use crate::common::{
    standard_config, CaseStudy, Variant, KEY, OUT, SCRATCH, TABLE,
};
use sct_asm::builder::{imm, reg, ProgramBuilder};
use sct_core::reg::names::*;
use sct_core::OpCode;

/// Constant-time MAC comparison shared by both builds: XOR-accumulate
/// the (secret) MAC words against recomputed values; reduce with csel.
fn ct_mac_check(b: &mut ProgramBuilder) {
    b.op(R8, OpCode::Mov, [imm(0)]);
    for k in 0..4u64 {
        b.load(R9, [imm(OUT + k)]); // received MAC word (secret)
        b.load(R10, [imm(KEY + k)]); // recomputed word (secret)
        b.op(R11, OpCode::Xor, [reg(R9), reg(R10)]);
        b.op(R8, OpCode::Or, [reg(R8), reg(R11)]);
    }
    // ok = (diff == 0) ? 1 : 0 — data flow only.
    b.op(R12, OpCode::Eq, [reg(R8), imm(0)]);
    b.op(R13, OpCode::Csel, [reg(R12), imm(1), imm(0)]);
    b.store(reg(R13), [imm(SCRATCH + 1)]);
}

/// The C build: the record-length check is a branch, and the
/// mispredicted path reads past the record into the MAC/key region,
/// then uses the byte as a table index — a textbook v1 gadget inside
/// record validation.
pub fn c_variant() -> CaseStudy {
    let mut b = ProgramBuilder::new();
    // rec_len comes from the (public) wire header.
    b.load(RA, [imm(SCRATCH)]); // rec_len (public, architecturally 0)
    b.br(OpCode::Gt, [imm(4), reg(RA)], "in_bounds", "reject");
    b.label("in_bounds");
    // padding byte = rec[rec_len - 1]; with rec_len speculatively huge
    // this reads the secret MAC region.
    b.op(RB, OpCode::Sub, [reg(RA), imm(1)]);
    b.load(RC, [imm(OUT), reg(RB)]);
    // pad-dependent table lookup (the leak).
    b.load(RD, [imm(TABLE), reg(RC)]);
    b.label("reject");
    ct_mac_check(&mut b);
    let program = b.build().expect("ssl3 C builds");
    let mut config = standard_config(program.entry);
    // The attacker controls the wire length field: out of bounds.
    config.mem.write(SCRATCH, sct_core::Val::public(12));
    CaseStudy {
        name: "OpenSSL ssl3 record validate",
        variant: Variant::C,
        description: "branchy length check: speculative OOB pad read indexes a table",
        program,
        config,
    }
}

/// The FaCT build: the length check is constant-time (csel-clamped), but
/// the pad scratch slot is sanitized by a store whose address arrives
/// late — a load slipping underneath it revives the secret pad byte.
pub fn fact_variant() -> CaseStudy {
    let mut b = ProgramBuilder::new();
    // Clamp the length without branching: len = min(len, 3).
    b.load(RA, [imm(SCRATCH)]);
    b.op(RB, OpCode::Lt, [reg(RA), imm(4)]);
    b.op(RA, OpCode::Csel, [reg(RB), reg(RA), imm(3)]);
    // pad = rec[len] (in bounds by construction; value is secret).
    b.load(RC, [imm(OUT), reg(RA)]);
    // Spill the secret pad byte to the scratch slot...
    b.store(reg(RC), [imm(SCRATCH + 2)]);
    // ...then sanitize the slot; the slot address is register-computed,
    // so its resolution can be delayed (the v4 hazard).
    b.op(RD, OpCode::Add, [imm(SCRATCH), imm(2)]);
    b.store(imm(0), [reg(RD)]);
    // Later, "public" bookkeeping reloads the slot and uses it as an
    // index — correct architecturally (reads 0), leaking speculatively.
    b.load(RE, [imm(SCRATCH + 2)]);
    b.load(RF, [imm(TABLE), reg(RE)]);
    ct_mac_check(&mut b);
    let program = b.build().expect("ssl3 FaCT builds");
    let config = standard_config(program.entry);
    CaseStudy {
        name: "OpenSSL ssl3 record validate",
        variant: Variant::Fact,
        description: "sanitizing store bypassed: stale secret pad byte indexes a table (v4)",
        program,
        config,
    }
}
