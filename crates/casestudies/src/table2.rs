//! Table 2: run Pitchfork over every case study in both modes and
//! render the paper's detection matrix.

use crate::common::{CaseStudy, Variant};
use crate::{donna, meecbc, secretbox, ssl3};
use pitchfork::{AnalysisSession, BatchItem, BatchReport, DetectorOptions, StrategyKind};
use std::fmt;

/// The verdicts for one build of one case study.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Cell {
    /// Flagged in v1/v1.1 mode (no forwarding hazards).
    pub v1: bool,
    /// Flagged in v4 mode (with forwarding hazards).
    pub v4: bool,
}

impl Cell {
    /// The paper's notation: `✗` = violation found in v1 mode, `f` =
    /// found only with forwarding-hazard detection, `✓` = no violation.
    pub fn symbol(&self) -> &'static str {
        match (self.v1, self.v4) {
            (true, _) => "✗",
            (false, true) => "f",
            (false, false) => "✓",
        }
    }
}

/// One row of Table 2.
#[derive(Clone, Debug)]
pub struct Row {
    /// Case-study name.
    pub name: &'static str,
    /// The C build's verdicts.
    pub c: Cell,
    /// The FaCT build's verdicts.
    pub fact: Cell,
}

/// The whole table, with the bounds used.
#[derive(Clone, Debug)]
pub struct Table2 {
    /// Rows in paper order.
    pub rows: Vec<Row>,
    /// Speculation bound used in v1 mode.
    pub v1_bound: usize,
    /// Speculation bound used in v4 mode.
    pub v4_bound: usize,
}

/// All eight case-study builds (four studies × two variants).
pub fn all_studies() -> Vec<CaseStudy> {
    vec![
        donna::c_variant(),
        donna::fact_variant(),
        secretbox::c_variant(),
        secretbox::fact_variant(),
        ssl3::c_variant(),
        ssl3::fact_variant(),
        meecbc::c_variant(),
        meecbc::fact_variant(),
    ]
}

/// Analyze one build in one mode.
pub fn analyze(study: &CaseStudy, forwarding_hazards: bool, bound: usize) -> pitchfork::Report {
    let options = if forwarding_hazards {
        DetectorOptions::v4_mode(bound)
    } else {
        DetectorOptions::v1_mode(bound)
    };
    AnalysisSession::with_options(options).analyze(&study.program, &study.config)
}

/// The key a study gets inside the Table 2 batches.
fn item_name(study: &CaseStudy) -> String {
    format!(
        "{}/{}",
        study.name,
        match study.variant {
            Variant::C => "c",
            Variant::Fact => "fact",
        }
    )
}

/// All eight builds as batch items.
pub fn batch_items() -> Vec<BatchItem> {
    all_studies()
        .into_iter()
        .map(|s| BatchItem::new(item_name(&s), s.program, s.config))
        .collect()
}

/// Run the full Table 2 experiment under the given frontier order,
/// mirroring §4.2.1's procedure: v1 mode with a deep bound first; v4
/// mode with a reduced bound. Both passes run through one
/// [`AnalysisSession`], so all eight builds share the expression arena
/// and the aggregate statistics cover the whole matrix.
pub fn run_with_strategy(v1_bound: usize, v4_bound: usize, strategy: StrategyKind) -> Table2 {
    // threads = 1 is the serial engine, byte-identical by contract.
    run_parallel(v1_bound, v4_bound, strategy, 1)
}

/// [`run_with_strategy`] under the default (LIFO) order.
pub fn run(v1_bound: usize, v4_bound: usize) -> Table2 {
    run_with_strategy(v1_bound, v4_bound, StrategyKind::Lifo)
}

/// [`run_with_strategy`] on a multi-threaded frontier: every case
/// study explored by `threads` workers. Detection symbols must match
/// the serial table — the parallel-equivalence suite pins it.
pub fn run_parallel(
    v1_bound: usize,
    v4_bound: usize,
    strategy: StrategyKind,
    threads: usize,
) -> Table2 {
    let mut session = AnalysisSession::builder()
        .v1_mode(v1_bound)
        .strategy(strategy)
        .parallelism(threads)
        .build()
        .expect("uncached session");
    let v1 = session.run_batch(batch_items());
    session.set_options(DetectorOptions::v4_mode(v4_bound));
    let v4 = session.run_batch(batch_items());
    from_batches(&v1, &v4, v1_bound, v4_bound)
}

/// [`run`], warm-started from (and saved back to) a `sct-cache`
/// snapshot through one [`AnalysisSession`]: the v1 batch hydrates the
/// arena and verdict memo from `cache`, both batch reports carry
/// solver-memo statistics, and the state after both passes is
/// persisted for the next invocation. Returns the per-mode batch
/// reports alongside the rendered table.
pub fn run_cached(
    v1_bound: usize,
    v4_bound: usize,
    cache: &std::path::Path,
) -> Result<(Table2, BatchReport, BatchReport), sct_cache::CacheError> {
    let mut session = AnalysisSession::builder()
        .v1_mode(v1_bound)
        .cache(cache)
        .build()?;
    let v1 = session.run_batch(batch_items());
    session.set_options(DetectorOptions::v4_mode(v4_bound));
    let v4 = session.run_batch(batch_items());
    session.save()?;
    Ok((from_batches(&v1, &v4, v1_bound, v4_bound), v1, v4))
}

/// Assemble the detection matrix from one batch per mode (exposed so
/// callers holding their own batch reports — the bench, the example —
/// can render the paper's table without re-running).
pub fn from_batches(v1: &BatchReport, v4: &BatchReport, v1_bound: usize, v4_bound: usize) -> Table2 {
    let names = [
        "curve25519-donna",
        "libsodium secretbox",
        "OpenSSL ssl3 record validate",
        "OpenSSL MEE-CBC",
    ];
    let flagged = |batch: &BatchReport, key: &str| {
        batch
            .outcome(key)
            .is_some_and(|o| o.report.has_violations())
    };
    let rows = names
        .into_iter()
        .map(|name| {
            let cell = |variant: &str| Cell {
                v1: flagged(v1, &format!("{name}/{variant}")),
                v4: flagged(v4, &format!("{name}/{variant}")),
            };
            Row {
                name,
                c: cell("c"),
                fact: cell("fact"),
            }
        })
        .collect();
    Table2 {
        rows,
        v1_bound,
        v4_bound,
    }
}

impl fmt::Display for Table2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 2: ✗ = SCT violation; f = violation only with forwarding"
        )?;
        writeln!(
            f,
            "hazard detection; ✓ = no violation (bounds: v1 {}, v4 {})",
            self.v1_bound, self.v4_bound
        )?;
        writeln!(f)?;
        writeln!(f, "{:<32} {:>4} {:>5}", "Case Study", "C", "FaCT")?;
        for row in &self.rows {
            writeln!(
                f,
                "{:<32} {:>4} {:>5}",
                row.name,
                row.c.symbol(),
                row.fact.symbol()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_symbols() {
        assert_eq!(Cell { v1: true, v4: true }.symbol(), "✗");
        assert_eq!(Cell { v1: false, v4: true }.symbol(), "f");
        assert_eq!(Cell { v1: false, v4: false }.symbol(), "✓");
    }
}
