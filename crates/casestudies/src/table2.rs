//! Table 2: run Pitchfork over every case study in both modes and
//! render the paper's detection matrix.

use crate::common::{CaseStudy, Variant};
use crate::{donna, meecbc, secretbox, ssl3};
use pitchfork::{Detector, DetectorOptions};
use std::fmt;

/// The verdicts for one build of one case study.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Cell {
    /// Flagged in v1/v1.1 mode (no forwarding hazards).
    pub v1: bool,
    /// Flagged in v4 mode (with forwarding hazards).
    pub v4: bool,
}

impl Cell {
    /// The paper's notation: `✗` = violation found in v1 mode, `f` =
    /// found only with forwarding-hazard detection, `✓` = no violation.
    pub fn symbol(&self) -> &'static str {
        match (self.v1, self.v4) {
            (true, _) => "✗",
            (false, true) => "f",
            (false, false) => "✓",
        }
    }
}

/// One row of Table 2.
#[derive(Clone, Debug)]
pub struct Row {
    /// Case-study name.
    pub name: &'static str,
    /// The C build's verdicts.
    pub c: Cell,
    /// The FaCT build's verdicts.
    pub fact: Cell,
}

/// The whole table, with the bounds used.
#[derive(Clone, Debug)]
pub struct Table2 {
    /// Rows in paper order.
    pub rows: Vec<Row>,
    /// Speculation bound used in v1 mode.
    pub v1_bound: usize,
    /// Speculation bound used in v4 mode.
    pub v4_bound: usize,
}

/// All eight case-study builds (four studies × two variants).
pub fn all_studies() -> Vec<CaseStudy> {
    vec![
        donna::c_variant(),
        donna::fact_variant(),
        secretbox::c_variant(),
        secretbox::fact_variant(),
        ssl3::c_variant(),
        ssl3::fact_variant(),
        meecbc::c_variant(),
        meecbc::fact_variant(),
    ]
}

/// Analyze one build in one mode.
pub fn analyze(study: &CaseStudy, forwarding_hazards: bool, bound: usize) -> pitchfork::Report {
    let options = if forwarding_hazards {
        DetectorOptions::v4_mode(bound)
    } else {
        DetectorOptions::v1_mode(bound)
    };
    Detector::new(options).analyze(&study.program, &study.config)
}

/// Run the full Table 2 experiment, mirroring §4.2.1's procedure:
/// v1 mode with a deep bound first; v4 mode with a reduced bound.
pub fn run(v1_bound: usize, v4_bound: usize) -> Table2 {
    let names = [
        "curve25519-donna",
        "libsodium secretbox",
        "OpenSSL ssl3 record validate",
        "OpenSSL MEE-CBC",
    ];
    let studies = all_studies();
    let mut rows = Vec::new();
    for name in names {
        let mut c = Cell { v1: false, v4: false };
        let mut fact = Cell { v1: false, v4: false };
        for s in studies.iter().filter(|s| s.name == name) {
            let v1 = analyze(s, false, v1_bound).has_violations();
            let v4 = analyze(s, true, v4_bound).has_violations();
            match s.variant {
                Variant::C => c = Cell { v1, v4 },
                Variant::Fact => fact = Cell { v1, v4 },
            }
        }
        rows.push(Row { name, c, fact });
    }
    Table2 {
        rows,
        v1_bound,
        v4_bound,
    }
}

impl fmt::Display for Table2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 2: ✗ = SCT violation; f = violation only with forwarding"
        )?;
        writeln!(
            f,
            "hazard detection; ✓ = no violation (bounds: v1 {}, v4 {})",
            self.v1_bound, self.v4_bound
        )?;
        writeln!(f)?;
        writeln!(f, "{:<32} {:>4} {:>5}", "Case Study", "C", "FaCT")?;
        for row in &self.rows {
            writeln!(
                f,
                "{:<32} {:>4} {:>5}",
                row.name,
                row.c.symbol(),
                row.fact.symbol()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_symbols() {
        assert_eq!(Cell { v1: true, v4: true }.symbol(), "✗");
        assert_eq!(Cell { v1: false, v4: true }.symbol(), "f");
        assert_eq!(Cell { v1: false, v4: false }.symbol(), "✓");
    }
}
