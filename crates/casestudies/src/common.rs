//! Shared scaffolding for the case studies: the memory map, realistic
//! straight-line crypto building blocks, and the case-study descriptor.

use sct_asm::builder::{imm, reg, Arg, ConfigBuilder, ProgramBuilder};
use sct_core::reg::names::*;
use sct_core::{Config, OpCode, Program, Reg, Val};

/// Which build of a case study (Table 2's two columns).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Variant {
    /// The C reference implementation (with its ancillary code).
    C,
    /// The FaCT constant-time implementation (straight-line selection).
    Fact,
}

impl Variant {
    /// Column label.
    pub fn name(self) -> &'static str {
        match self {
            Variant::C => "C",
            Variant::Fact => "FaCT",
        }
    }
}

/// A case study: a program plus its initial configuration.
pub struct CaseStudy {
    /// Row name (e.g. `curve25519-donna`).
    pub name: &'static str,
    /// Which build.
    pub variant: Variant,
    /// What the interesting code pattern is.
    pub description: &'static str,
    /// The program.
    pub program: Program,
    /// The initial configuration.
    pub config: Config,
}

// ---- memory map ------------------------------------------------------------

/// Secret key material.
pub const KEY: u64 = 0x100;
/// Public nonce/IV.
pub const NONCE: u64 = 0x120;
/// Message buffer (secret plaintext).
pub const MSG: u64 = 0x140;
/// Output buffer (secret until released).
pub const OUT: u64 = 0x180;
/// Public lookup table (the "transmission" array for leaks).
pub const TABLE: u64 = 0x200;
/// Public scratch.
pub const SCRATCH: u64 = 0x240;
/// Initial stack pointer.
pub const STACK_TOP: u64 = 0x7c;
/// The stack-protector canary cell (public).
pub const CANARY: u64 = 0x248;
/// Head of the error-path string list (libc `__libc_message`).
pub const LIST_HEAD: u64 = 0x24c;
/// The list node region, deliberately adjacent below [`KEY`].
pub const LIST_NODES: u64 = 0xfc;

/// The standard configuration: key/message secret, nonce/table public,
/// stack pointer set, canary intact.
pub fn standard_config(entry: u64) -> Config {
    ConfigBuilder::new()
        .secret_array(KEY, &[0x1111, 0x2222, 0x3333, 0x4444, 0x5555, 0x6666, 0x7777, 0x8888])
        .public_array(NONCE, &[0xaa, 0xbb, 0xcc, 0xdd])
        .secret_array(MSG, &[0xd0, 0xd1, 0xd2, 0xd3, 0xd4, 0xd5, 0xd6, 0xd7])
        .secret_array(OUT, &[0; 16])
        .public_array(TABLE, &[0; 32])
        .public_array(SCRATCH, &[0; 8])
        .cell(CANARY, Val::public(0x5a5a))
        // The valid list node: one (string-ptr, next) pair whose `next`
        // runs off into key material.
        .cell(LIST_HEAD, Val::public(LIST_NODES))
        .cell(LIST_NODES, Val::public(TABLE)) // str pointer (valid)
        .cell(LIST_NODES + 1, Val::public(KEY)) // "next" walks into secrets
        .rsp(STACK_TOP)
        .entry(entry)
        .build()
}

// ---- straight-line crypto building blocks ----------------------------------

/// Emit an ARX-style quarter round over registers `(a, b, c)` with the
/// rotation counts of Salsa20 — pure straight-line data flow.
pub fn quarter_round(b: &mut ProgramBuilder, ra: Reg, rb: Reg, rc: Reg) {
    // b ^= rotl(a + c, 7); modeled with shl/shr/or.
    b.op(RG, OpCode::Add, [reg(ra), reg(rc)]);
    b.op(RH, OpCode::Shl, [reg(RG), imm(7)]);
    b.op(RG, OpCode::Shr, [reg(RG), imm(57)]);
    b.op(RG, OpCode::Or, [reg(RG), reg(RH)]);
    b.op(rb, OpCode::Xor, [reg(rb), reg(RG)]);
}

/// Emit a load of `count` words from `base` into registers `r0..`,
/// returning the registers used.
pub fn load_block(b: &mut ProgramBuilder, base: u64, regs: &[Reg]) {
    for (k, &r) in regs.iter().enumerate() {
        b.load(r, [imm(base + k as u64)]);
    }
}

/// Emit a store of the registers to `base..`.
pub fn store_block(b: &mut ProgramBuilder, base: u64, regs: &[Reg]) {
    for (k, &r) in regs.iter().enumerate() {
        b.store(reg(r), [imm(base + k as u64)]);
    }
}

/// A schoolbook multiply-accumulate chain over `limbs` registers —
/// the shape of a donna field multiplication (straight-line, no
/// branches, no secret-dependent addresses).
pub fn mul_chain(b: &mut ProgramBuilder, xs: &[Reg], ys: &[Reg], acc: Reg) {
    b.op(acc, OpCode::Mov, [imm(0)]);
    for &x in xs {
        for &y in ys {
            b.op(RG, OpCode::Mul, [reg(x), reg(y)]);
            b.op(acc, OpCode::Add, [reg(acc), reg(RG)]);
        }
    }
    // Carry-fold: acc = (acc & mask) + 19 * (acc >> 51), donna-style.
    b.op(RG, OpCode::Shr, [reg(acc), imm(51)]);
    b.op(RG, OpCode::Mul, [reg(RG), imm(19)]);
    b.op(RH, OpCode::And, [reg(acc), imm((1u64 << 51) - 1)]);
    b.op(acc, OpCode::Add, [reg(RH), reg(RG)]);
}

/// Convenience: an `Arg` list for a constant address.
pub fn at(addr: u64) -> [Arg; 1] {
    [imm(addr)]
}

/// Extra general-purpose registers beyond the `ra..rh` aliases.
pub mod regs {
    use sct_core::Reg;
    /// `r8`
    pub const R8: Reg = Reg(8);
    /// `r9`
    pub const R9: Reg = Reg(9);
    /// `r10`
    pub const R10: Reg = Reg(10);
    /// `r11`
    pub const R11: Reg = Reg(11);
    /// `r12`
    pub const R12: Reg = Reg(12);
    /// `r13`
    pub const R13: Reg = Reg(13);
    /// `r14` — the register of the Figure 10 gadget.
    pub const R14: Reg = Reg(14);
    /// `r15`
    pub const R15: Reg = Reg(15);
}
