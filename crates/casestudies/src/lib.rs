//! # sct-casestudies
//!
//! The four real-world crypto case studies of the paper's Table 2,
//! reimplemented in the `sct` ISA in two builds each:
//!
//! | Case study | C build | FaCT build |
//! |---|---|---|
//! | [`donna`] curve25519-donna | clean | clean |
//! | [`secretbox`] libsodium secretbox | v1 leak via stack-protector error path (fig. 9) | clean |
//! | [`ssl3`] OpenSSL record validate | v1 leak via branchy length check | `f`: v4 leak via bypassed sanitizing store |
//! | [`meecbc`] OpenSSL MEE-CBC | v1 leak via branchy length check | `f`: v4 leak via stale return address (fig. 10) |
//!
//! We do not have the authors' binaries or the FaCT compiler; these are
//! reconstructions of the *code patterns* the paper reports, so the
//! same semantics rules fire (see DESIGN.md's substitution notes).
//!
//! # Example
//!
//! ```no_run
//! let table = sct_casestudies::table2::run(250, 20);
//! println!("{table}");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod common;
pub mod donna;
pub mod meecbc;
pub mod secretbox;
pub mod ssl3;
pub mod table2;

pub use common::{CaseStudy, Variant};
