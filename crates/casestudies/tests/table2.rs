//! The Table 2 reproduction: the detection matrix must match the
//! paper's prose —
//!
//! * curve25519-donna: no violations in either build;
//! * libsodium secretbox: violation in the C build only (v1 mode);
//! * OpenSSL ssl3 record validate: C flagged in v1 mode, FaCT only
//!   with forwarding-hazard detection;
//! * OpenSSL MEE-CBC: C flagged in v1 mode, FaCT only with
//!   forwarding-hazard detection.


// Legacy-API coverage: this file deliberately exercises the deprecated
// `Detector`/`BatchAnalyzer` wrappers to pin their delegation behaviour.
#![allow(deprecated)]

use sct_casestudies::table2::{self, Cell};
use sct_core::sched::sequential::run_sequential;
use sct_core::Params;

/// Reduced bounds keep the test quick; the bench sweeps the paper's
/// 250/20 configuration.
const V1_BOUND: usize = 40;
const V4_BOUND: usize = 20;

#[test]
fn table2_matrix_matches_paper() {
    let table = table2::run(V1_BOUND, V4_BOUND);
    let expect = [
        ("curve25519-donna", Cell { v1: false, v4: false }, Cell { v1: false, v4: false }),
        ("libsodium secretbox", Cell { v1: true, v4: true }, Cell { v1: false, v4: false }),
        (
            "OpenSSL ssl3 record validate",
            Cell { v1: true, v4: true },
            Cell { v1: false, v4: true },
        ),
        (
            "OpenSSL MEE-CBC",
            Cell { v1: true, v4: true },
            Cell { v1: false, v4: true },
        ),
    ];
    assert_eq!(table.rows.len(), expect.len());
    for (row, (name, c, fact)) in table.rows.iter().zip(expect) {
        assert_eq!(row.name, name);
        assert_eq!(row.c, c, "{name} (C): got {:?}", row.c);
        assert_eq!(row.fact, fact, "{name} (FaCT): got {:?}", row.fact);
    }
    // The rendered table shows the paper's symbols.
    let text = table.to_string();
    assert!(text.contains("curve25519-donna"), "{text}");
    assert!(text.contains('✗'));
    assert!(text.contains('f'));
}

/// Every case study is sequentially constant-time — the violations the
/// detector finds are speculative-only, as in the paper (the case
/// studies were verified sequentially CT by FaCT's authors).
#[test]
fn case_studies_are_sequentially_constant_time() {
    for study in table2::all_studies() {
        let out = run_sequential(
            &study.program,
            study.config.clone(),
            Params::paper(),
            500_000,
        )
        .unwrap_or_else(|e| panic!("{} ({}): {e}", study.name, study.variant.name()));
        assert!(
            out.terminal,
            "{} ({}) did not run to completion",
            study.name,
            study.variant.name()
        );
        assert!(
            out.outcome.trace.is_public(),
            "{} ({}) leaks sequentially",
            study.name,
            study.variant.name()
        );
    }
}

/// The multi-threaded frontier reproduces Table 2 cell for cell: for
/// every strategy and threads ∈ {2, 4, 8}, the detection matrix equals
/// the serial one. Worker timing moves *when* each witness is found,
/// never *whether* — the parallel determinism contract at case-study
/// scale.
#[test]
fn parallel_exploration_reproduces_the_table2_matrix() {
    use pitchfork::StrategyKind;
    let baseline = table2::run(V1_BOUND, V4_BOUND);
    for strategy in StrategyKind::ALL {
        for threads in [2usize, 4, 8] {
            let table = table2::run_parallel(V1_BOUND, V4_BOUND, strategy, threads);
            for (row, base) in table.rows.iter().zip(baseline.rows.iter()) {
                assert_eq!(
                    (row.c, row.fact),
                    (base.c, base.fact),
                    "{} matrix cell differs at {} threads under `{}`",
                    row.name,
                    threads,
                    strategy.name()
                );
            }
        }
    }
}

/// Strategy equivalence on Table 2: the full detection matrix is
/// identical under every frontier order — the search strategy may
/// change how fast a witness is found, never whether one is found.
#[test]
fn every_strategy_reproduces_the_table2_matrix() {
    use pitchfork::StrategyKind;
    let baseline = table2::run(V1_BOUND, V4_BOUND);
    for strategy in StrategyKind::ALL {
        let table = table2::run_with_strategy(V1_BOUND, V4_BOUND, strategy);
        for (row, base) in table.rows.iter().zip(baseline.rows.iter()) {
            assert_eq!(
                (row.c, row.fact),
                (base.c, base.fact),
                "{} matrix cell differs under `{}`",
                row.name,
                strategy.name()
            );
        }
    }
}

/// Deduplication must not change any Table 2 verdict, only shrink the
/// exploration (drastically, in v4 mode — the seed's duplicate-blind
/// engine hit its state budget on half the builds).
#[test]
fn dedup_preserves_every_table2_verdict() {
    use pitchfork::{Detector, DetectorOptions};
    for study in table2::all_studies() {
        for (v4, bound) in [(false, V1_BOUND), (true, V4_BOUND)] {
            let mk = |dedup: bool| {
                if v4 {
                    DetectorOptions::v4_mode(bound)
                } else {
                    DetectorOptions::v1_mode(bound)
                }
                .dedup(dedup)
            };
            let on = Detector::new(mk(true)).analyze(&study.program, &study.config);
            let off = Detector::new(mk(false)).analyze(&study.program, &study.config);
            // A truncated run's verdict is budget-dependent (the
            // duplicate-blind engine exceeds its budget on some v4
            // builds); only complete explorations are comparable.
            if on.stats.truncated || off.stats.truncated {
                continue;
            }
            assert_eq!(
                on.has_violations(),
                off.has_violations(),
                "{} ({}) v4={v4}: dedup changed the verdict",
                study.name,
                study.variant.name()
            );
            assert!(
                on.stats.states <= off.stats.states,
                "{} ({}) v4={v4}: dedup explored more states",
                study.name,
                study.variant.name()
            );
        }
    }
}
