//! The paper's running example (Figure 1), used by doctests across the
//! workspace. The full figure corpus lives in the `sct-litmus` crate.

use crate::config::Config;
use crate::instr::{Instr, Operand, Program};
use crate::label::Label;
use crate::mem::Memory;
use crate::op::OpCode;
use crate::reg::names::*;
use crate::reg::RegFile;
use crate::value::Val;

/// The Spectre v1 gadget of Figure 1.
///
/// ```text
/// Registers: ra = 9pub
/// Memory:    40..43 array A (pub), 44..47 array B (pub), 48..4B Key (sec)
/// 1: br(>, (4, ra), 2, 4)     -- bounds check for A
/// 2: (rb = load([40, ra], 3))
/// 3: (rc = load([44, rb], 4))
/// ```
///
/// Under the schedule `fetch: true; fetch; fetch; execute 2; execute 3`
/// the machine reads `Key[1]` out of bounds and leaks it through the
/// second load's address.
pub fn fig1() -> (Program, Config) {
    let mut p = Program::new();
    p.entry = 1;
    p.insert(
        1,
        Instr::Br {
            op: OpCode::Gt,
            args: vec![Operand::imm(4), RA.into()],
            tru: 2,
            fls: 4,
        },
    );
    p.insert(
        2,
        Instr::Load {
            dst: RB,
            addr: vec![Operand::imm(0x40), RA.into()],
            next: 3,
        },
    );
    p.insert(
        3,
        Instr::Load {
            dst: RC,
            addr: vec![Operand::imm(0x44), RB.into()],
            next: 4,
        },
    );

    let regs: RegFile = [(RA, Val::public(9))].into_iter().collect();
    let mut mem = Memory::new();
    mem.write_array(0x40, &[1, 0, 2, 1], Label::Public); // array A
    mem.write_array(0x44, &[0, 3, 1, 2], Label::Public); // array B
    mem.write_array(0x48, &[0x11, 0x22, 0x33, 0x44], Label::Secret); // Key

    (p, Config::initial(regs, mem, 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directive::Directive::*;
    use crate::directive::Schedule;
    use crate::machine::Machine;
    use crate::observation::Observation;

    #[test]
    fn fig1_attack_trace_matches_paper() {
        let (p, cfg) = fig1();
        let mut m = Machine::new(&p, cfg);
        let sched: Schedule = [FetchBranch(true), Fetch, Fetch, Execute(2), Execute(3)]
            .into_iter()
            .collect();
        let out = m.run(&sched).unwrap();
        // execute 2 → read 0x49 (pub address), loads Key[1] = 0x22 (sec).
        // execute 3 → read (0x44 + 0x22) with a secret-labeled address.
        assert_eq!(
            out.trace.0,
            vec![
                Observation::Read {
                    addr: 0x49,
                    label: Label::Public
                },
                Observation::Read {
                    addr: 0x44 + 0x22,
                    label: Label::Secret
                },
            ]
        );
    }

    #[test]
    fn fig1_is_sequentially_silent_about_secrets() {
        let (p, cfg) = fig1();
        let out = crate::sched::sequential::run_sequential(
            &p,
            cfg,
            crate::params::Params::paper(),
            1_000,
        )
        .unwrap();
        assert!(out.outcome.trace.is_public());
    }
}
