//! Machine parameters: the abstract operations the paper leaves open.
//!
//! §3.4 leaves the address-calculation operator `addr` abstract ("to model
//! a large variety of architectures"); Appendix A leaves the stack
//! discipline (`succ`/`pred`) and the empty-RSB policy open. All three are
//! configuration knobs here, and each has an ablation bench.

use crate::label::Label;
use crate::value::{Val, Word};

/// The address-calculation operator `Jaddr(v⃗)K`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum AddrMode {
    /// `Jaddr(v⃗)K = Σ v_i` — the "simple addressing mode" used by every
    /// figure in the paper.
    #[default]
    Sum,
    /// x86-style `Jaddr([v1, v2, v3])K = v1 + v2·v3` (base + index·scale);
    /// with fewer than three operands the missing scale defaults to 1.
    X86,
}

impl AddrMode {
    /// Compute the target address and its label (`ℓa = ⊔ ℓ⃗`).
    pub fn eval(self, args: &[Val]) -> Val {
        let label = Label::join_all(args.iter().map(|v| v.label));
        let bits: Word = match self {
            AddrMode::Sum => args.iter().fold(0u64, |acc, v| acc.wrapping_add(v.bits)),
            AddrMode::X86 => match args {
                [] => 0,
                [v1] => v1.bits,
                [v1, v2] => v1.bits.wrapping_add(v2.bits),
                [v1, v2, v3, ..] => v1.bits.wrapping_add(v2.bits.wrapping_mul(v3.bits)),
            },
        };
        Val::new(bits, label)
    }
}

/// The stack discipline used by `call`/`ret` (Appendix A): the abstract
/// `succ` moves `rsp` to a fresh slot, `pred` undoes it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StackDiscipline {
    /// Downward-growing stack (x86-like): `succ(rsp) = rsp - word`,
    /// `pred(rsp) = rsp + word`.
    GrowsDown {
        /// Stack slot size in address units.
        word: Word,
    },
    /// Upward-growing stack: `succ(rsp) = rsp + word`.
    GrowsUp {
        /// Stack slot size in address units.
        word: Word,
    },
}

impl Default for StackDiscipline {
    fn default() -> Self {
        // The paper's Figure 13 uses byte-addressed slots one word apart
        // (7C → 7B); a 1-unit downward stack reproduces its traces exactly.
        StackDiscipline::GrowsDown { word: 1 }
    }
}

impl StackDiscipline {
    /// `op(succ, rsp)`.
    pub fn succ(self, rsp: Word) -> Word {
        match self {
            StackDiscipline::GrowsDown { word } => rsp.wrapping_sub(word),
            StackDiscipline::GrowsUp { word } => rsp.wrapping_add(word),
        }
    }

    /// `op(pred, rsp)`.
    pub fn pred(self, rsp: Word) -> Word {
        match self {
            StackDiscipline::GrowsDown { word } => rsp.wrapping_add(word),
            StackDiscipline::GrowsUp { word } => rsp.wrapping_sub(word),
        }
    }
}

/// What `top(σ)` yields when the return stack buffer is empty
/// (Appendix A surveys three real processor behaviours).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum RsbPolicy {
    /// The attacker supplies the prediction via `fetch: n'`
    /// (Intel Skylake/Broadwell fall back to the branch-target predictor,
    /// which the attacker can train arbitrarily). This is the paper's
    /// default rule `ret-fetch-rsb-empty`.
    #[default]
    AttackerChoice,
    /// AMD-style: refuse to speculate past an empty RSB — fetching the
    /// `ret` blocks until retirement catches up (the fetch directive is
    /// simply not applicable).
    Refuse,
    /// "Most" Intel: circular buffer; an empty RSB yields whatever stale
    /// value the buffer holds — modeled as a fixed junk program point.
    Circular {
        /// The stale program point an underflow produces.
        stale: Word,
    },
}

/// All machine parameters bundled.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Params {
    /// Address-calculation mode.
    pub addr_mode: AddrMode,
    /// Stack discipline for `call`/`ret`.
    pub stack: StackDiscipline,
    /// Empty-RSB behaviour.
    pub rsb_policy: RsbPolicy,
    /// Optional reorder-buffer capacity; `None` means unbounded. The
    /// Pitchfork speculation bound (§4.1) is enforced by its scheduler,
    /// but a hard capacity is useful for the machine-throughput benches.
    pub rob_capacity: Option<usize>,
}

impl Params {
    /// Parameters matching the paper's figures (sum addressing, 1-unit
    /// downward stack, attacker-controlled empty-RSB prediction).
    pub fn paper() -> Self {
        Params::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: Word) -> Val {
        Val::public(x)
    }

    #[test]
    fn sum_mode_adds_all_operands() {
        // Figure 1: Jaddr([40, ra])K with ra = 9 is 49.
        assert_eq!(AddrMode::Sum.eval(&[p(0x40), p(9)]).bits, 0x49);
        assert_eq!(AddrMode::Sum.eval(&[]).bits, 0);
    }

    #[test]
    fn x86_mode_uses_base_index_scale() {
        assert_eq!(AddrMode::X86.eval(&[p(100), p(3), p(8)]).bits, 124);
        assert_eq!(AddrMode::X86.eval(&[p(100), p(3)]).bits, 103);
        assert_eq!(AddrMode::X86.eval(&[p(100)]).bits, 100);
    }

    #[test]
    fn address_label_joins_operands() {
        let a = AddrMode::Sum.eval(&[p(0x40), Val::secret(1)]);
        assert!(a.label.is_secret());
    }

    #[test]
    fn stack_succ_pred_are_inverses() {
        for d in [
            StackDiscipline::GrowsDown { word: 1 },
            StackDiscipline::GrowsDown { word: 8 },
            StackDiscipline::GrowsUp { word: 4 },
        ] {
            assert_eq!(d.pred(d.succ(0x1000)), 0x1000);
        }
    }

    #[test]
    fn figure13_stack_step() {
        let d = StackDiscipline::default();
        assert_eq!(d.succ(0x7C), 0x7B);
        assert_eq!(d.pred(0x7B), 0x7C);
    }
}
