//! Speculative constant-time (Definition 3.1) and executable checkers.
//!
//! The relational definition — low-equivalent configurations produce the
//! same observation trace under every schedule — is checked here in two
//! complementary ways:
//!
//! * **label-based** (what Pitchfork does): run a schedule once and flag
//!   any observation carrying a secret label. By the taint-propagation
//!   discipline of the semantics this is a sound over-approximation: a
//!   trace with no secret-labeled observation is identical for every
//!   low-equivalent sibling.
//! * **relational sampling**: actually run low-equivalent siblings with
//!   the secrets re-randomized and compare traces directive by directive.
//!   This is the ground truth the property tests validate the label-based
//!   checker against.

use crate::config::Config;
use crate::directive::Schedule;
use crate::error::ScheduleError;
use crate::instr::Program;
use crate::machine::Machine;
use crate::observation::{Observation, Trace};
use crate::params::Params;
use crate::value::Val;
use rand::Rng;
use std::fmt;

/// A speculative constant-time violation witness.
#[derive(Clone, Debug)]
pub enum SctViolation {
    /// An observation carried a secret label (Corollary B.10 witness).
    SecretObservation {
        /// The schedule under which it occurred.
        schedule: Schedule,
        /// The first secret-labeled observation.
        observation: Observation,
        /// Position in the trace.
        position: usize,
    },
    /// Two low-equivalent configurations produced different traces under
    /// the same schedule (direct Definition 3.1 counterexample).
    TraceDivergence {
        /// The schedule under which the traces diverged.
        schedule: Schedule,
        /// Trace of the original configuration.
        left: Trace,
        /// Trace of the secrets-mutated sibling.
        right: Trace,
    },
    /// The schedule was well-formed for one configuration but not its
    /// low-equivalent sibling — itself distinguishing (the big steps of
    /// Definition 3.1 must both exist).
    WellFormednessDivergence {
        /// The schedule in question.
        schedule: Schedule,
        /// The error the sibling ran into.
        error: ScheduleError,
    },
}

impl fmt::Display for SctViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SctViolation::SecretObservation {
                observation,
                position,
                ..
            } => write!(
                f,
                "secret-labeled observation `{observation}` at trace position {position}"
            ),
            SctViolation::TraceDivergence { left, right, .. } => write!(
                f,
                "trace divergence between low-equivalent runs:\n  left:  {left}\n  right: {right}"
            ),
            SctViolation::WellFormednessDivergence { error, .. } => write!(
                f,
                "schedule well-formed for one configuration but not its sibling: {error}"
            ),
        }
    }
}

/// Run `schedule` from `config` and return the first secret-labeled
/// observation as a violation, if any.
///
/// # Errors
///
/// Propagates [`ScheduleError`] when the schedule is not well-formed for
/// `config`.
pub fn check_schedule_label_based(
    program: &Program,
    config: Config,
    params: Params,
    schedule: &Schedule,
) -> Result<Option<SctViolation>, ScheduleError> {
    let mut m = Machine::with_params(program, config, params);
    let out = m.run(schedule)?;
    let hit = out
        .trace
        .iter()
        .enumerate()
        .find(|(_, o)| o.is_secret());
    Ok(hit.map(|(position, observation)| SctViolation::SecretObservation {
        schedule: schedule.clone(),
        observation,
        position,
    }))
}

/// Produce a low-equivalent sibling of `config` by re-randomizing the
/// bits of every secret-labeled register and memory cell.
///
/// The result satisfies `config ≃pub sibling` by construction.
pub fn mutate_secrets<R: Rng>(config: &Config, rng: &mut R) -> Config {
    let mut sibling = config.clone();
    let reg_updates: Vec<_> = config
        .regs
        .iter()
        .filter(|(_, v)| v.label.is_secret())
        .map(|(r, v)| (r, Val::new(rng.gen::<u64>(), v.label)))
        .collect();
    for (r, v) in reg_updates {
        sibling.regs.write(r, v);
    }
    let mem_updates: Vec<_> = config
        .mem
        .iter()
        .filter(|(_, v)| v.label.is_secret())
        .map(|(a, v)| (a, Val::new(rng.gen::<u64>(), v.label)))
        .collect();
    for (a, v) in mem_updates {
        sibling.mem.write(a, v);
    }
    debug_assert!(config.low_equivalent(&sibling));
    sibling
}

/// Like [`mutate_secrets`], but keeps secret values inside `0..bound` —
/// useful when secret data must stay within a modeled address space.
pub fn mutate_secrets_bounded<R: Rng>(config: &Config, bound: u64, rng: &mut R) -> Config {
    let mut sibling = config.clone();
    let reg_updates: Vec<_> = config
        .regs
        .iter()
        .filter(|(_, v)| v.label.is_secret())
        .map(|(r, v)| (r, Val::new(rng.gen_range(0..bound), v.label)))
        .collect();
    for (r, v) in reg_updates {
        sibling.regs.write(r, v);
    }
    let mem_updates: Vec<_> = config
        .mem
        .iter()
        .filter(|(_, v)| v.label.is_secret())
        .map(|(a, v)| (a, Val::new(rng.gen_range(0..bound), v.label)))
        .collect();
    for (a, v) in mem_updates {
        sibling.mem.write(a, v);
    }
    sibling
}

/// Relationally check one schedule against `samples` secrets-mutated
/// siblings (Definition 3.1, sampled).
///
/// # Errors
///
/// Propagates [`ScheduleError`] when the schedule is not well-formed for
/// the *original* configuration (callers normally obtain schedules from a
/// scheduler, so this indicates a bug).
pub fn check_schedule_relational<R: Rng>(
    program: &Program,
    config: Config,
    params: Params,
    schedule: &Schedule,
    samples: usize,
    rng: &mut R,
) -> Result<Option<SctViolation>, ScheduleError> {
    check_schedule_relational_with(program, config, params, schedule, samples, |c| {
        mutate_secrets(c, rng)
    })
}

/// Like [`check_schedule_relational`], but with a caller-supplied
/// low-equivalent sibling generator — useful when secrets need to stay
/// in a small range for a 1-bit leak to actually flip (e.g. a branch on
/// `secret == 0`).
///
/// # Errors
///
/// As for [`check_schedule_relational`].
pub fn check_schedule_relational_with(
    program: &Program,
    config: Config,
    params: Params,
    schedule: &Schedule,
    samples: usize,
    mut sibling_of: impl FnMut(&Config) -> Config,
) -> Result<Option<SctViolation>, ScheduleError> {
    let mut m = Machine::with_params(program, config.clone(), params);
    let base = m.run(schedule)?;
    for _ in 0..samples {
        let sibling = sibling_of(&config);
        debug_assert!(config.low_equivalent(&sibling));
        let mut ms = Machine::with_params(program, sibling, params);
        match ms.run(schedule) {
            Ok(out) => {
                if out.trace != base.trace {
                    return Ok(Some(SctViolation::TraceDivergence {
                        schedule: schedule.clone(),
                        left: base.trace,
                        right: out.trace,
                    }));
                }
            }
            Err(error) => {
                return Ok(Some(SctViolation::WellFormednessDivergence {
                    schedule: schedule.clone(),
                    error,
                }))
            }
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directive::Directive::*;
    use crate::examples::fig1;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn v1_schedule() -> Schedule {
        [FetchBranch(true), Fetch, Fetch, Execute(2), Execute(3)]
            .into_iter()
            .collect()
    }

    #[test]
    fn label_checker_flags_fig1() {
        let (p, cfg) = fig1();
        let v = check_schedule_label_based(&p, cfg, Params::paper(), &v1_schedule())
            .unwrap()
            .expect("Figure 1 violates SCT");
        match v {
            SctViolation::SecretObservation { position, .. } => assert_eq!(position, 1),
            other => panic!("unexpected violation {other:?}"),
        }
    }

    #[test]
    fn relational_checker_flags_fig1() {
        let (p, cfg) = fig1();
        let mut rng = SmallRng::seed_from_u64(1);
        let v = check_schedule_relational(&p, cfg, Params::paper(), &v1_schedule(), 8, &mut rng)
            .unwrap();
        assert!(
            matches!(v, Some(SctViolation::TraceDivergence { .. })),
            "differing secrets must produce differing traces: {v:?}"
        );
    }

    #[test]
    fn sequential_prefix_is_clean_both_ways() {
        let (p, cfg) = fig1();
        // The correct (false) prediction leads to immediate termination.
        let sched: Schedule = [FetchBranch(false), Execute(1), Retire].into_iter().collect();
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(
            check_schedule_label_based(&p, cfg.clone(), Params::paper(), &sched)
                .unwrap()
                .is_none()
        );
        assert!(
            check_schedule_relational(&p, cfg, Params::paper(), &sched, 8, &mut rng)
                .unwrap()
                .is_none()
        );
    }

    #[test]
    fn mutate_secrets_preserves_low_equivalence() {
        let (_, cfg) = fig1();
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10 {
            let sib = mutate_secrets(&cfg, &mut rng);
            assert!(cfg.low_equivalent(&sib));
        }
        let sib = mutate_secrets_bounded(&cfg, 4, &mut rng);
        assert!(cfg.low_equivalent(&sib));
        for (_, v) in sib.mem.iter().filter(|(_, v)| v.label.is_secret()) {
            assert!(v.bits < 4);
        }
    }
}
