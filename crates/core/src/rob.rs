//! The reorder buffer (`buf : N ⇀ TransInstr`).
//!
//! The paper's rules maintain the invariant that `buf`'s domain is a
//! contiguous range of naturals: `fetch` appends at `MAX(buf) + 1`,
//! `retire` removes `MIN(buf)`, and rollbacks truncate a suffix. We
//! represent the buffer as a base index plus a deque, giving O(1) access
//! by absolute index while preserving the paper's indexing scheme
//! (indices keep growing over the life of an execution and are never
//! reused, which is what makes load provenance `{j, a}` unambiguous).

use crate::transient::Transient;
use std::collections::VecDeque;
use std::fmt;

/// The reorder buffer, generic in its entry type so that the symbolic
/// machine of the `pitchfork` crate can reuse it with symbolic transient
/// instructions. Bare `Rob` is the concrete buffer of the reference
/// semantics.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Rob<T = Transient> {
    base: usize,
    entries: VecDeque<T>,
}

impl<T> Default for Rob<T> {
    fn default() -> Self {
        Rob::new()
    }
}

impl<T> Rob<T> {
    /// An empty buffer. The paper sets `MIN(∅) = MAX(∅) = 0`, so the first
    /// fetched instruction lands at index `MAX + 1 = 1`, matching every
    /// figure.
    pub fn new() -> Self {
        Rob {
            base: 1,
            entries: VecDeque::new(),
        }
    }

    /// An empty buffer whose next fetch lands at `next`. Used to
    /// reconstruct the mid-execution buffer states shown in the figures.
    pub fn starting_at(next: usize) -> Self {
        Rob {
            base: next,
            entries: VecDeque::new(),
        }
    }

    /// `MIN(buf)`; `None` when empty.
    pub fn min(&self) -> Option<usize> {
        if self.entries.is_empty() {
            None
        } else {
            Some(self.base)
        }
    }

    /// `MAX(buf)`; `None` when empty.
    pub fn max(&self) -> Option<usize> {
        if self.entries.is_empty() {
            None
        } else {
            Some(self.base + self.entries.len() - 1)
        }
    }

    /// The index the next fetched instruction will occupy
    /// (`MAX(buf) + 1`, or the base for an empty buffer).
    pub fn next_index(&self) -> usize {
        self.base + self.entries.len()
    }

    /// Number of in-flight transient instructions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no instruction is in flight (the paper's
    /// initial/terminal configurations).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `buf(i)`.
    pub fn get(&self, i: usize) -> Option<&T> {
        i.checked_sub(self.base).and_then(|k| self.entries.get(k))
    }

    /// Replace `buf(i)` with a new transient instruction
    /// (`buf[i ↦ instr]` over an existing index).
    ///
    /// # Panics
    ///
    /// Panics if `i` is not in the buffer's domain; the step rules only
    /// rewrite existing entries.
    pub fn set(&mut self, i: usize, instr: T) {
        let k = i
            .checked_sub(self.base)
            .filter(|&k| k < self.entries.len())
            .unwrap_or_else(|| panic!("rob index {i} out of domain"));
        self.entries[k] = instr;
    }

    /// Append at `MAX(buf) + 1`, returning the new index.
    pub fn push(&mut self, instr: T) -> usize {
        self.entries.push_back(instr);
        self.base + self.entries.len() - 1
    }

    /// Remove `MIN(buf)` (`buf \ buf(i)` in the retire rules), returning
    /// the retired instruction.
    pub fn pop_min(&mut self) -> Option<T> {
        let head = self.entries.pop_front();
        if head.is_some() {
            self.base += 1;
        }
        head
    }

    /// Remove the `count` oldest entries at once (`buf[j : j > i + k]` in
    /// the call/ret retire rules).
    pub fn pop_min_n(&mut self, count: usize) {
        for _ in 0..count {
            if self.pop_min().is_none() {
                break;
            }
        }
    }

    /// `buf[j : j < cut]` — discard every entry at index `≥ cut`
    /// (rollback). Returns how many entries were discarded.
    pub fn truncate_from(&mut self, cut: usize) -> usize {
        if cut <= self.base {
            let n = self.entries.len();
            self.entries.clear();
            // Keep `next_index` at the cut so indices stay monotone.
            self.base = self.base.max(cut);
            return n;
        }
        let keep = cut - self.base;
        if keep >= self.entries.len() {
            return 0;
        }
        let dropped = self.entries.len() - keep;
        self.entries.truncate(keep);
        dropped
    }

    /// Iterate `(index, entry)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &T)> + '_ {
        self.entries
            .iter()
            .enumerate()
            .map(move |(k, t)| (self.base + k, t))
    }

    /// Iterate entries strictly below index `i`, in index order.
    pub fn iter_below(&self, i: usize) -> impl Iterator<Item = (usize, &T)> + '_ {
        self.iter().take_while(move |&(j, _)| j < i)
    }

    /// Iterate entries strictly above index `i`, in index order.
    pub fn iter_above(&self, i: usize) -> impl Iterator<Item = (usize, &T)> + '_ {
        self.iter().skip_while(move |&(j, _)| j <= i)
    }

}

impl Rob<Transient> {
    /// `∀ j < i : buf(j) ≠ fence` — the side condition on every execute
    /// rule (§3.6).
    pub fn no_fence_below(&self, i: usize) -> bool {
        self.iter_below(i).all(|(_, t)| !t.is_fence())
    }
}

impl<T: fmt::Display> fmt::Display for Rob<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "i    buf(i)")?;
        for (i, t) in self.iter() {
            writeln!(f, "{i}    {t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::names::*;
    use crate::value::Val;

    fn val(i: u64) -> Transient {
        Transient::Value {
            dst: RA,
            val: Val::public(i),
        }
    }

    #[test]
    fn first_fetch_lands_at_index_one() {
        let mut rob = Rob::new();
        assert_eq!(rob.next_index(), 1);
        assert_eq!(rob.push(val(0)), 1);
        assert_eq!(rob.min(), Some(1));
        assert_eq!(rob.max(), Some(1));
    }

    #[test]
    fn indices_are_contiguous_and_monotone() {
        let mut rob = Rob::new();
        for i in 0..5 {
            assert_eq!(rob.push(val(i)), 1 + i as usize);
        }
        assert_eq!(rob.len(), 5);
        rob.pop_min();
        rob.pop_min();
        assert_eq!(rob.min(), Some(3));
        assert_eq!(rob.max(), Some(5));
        assert_eq!(rob.push(val(9)), 6);
        let idx: Vec<usize> = rob.iter().map(|(i, _)| i).collect();
        assert_eq!(idx, vec![3, 4, 5, 6]);
    }

    #[test]
    fn get_and_set_by_absolute_index() {
        let mut rob = Rob::new();
        rob.push(val(0));
        rob.push(val(1));
        rob.pop_min();
        assert!(rob.get(1).is_none());
        assert!(rob.get(2).is_some());
        rob.set(2, val(42));
        match rob.get(2) {
            Some(Transient::Value { val: v, .. }) => assert_eq!(v.bits, 42),
            other => panic!("unexpected entry {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "out of domain")]
    fn set_out_of_domain_panics() {
        let mut rob = Rob::new();
        rob.push(val(0));
        rob.set(5, val(1));
    }

    #[test]
    fn truncate_from_discards_suffix() {
        let mut rob = Rob::new();
        for i in 0..5 {
            rob.push(val(i));
        }
        // Domain {1..5}; rollback at 3 keeps {1, 2}.
        assert_eq!(rob.truncate_from(3), 3);
        assert_eq!(rob.max(), Some(2));
        assert_eq!(rob.next_index(), 3);
        // Truncating everything leaves an empty buffer whose next index
        // is still past the old base.
        assert_eq!(rob.truncate_from(1), 2);
        assert!(rob.is_empty());
        assert_eq!(rob.next_index(), 1);
    }

    #[test]
    fn truncate_beyond_max_is_noop() {
        let mut rob = Rob::new();
        rob.push(val(0));
        assert_eq!(rob.truncate_from(10), 0);
        assert_eq!(rob.len(), 1);
    }

    #[test]
    fn no_fence_below_checks_prefix_only() {
        let mut rob = Rob::new();
        rob.push(val(0)); // 1
        rob.push(Transient::Fence); // 2
        rob.push(val(1)); // 3
        assert!(rob.no_fence_below(2));
        assert!(!rob.no_fence_below(3));
        assert!(rob.no_fence_below(1));
    }

    #[test]
    fn pop_min_n_retires_groups() {
        let mut rob = Rob::new();
        for i in 0..4 {
            rob.push(val(i));
        }
        rob.pop_min_n(3);
        assert_eq!(rob.min(), Some(4));
        rob.pop_min_n(10);
        assert!(rob.is_empty());
    }

    #[test]
    fn starting_at_reconstructs_figure_states() {
        let mut rob = Rob::starting_at(2);
        assert_eq!(rob.push(val(0)), 2);
    }
}
