//! The speculative machine: a configuration paired with a program, driven
//! by attacker directives (`C ↪→ᵈₒ C'`).

use crate::config::Config;
use crate::directive::{Directive, Schedule};
use crate::error::{ScheduleError, StepError};
use crate::instr::Program;
use crate::label::Label;
use crate::observation::{Observation, Trace};
use crate::op::{self, OpCode};
use crate::params::Params;
use crate::resolve::{resolve_operand, resolve_operands, Resolved};
use crate::value::Val;

/// The outcome of one small step: the observations it emitted (0–2).
pub type StepObs = Vec<Observation>;

/// Outcome of running a whole schedule: the big step `C ⇓ᴰ_O^N C'`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RunOutcome {
    /// The observation trace `O`.
    pub trace: Trace,
    /// The number of retired instructions `N` (retire directives that
    /// succeeded).
    pub retired: usize,
}

/// A machine: program, parameters, and current configuration.
///
/// # Examples
///
/// Running the Spectre v1 gadget of Figure 1 under the attack schedule:
///
/// ```
/// use sct_core::examples::fig1;
/// use sct_core::directive::Directive::*;
///
/// let (program, config) = fig1();
/// let mut m = sct_core::machine::Machine::new(&program, config);
/// m.step(FetchBranch(true)).unwrap();
/// m.step(Fetch).unwrap();
/// m.step(Fetch).unwrap();
/// m.step(Execute(2)).unwrap(); // read 0x49pub
/// let leak = m.step(Execute(3)).unwrap(); // read (Key[1] + 0x44)sec
/// assert!(leak.iter().any(|o| o.is_secret()));
/// ```
#[derive(Clone, Debug)]
pub struct Machine<'p> {
    /// The immutable program (instruction space).
    pub program: &'p Program,
    /// Machine parameters (addressing mode, stack discipline, ...).
    pub params: Params,
    /// The current configuration.
    pub cfg: Config,
}

impl<'p> Machine<'p> {
    /// A machine over `program` starting from `config`, with default
    /// (paper) parameters.
    pub fn new(program: &'p Program, config: Config) -> Self {
        Machine {
            program,
            params: Params::paper(),
            cfg: config,
        }
    }

    /// A machine with explicit parameters.
    pub fn with_params(program: &'p Program, config: Config, params: Params) -> Self {
        Machine {
            program,
            params,
            cfg: config,
        }
    }

    /// Perform one small step under `directive`.
    ///
    /// # Errors
    ///
    /// Returns a [`StepError`] when no rule of the semantics applies; the
    /// configuration is left unchanged in that case.
    pub fn step(&mut self, directive: Directive) -> Result<StepObs, StepError> {
        match directive {
            Directive::Fetch | Directive::FetchBranch(_) | Directive::FetchJump(_) => {
                self.fetch(directive)
            }
            Directive::Execute(i) => self.execute(i),
            Directive::ExecuteValue(i) => self.execute_store_value(i),
            Directive::ExecuteAddr(i) => self.execute_store_addr(i),
            Directive::ExecuteFwd(i, j) => self.execute_forward_guess(i, j),
            Directive::Retire => self.retire(),
        }
    }

    /// Run a fixed schedule to completion, producing the big-step outcome.
    ///
    /// # Errors
    ///
    /// Fails with a [`ScheduleError`] identifying the first directive with
    /// no applicable rule (the schedule is then not well-formed).
    pub fn run(&mut self, schedule: &Schedule) -> Result<RunOutcome, ScheduleError> {
        let mut trace = Trace::new();
        let mut retired = 0;
        for (at, d) in schedule.iter().enumerate() {
            match self.step(d) {
                Ok(obs) => {
                    if matches!(d, Directive::Retire) {
                        retired += 1;
                    }
                    trace.extend_step(obs);
                }
                Err(error) => {
                    return Err(ScheduleError {
                        at,
                        directive: d,
                        error,
                    })
                }
            }
        }
        Ok(RunOutcome { trace, retired })
    }

    /// Evaluate an opcode, routing the abstract `succ`/`pred`/`addr`
    /// operations through the machine parameters.
    pub(crate) fn eval_op(&self, opcode: OpCode, args: &[Val]) -> Result<Val, StepError> {
        match opcode {
            OpCode::Succ | OpCode::Pred => {
                if args.len() != 1 {
                    return Err(op::EvalError::Arity {
                        op: opcode,
                        got: args.len(),
                    }
                    .into());
                }
                let v = args[0];
                let bits = if opcode == OpCode::Succ {
                    self.params.stack.succ(v.bits)
                } else {
                    self.params.stack.pred(v.bits)
                };
                Ok(Val::new(bits, v.label))
            }
            OpCode::Addr => Ok(self.params.addr_mode.eval(args)),
            _ => Ok(op::eval(opcode, args)?),
        }
    }

    /// `Jaddr(v⃗ℓ)K` with `ℓa = ⊔ ℓ⃗`.
    pub(crate) fn eval_addr(&self, args: &[Val]) -> Val {
        self.params.addr_mode.eval(args)
    }

    /// Resolve one operand at buffer index `i`, mapping `⊥` to
    /// [`StepError::OperandsPending`].
    pub(crate) fn resolve1(
        &self,
        i: usize,
        opnd: &crate::instr::Operand,
    ) -> Result<Val, StepError> {
        match resolve_operand(&self.cfg.rob, &self.cfg.regs, i, opnd) {
            Resolved::Val(v) => Ok(v),
            Resolved::Pending => Err(StepError::OperandsPending { index: i }),
        }
    }

    /// Resolve an operand list at buffer index `i`.
    pub(crate) fn resolve_list(
        &self,
        i: usize,
        ops: &[crate::instr::Operand],
    ) -> Result<Vec<Val>, StepError> {
        resolve_operands(&self.cfg.rob, &self.cfg.regs, i, ops)
            .ok_or(StepError::OperandsPending { index: i })
    }

    /// The execute-stage fence side condition `∀ j < i : buf(j) ≠ fence`.
    pub(crate) fn check_no_fence_below(&self, i: usize) -> Result<(), StepError> {
        if self.cfg.rob.no_fence_below(i) {
            Ok(())
        } else {
            Err(StepError::FenceBlocked { index: i })
        }
    }

    /// Roll back the reorder buffer *and* the RSB from index `cut`,
    /// redirecting the program point to `new_pc`.
    pub(crate) fn rollback(&mut self, cut: usize, new_pc: crate::value::Pc) {
        self.cfg.rob.truncate_from(cut);
        self.cfg.rsb.truncate_from(cut);
        self.cfg.pc = new_pc;
    }

    /// Helper building a `jump` observation.
    pub(crate) fn obs_jump(target: crate::value::Pc, label: Label) -> Observation {
        Observation::Jump { target, label }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Instr;
    use crate::reg::names::*;

    #[test]
    fn run_reports_failing_directive() {
        let mut p = Program::new();
        p.entry = 1;
        p.insert(
            1,
            Instr::Op {
                dst: RA,
                op: OpCode::Add,
                args: vec![crate::instr::Operand::imm(1)],
                next: 2,
            },
        );
        let cfg = Config::initial(Default::default(), Default::default(), 1);
        let mut m = Machine::new(&p, cfg);
        let sched: Schedule = [Directive::Fetch, Directive::Fetch].into_iter().collect();
        let err = m.run(&sched).unwrap_err();
        assert_eq!(err.at, 1);
        assert_eq!(err.error, StepError::NoInstruction(2));
    }

    #[test]
    fn eval_op_uses_stack_params() {
        let p = Program::new();
        let cfg = Config::initial(Default::default(), Default::default(), 0);
        let mut params = Params::paper();
        params.stack = crate::params::StackDiscipline::GrowsUp { word: 4 };
        let m = Machine::with_params(&p, cfg, params);
        let v = m.eval_op(OpCode::Succ, &[Val::public(100)]).unwrap();
        assert_eq!(v.bits, 104);
        let v = m.eval_op(OpCode::Pred, &[Val::public(104)]).unwrap();
        assert_eq!(v.bits, 100);
    }

    #[test]
    fn eval_op_addr_uses_addr_mode() {
        let p = Program::new();
        let cfg = Config::initial(Default::default(), Default::default(), 0);
        let m = Machine::new(&p, cfg);
        let v = m
            .eval_op(OpCode::Addr, &[Val::public(12), Val::public(8)])
            .unwrap();
        assert_eq!(v.bits, 20);
    }
}
