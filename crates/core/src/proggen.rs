//! Random well-formed program generation, for fuzzing the metatheory.
//!
//! Generated programs are forward-only (branch targets always point
//! later), so *every* speculative execution terminates: even mispredicted
//! paths only fetch forward until they run off the program. Loads and
//! stores address a small window so that store-forwarding and hazards
//! actually happen.

use crate::config::Config;
use crate::instr::{Instr, Operand, Program};
use crate::label::Label;
use crate::mem::Memory;
use crate::op::OpCode;
use crate::reg::{Reg, RegFile};
use crate::value::{Pc, Val};
use rand::Rng;

/// Tuning knobs for the generator.
#[derive(Clone, Copy, Debug)]
pub struct ProgGenOptions {
    /// Number of instructions.
    pub len: usize,
    /// Number of general-purpose registers in play.
    pub regs: u16,
    /// Base of the data window.
    pub mem_base: u64,
    /// Size of the data window (secret half lives at the top).
    pub mem_size: u64,
    /// Percentage (0–100) of memory instructions.
    pub mem_ratio: u8,
    /// Percentage (0–100) of branches.
    pub branch_ratio: u8,
    /// Percentage (0–100) of fences.
    pub fence_ratio: u8,
}

impl Default for ProgGenOptions {
    fn default() -> Self {
        ProgGenOptions {
            len: 12,
            regs: 4,
            mem_base: 0x40,
            mem_size: 16,
            mem_ratio: 40,
            branch_ratio: 20,
            fence_ratio: 5,
        }
    }
}

fn random_reg<R: Rng>(rng: &mut R, opts: &ProgGenOptions) -> Reg {
    Reg::gpr(rng.gen_range(0..opts.regs))
}

fn random_operand<R: Rng>(rng: &mut R, opts: &ProgGenOptions) -> Operand {
    if rng.gen_bool(0.5) {
        Operand::Reg(random_reg(rng, opts))
    } else {
        Operand::imm(rng.gen_range(0..8))
    }
}

/// Address operands of the form `[base + small, reg & mask]`: register
/// contents are masked into the window by construction of the initial
/// state, so collisions (forwarding opportunities) are frequent.
fn random_addr_ops<R: Rng>(rng: &mut R, opts: &ProgGenOptions) -> Vec<Operand> {
    let off = rng.gen_range(0..opts.mem_size);
    if rng.gen_bool(0.6) {
        vec![Operand::imm(opts.mem_base + off)]
    } else {
        vec![
            Operand::imm(opts.mem_base),
            Operand::Reg(random_reg(rng, opts)),
        ]
    }
}

const BOOL_OPS: [OpCode; 6] = [
    OpCode::Eq,
    OpCode::Ne,
    OpCode::Lt,
    OpCode::Le,
    OpCode::Gt,
    OpCode::Ge,
];

const ARITH_OPS: [OpCode; 7] = [
    OpCode::Add,
    OpCode::Sub,
    OpCode::Mul,
    OpCode::And,
    OpCode::Or,
    OpCode::Xor,
    OpCode::Mov,
];

/// Generate a random forward-only program with entry point 1 and
/// program points `1..=len`.
pub fn random_program<R: Rng>(rng: &mut R, opts: &ProgGenOptions) -> Program {
    let mut p = Program::new();
    p.entry = 1;
    let len = opts.len.max(1) as Pc;
    for n in 1..=len {
        let next = n + 1;
        let roll: u8 = rng.gen_range(0..100);
        let instr = if roll < opts.fence_ratio {
            Instr::Fence { next }
        } else if roll < opts.fence_ratio + opts.branch_ratio && n + 1 < len {
            // Forward branch: both targets strictly later.
            let tru = rng.gen_range(n + 1..=len + 1);
            let fls = rng.gen_range(n + 1..=len + 1);
            Instr::Br {
                op: BOOL_OPS[rng.gen_range(0..BOOL_OPS.len())],
                args: vec![
                    random_operand(rng, opts),
                    Operand::Reg(random_reg(rng, opts)),
                ],
                tru,
                fls,
            }
        } else if roll < opts.fence_ratio + opts.branch_ratio + opts.mem_ratio {
            if rng.gen_bool(0.5) {
                Instr::Load {
                    dst: random_reg(rng, opts),
                    addr: random_addr_ops(rng, opts),
                    next,
                }
            } else {
                Instr::Store {
                    src: random_operand(rng, opts),
                    addr: random_addr_ops(rng, opts),
                    next,
                }
            }
        } else {
            let op = ARITH_OPS[rng.gen_range(0..ARITH_OPS.len())];
            let args = match op.arity() {
                Some(1) => vec![random_operand(rng, opts)],
                _ => vec![random_operand(rng, opts), random_operand(rng, opts)],
            };
            Instr::Op {
                dst: random_reg(rng, opts),
                op,
                args,
                next,
            }
        };
        p.insert(n, instr);
    }
    p
}

/// An initial configuration for a generated program: registers hold small
/// window offsets; the lower half of the data window is public, the upper
/// half secret.
pub fn random_config<R: Rng>(rng: &mut R, opts: &ProgGenOptions) -> Config {
    let mut regs = RegFile::new();
    for r in 0..opts.regs {
        regs.write(Reg::gpr(r), Val::public(rng.gen_range(0..opts.mem_size)));
    }
    let mut mem = Memory::new();
    let half = opts.mem_size / 2;
    for k in 0..half {
        mem.write(opts.mem_base + k, Val::new(rng.gen_range(0..16), Label::Public));
    }
    for k in half..opts.mem_size {
        mem.write(opts.mem_base + k, Val::new(rng.gen_range(0..16), Label::Secret));
    }
    Config::initial(regs, mem, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Params;
    use crate::sched::sequential::run_sequential;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn generated_programs_have_expected_shape() {
        let mut rng = SmallRng::seed_from_u64(11);
        let opts = ProgGenOptions::default();
        for _ in 0..50 {
            let p = random_program(&mut rng, &opts);
            assert_eq!(p.len(), opts.len);
            for (n, i) in p.iter() {
                if let Instr::Br { tru, fls, .. } = i {
                    assert!(*tru > n && *fls > n, "branches must be forward");
                }
            }
        }
    }

    #[test]
    fn generated_programs_run_sequentially_to_completion() {
        let mut rng = SmallRng::seed_from_u64(12);
        let opts = ProgGenOptions::default();
        for _ in 0..50 {
            let p = random_program(&mut rng, &opts);
            let cfg = random_config(&mut rng, &opts);
            let out = run_sequential(&p, cfg, Params::paper(), 10_000).unwrap();
            assert!(out.terminal, "forward-only programs must terminate");
        }
    }

    #[test]
    fn random_speculative_runs_terminate() {
        use crate::sched::random::{run_random, RandomSchedulerOptions};
        let mut rng = SmallRng::seed_from_u64(13);
        let opts = ProgGenOptions::default();
        for _ in 0..30 {
            let p = random_program(&mut rng, &opts);
            let cfg = random_config(&mut rng, &opts);
            let run = run_random(
                &p,
                cfg,
                Params::paper(),
                RandomSchedulerOptions::default(),
                &mut rng,
            );
            assert!(run.schedule.len() <= RandomSchedulerOptions::default().max_steps);
        }
    }
}
