//! The return stack buffer `σ` (Appendix A).
//!
//! The paper models `σ` as a map from reorder-buffer indices to `push n`
//! / `pop` commands; `top(σ)` replays the commands in index order and
//! returns the top of the resulting stack (`⊥` when empty). Keying the
//! commands by buffer index is what lets rollbacks erase the RSB effects
//! of squashed instructions.

use crate::value::Pc;
use std::collections::BTreeMap;
use std::fmt;

/// A single RSB command.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RsbOp {
    /// `push n` — recorded when fetching a `call` with return point `n`.
    Push(Pc),
    /// `pop` — recorded when fetching a `ret`.
    Pop,
}

/// The return stack buffer `σ`.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Rsb {
    ops: BTreeMap<usize, RsbOp>,
}

impl Rsb {
    /// An empty RSB.
    pub fn new() -> Self {
        Rsb::default()
    }

    /// `σ[i ↦ op]`.
    pub fn record(&mut self, index: usize, op: RsbOp) {
        self.ops.insert(index, op);
    }

    /// `top(σ)`: replay all commands in index order and return the top of
    /// the resulting stack, or `None` (`⊥`) when the stack is empty.
    ///
    /// Example from the paper: `∅[1 ↦ push 4][2 ↦ push 5][3 ↦ pop]`
    /// yields `top = 4`.
    pub fn top(&self) -> Option<Pc> {
        self.replay().last().copied()
    }

    /// The stack `JσK` obtained by replaying the commands.
    pub fn replay(&self) -> Vec<Pc> {
        let mut st = Vec::new();
        for op in self.ops.values() {
            match op {
                RsbOp::Push(n) => st.push(*n),
                RsbOp::Pop => {
                    st.pop();
                }
            }
        }
        st
    }

    /// Discard every command recorded at index `≥ cut` — RSB rollback,
    /// performed together with the reorder-buffer rollback.
    pub fn truncate_from(&mut self, cut: usize) {
        self.ops.retain(|&i, _| i < cut);
    }

    /// Number of recorded commands.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` when no command has been recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Iterate `(index, op)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, RsbOp)> + '_ {
        self.ops.iter().map(|(&i, &op)| (i, op))
    }
}

impl fmt::Display for Rsb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "σ = ∅")?;
        for (i, op) in self.iter() {
            match op {
                RsbOp::Push(n) => write!(f, "[{i} ↦ push {n}]")?,
                RsbOp::Pop => write!(f, "[{i} ↦ pop]")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_replay() {
        // σ = ∅[1 ↦ push 4][2 ↦ push 5][3 ↦ pop]  ⇒  JσK = [4], top = 4.
        let mut rsb = Rsb::new();
        rsb.record(1, RsbOp::Push(4));
        rsb.record(2, RsbOp::Push(5));
        rsb.record(3, RsbOp::Pop);
        assert_eq!(rsb.replay(), vec![4]);
        assert_eq!(rsb.top(), Some(4));
    }

    #[test]
    fn empty_rsb_has_bottom_top() {
        assert_eq!(Rsb::new().top(), None);
    }

    #[test]
    fn pop_on_empty_stack_is_ignored() {
        let mut rsb = Rsb::new();
        rsb.record(1, RsbOp::Pop);
        rsb.record(2, RsbOp::Push(7));
        assert_eq!(rsb.top(), Some(7));
    }

    #[test]
    fn rollback_erases_squashed_commands() {
        let mut rsb = Rsb::new();
        rsb.record(1, RsbOp::Push(4));
        rsb.record(5, RsbOp::Pop);
        rsb.record(8, RsbOp::Push(9));
        rsb.truncate_from(5);
        assert_eq!(rsb.len(), 1);
        assert_eq!(rsb.top(), Some(4));
    }

    #[test]
    fn display_shows_commands() {
        let mut rsb = Rsb::new();
        rsb.record(3, RsbOp::Push(4));
        assert_eq!(rsb.to_string(), "σ = ∅[3 ↦ push 4]");
    }
}
