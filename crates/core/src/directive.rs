//! Attacker directives (§3.1).
//!
//! Directives resolve *all* microarchitectural non-determinism: which
//! branch the predictor guesses, which instruction executes next, which
//! store an aliasing predictor forwards from. A schedule of directives
//! therefore stands for one concrete behaviour of one (adversarially
//! chosen) microarchitecture.

use crate::value::Pc;
use std::fmt;

/// A single attacker directive.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Directive {
    /// `fetch` — fetch the next instruction (ops, loads, stores, fences,
    /// calls, and rets with a non-empty RSB).
    Fetch,
    /// `fetch: b` — fetch a conditional branch, speculatively following
    /// the `true` or `false` arm.
    FetchBranch(bool),
    /// `fetch: n` — fetch an indirect jump (or a `ret` under an empty
    /// RSB), speculatively targeting program point `n`.
    FetchJump(Pc),
    /// `execute i` — execute the transient instruction at buffer index
    /// `i` (ops, branches, loads, indirect jumps).
    Execute(usize),
    /// `execute i : value` — resolve the data operand of the store at `i`.
    ExecuteValue(usize),
    /// `execute i : addr` — resolve the address of the store at `i`.
    ExecuteAddr(usize),
    /// `execute i : fwd j` — alias-predict: forward the (resolved) data of
    /// the store at `j` to the load at `i` without knowing the store's
    /// address (§3.5).
    ExecuteFwd(usize, usize),
    /// `retire` — retire the instruction at `MIN(buf)` (for `call`/`ret`,
    /// retire the whole expansion group).
    Retire,
}

impl Directive {
    /// `true` for the fetch-family directives.
    pub fn is_fetch(self) -> bool {
        matches!(
            self,
            Directive::Fetch | Directive::FetchBranch(_) | Directive::FetchJump(_)
        )
    }

    /// `true` for the execute-family directives.
    pub fn is_execute(self) -> bool {
        matches!(
            self,
            Directive::Execute(_)
                | Directive::ExecuteValue(_)
                | Directive::ExecuteAddr(_)
                | Directive::ExecuteFwd(_, _)
        )
    }

    /// The buffer index an execute-family directive targets.
    pub fn target_index(self) -> Option<usize> {
        match self {
            Directive::Execute(i)
            | Directive::ExecuteValue(i)
            | Directive::ExecuteAddr(i)
            | Directive::ExecuteFwd(i, _) => Some(i),
            _ => None,
        }
    }
}

impl fmt::Display for Directive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Directive::Fetch => write!(f, "fetch"),
            Directive::FetchBranch(b) => write!(f, "fetch: {b}"),
            Directive::FetchJump(n) => write!(f, "fetch: {n}"),
            Directive::Execute(i) => write!(f, "execute {i}"),
            Directive::ExecuteValue(i) => write!(f, "execute {i} : value"),
            Directive::ExecuteAddr(i) => write!(f, "execute {i} : addr"),
            Directive::ExecuteFwd(i, j) => write!(f, "execute {i} : fwd {j}"),
            Directive::Retire => write!(f, "retire"),
        }
    }
}

/// A schedule `D`: a finite sequence of directives.
///
/// `N` in the paper's big step `C ⇓_D^N C'` is the number of `retire`
/// directives, exposed as [`Schedule::retire_count`].
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Schedule(pub Vec<Directive>);

impl Schedule {
    /// The empty schedule.
    pub fn new() -> Self {
        Schedule::default()
    }

    /// Append a directive.
    pub fn push(&mut self, d: Directive) {
        self.0.push(d);
    }

    /// Number of directives.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` for the empty schedule.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// `N = #{d ∈ D | d = retire}`.
    pub fn retire_count(&self) -> usize {
        self.0
            .iter()
            .filter(|d| matches!(d, Directive::Retire))
            .count()
    }

    /// Iterate over the directives in order.
    pub fn iter(&self) -> impl Iterator<Item = Directive> + '_ {
        self.0.iter().copied()
    }
}

impl FromIterator<Directive> for Schedule {
    fn from_iter<I: IntoIterator<Item = Directive>>(iter: I) -> Self {
        Schedule(iter.into_iter().collect())
    }
}

impl Extend<Directive> for Schedule {
    fn extend<I: IntoIterator<Item = Directive>>(&mut self, iter: I) {
        self.0.extend(iter);
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, d) in self.0.iter().enumerate() {
            if k > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(Directive::Fetch.is_fetch());
        assert!(Directive::FetchBranch(true).is_fetch());
        assert!(Directive::FetchJump(7).is_fetch());
        assert!(Directive::Execute(1).is_execute());
        assert!(Directive::ExecuteFwd(7, 2).is_execute());
        assert!(!Directive::Retire.is_fetch());
        assert!(!Directive::Retire.is_execute());
    }

    #[test]
    fn target_indices() {
        assert_eq!(Directive::Execute(3).target_index(), Some(3));
        assert_eq!(Directive::ExecuteAddr(2).target_index(), Some(2));
        assert_eq!(Directive::ExecuteFwd(7, 2).target_index(), Some(7));
        assert_eq!(Directive::Retire.target_index(), None);
        assert_eq!(Directive::Fetch.target_index(), None);
    }

    #[test]
    fn retire_count_counts_only_retires() {
        let s: Schedule = [
            Directive::Fetch,
            Directive::Execute(1),
            Directive::Retire,
            Directive::Retire,
        ]
        .into_iter()
        .collect();
        assert_eq!(s.retire_count(), 2);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Directive::FetchBranch(true).to_string(), "fetch: true");
        assert_eq!(Directive::ExecuteValue(2).to_string(), "execute 2 : value");
        assert_eq!(Directive::ExecuteFwd(7, 2).to_string(), "execute 7 : fwd 2");
        let s: Schedule = [Directive::Fetch, Directive::Retire].into_iter().collect();
        assert_eq!(s.to_string(), "fetch; retire");
    }
}
