//! Physical instructions (the left column of Table 1) and programs.

use crate::op::OpCode;
use crate::reg::Reg;
use crate::value::{Pc, Val};
use std::collections::BTreeMap;
use std::fmt;

/// An operand `rv`: a register name or an immediate labeled value.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Operand {
    /// A register read.
    Reg(Reg),
    /// An immediate labeled value.
    Imm(Val),
}

impl Operand {
    /// Convenience public immediate.
    pub fn imm(bits: u64) -> Operand {
        Operand::Imm(Val::public(bits))
    }

    /// The register, if this operand is one.
    pub fn as_reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Imm(_) => None,
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<Val> for Operand {
    fn from(v: Val) -> Self {
        Operand::Imm(v)
    }
}

impl From<u64> for Operand {
    fn from(bits: u64) -> Self {
        Operand::imm(bits)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "{v}"),
        }
    }
}

/// A physical instruction (Table 1, left column).
///
/// As in the paper, every non-branching instruction carries the program
/// point `n'` of its successor explicitly; the assembler fills these in.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Instr {
    /// `(r = op(op, r⃗v, n'))` — arithmetic operation.
    Op {
        /// Destination register.
        dst: Reg,
        /// Opcode.
        op: OpCode,
        /// Operands.
        args: Vec<Operand>,
        /// Next program point `n'`.
        next: Pc,
    },
    /// `br(op, r⃗v, n_true, n_false)` — conditional branch.
    Br {
        /// Boolean opcode deciding the branch.
        op: OpCode,
        /// Operands of the condition.
        args: Vec<Operand>,
        /// Target when the condition holds.
        tru: Pc,
        /// Target when it does not.
        fls: Pc,
    },
    /// `(r = load(r⃗v, n'))` — memory load.
    Load {
        /// Destination register.
        dst: Reg,
        /// Address operands (fed to `addr`).
        addr: Vec<Operand>,
        /// Next program point `n'`.
        next: Pc,
    },
    /// `store(rv, r⃗v, n')` — memory store.
    Store {
        /// The register or value stored.
        src: Operand,
        /// Address operands (fed to `addr`).
        addr: Vec<Operand>,
        /// Next program point `n'`.
        next: Pc,
    },
    /// `jmpi(r⃗v)` — indirect jump (target computed via `addr`).
    Jmpi {
        /// Target-address operands.
        args: Vec<Operand>,
    },
    /// `call(n_f, n_ret)` — direct call.
    Call {
        /// Callee program point.
        callee: Pc,
        /// Return program point.
        ret: Pc,
    },
    /// `ret` — return.
    Ret,
    /// `fence n'` — speculation barrier.
    Fence {
        /// Next program point `n'`.
        next: Pc,
    },
}

impl Instr {
    /// The statically-known successor program point, if any (branches,
    /// indirect jumps and returns have none).
    pub fn next(&self) -> Option<Pc> {
        match self {
            Instr::Op { next, .. }
            | Instr::Load { next, .. }
            | Instr::Store { next, .. }
            | Instr::Fence { next } => Some(*next),
            Instr::Call { callee, .. } => Some(*callee),
            Instr::Br { .. } | Instr::Jmpi { .. } | Instr::Ret => None,
        }
    }

    /// All registers this instruction reads.
    pub fn reads(&self) -> Vec<Reg> {
        fn push_ops(out: &mut Vec<Reg>, ops: &[Operand]) {
            out.extend(ops.iter().filter_map(|o| o.as_reg()));
        }
        let mut out = Vec::new();
        match self {
            Instr::Op { args, .. } | Instr::Br { args, .. } | Instr::Jmpi { args } => {
                push_ops(&mut out, args)
            }
            Instr::Load { addr, .. } => push_ops(&mut out, addr),
            Instr::Store { src, addr, .. } => {
                if let Some(r) = src.as_reg() {
                    out.push(r);
                }
                push_ops(&mut out, addr);
            }
            Instr::Call { .. } | Instr::Fence { .. } => {}
            Instr::Ret => out.push(Reg::RSP),
        }
        out
    }

    /// The register this instruction writes, if any.
    pub fn writes(&self) -> Option<Reg> {
        match self {
            Instr::Op { dst, .. } | Instr::Load { dst, .. } => Some(*dst),
            _ => None,
        }
    }

    /// A short mnemonic used in diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            Instr::Op { .. } => "op",
            Instr::Br { .. } => "br",
            Instr::Load { .. } => "load",
            Instr::Store { .. } => "store",
            Instr::Jmpi { .. } => "jmpi",
            Instr::Call { .. } => "call",
            Instr::Ret => "ret",
            Instr::Fence { .. } => "fence",
        }
    }
}

fn fmt_ops(f: &mut fmt::Formatter<'_>, args: &[Operand]) -> fmt::Result {
    write!(f, "[")?;
    for (i, a) in args.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "{a}")?;
    }
    write!(f, "]")
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Op { dst, op, args, next } => {
                write!(f, "({dst} = op({op}, ")?;
                fmt_ops(f, args)?;
                write!(f, ", {next}))")
            }
            Instr::Br { op, args, tru, fls } => {
                write!(f, "br({op}, ")?;
                fmt_ops(f, args)?;
                write!(f, ", {tru}, {fls})")
            }
            Instr::Load { dst, addr, next } => {
                write!(f, "({dst} = load(")?;
                fmt_ops(f, addr)?;
                write!(f, ", {next}))")
            }
            Instr::Store { src, addr, next } => {
                write!(f, "store({src}, ")?;
                fmt_ops(f, addr)?;
                write!(f, ", {next})")
            }
            Instr::Jmpi { args } => {
                write!(f, "jmpi(")?;
                fmt_ops(f, args)?;
                write!(f, ")")
            }
            Instr::Call { callee, ret } => write!(f, "call({callee}, {ret})"),
            Instr::Ret => write!(f, "ret"),
            Instr::Fence { next } => write!(f, "fence {next}"),
        }
    }
}

/// A program: the instruction-space part of the paper's `µ`, a partial map
/// from program points to physical instructions.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Program {
    instrs: BTreeMap<Pc, Instr>,
    /// The entry program point (`n` of initial configurations).
    pub entry: Pc,
}

impl Program {
    /// An empty program with entry point 0.
    pub fn new() -> Self {
        Program::default()
    }

    /// Look up `µ(n)` in instruction space.
    pub fn fetch(&self, n: Pc) -> Option<&Instr> {
        self.instrs.get(&n)
    }

    /// Place an instruction at program point `n`, replacing any previous
    /// instruction there.
    pub fn insert(&mut self, n: Pc, instr: Instr) {
        self.instrs.insert(n, instr);
    }

    /// Iterate over instructions in program-point order.
    pub fn iter(&self) -> impl Iterator<Item = (Pc, &Instr)> + '_ {
        self.instrs.iter().map(|(&n, i)| (n, i))
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// `true` when the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The largest mapped program point, if any.
    pub fn max_pc(&self) -> Option<Pc> {
        self.instrs.keys().next_back().copied()
    }
}

impl FromIterator<(Pc, Instr)> for Program {
    fn from_iter<I: IntoIterator<Item = (Pc, Instr)>>(iter: I) -> Self {
        Program {
            instrs: iter.into_iter().collect(),
            entry: 0,
        }
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (n, i) in self.iter() {
            writeln!(f, "{n}: {i}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::names::*;

    fn fig1_program() -> Program {
        // Figure 1:
        // 1: br(>, (4, ra), 2, 4)
        // 2: (rb = load([40, ra], 3))
        // 3: (rc = load([44, rb], 4))
        let mut p = Program::new();
        p.entry = 1;
        p.insert(
            1,
            Instr::Br {
                op: OpCode::Gt,
                args: vec![Operand::imm(4), RA.into()],
                tru: 2,
                fls: 4,
            },
        );
        p.insert(
            2,
            Instr::Load {
                dst: RB,
                addr: vec![Operand::imm(0x40), RA.into()],
                next: 3,
            },
        );
        p.insert(
            3,
            Instr::Load {
                dst: RC,
                addr: vec![Operand::imm(0x44), RB.into()],
                next: 4,
            },
        );
        p
    }

    #[test]
    fn program_lookup_and_order() {
        let p = fig1_program();
        assert_eq!(p.len(), 3);
        assert!(p.fetch(1).is_some());
        assert!(p.fetch(4).is_none());
        assert_eq!(p.max_pc(), Some(3));
        let pcs: Vec<Pc> = p.iter().map(|(n, _)| n).collect();
        assert_eq!(pcs, vec![1, 2, 3]);
    }

    #[test]
    fn next_reads_writes() {
        let p = fig1_program();
        let br = p.fetch(1).unwrap();
        assert_eq!(br.next(), None);
        assert_eq!(br.reads(), vec![RA]);
        assert_eq!(br.writes(), None);
        let ld = p.fetch(2).unwrap();
        assert_eq!(ld.next(), Some(3));
        assert_eq!(ld.reads(), vec![RA]);
        assert_eq!(ld.writes(), Some(RB));
    }

    #[test]
    fn store_reads_both_value_and_address() {
        let st = Instr::Store {
            src: RB.into(),
            addr: vec![Operand::imm(0x40), RA.into()],
            next: 5,
        };
        assert_eq!(st.reads(), vec![RB, RA]);
        assert_eq!(st.kind(), "store");
    }

    #[test]
    fn display_matches_paper_notation() {
        let p = fig1_program();
        assert_eq!(p.fetch(1).unwrap().to_string(), "br(gt, [4pub, ra], 2, 4)");
        assert_eq!(
            p.fetch(2).unwrap().to_string(),
            "(rb = load([64pub, ra], 3))"
        );
    }

    #[test]
    fn call_next_is_callee() {
        let c = Instr::Call { callee: 5, ret: 4 };
        assert_eq!(c.next(), Some(5));
        assert_eq!(Instr::Ret.reads(), vec![Reg::RSP]);
    }
}
