//! Fetch-stage rules.
//!
//! Fetching moves the physical instruction at the current program point
//! into the reorder buffer as a transient instruction (Table 1) and
//! advances the program point — speculatively for branches, indirect
//! jumps, and returns. `call` and `ret` unpack into expansion groups
//! (Appendix A).

use crate::directive::Directive;
use crate::error::StepError;
use crate::instr::{Instr, Operand};
use crate::machine::{Machine, StepObs};
use crate::op::OpCode;
use crate::params::RsbPolicy;
use crate::reg::Reg;
use crate::rsb::RsbOp;
use crate::transient::{StoreAddr, StoreData, Transient};
use crate::value::{Pc, Val};

/// Number of reorder-buffer entries a `call` expands into.
pub const CALL_GROUP: usize = 3;
/// Number of reorder-buffer entries a `ret` expands into.
pub const RET_GROUP: usize = 4;

impl Machine<'_> {
    /// Dispatch a fetch-family directive.
    pub(crate) fn fetch(&mut self, directive: Directive) -> Result<StepObs, StepError> {
        let pc = self.cfg.pc;
        let instr = self
            .program
            .fetch(pc)
            .ok_or(StepError::NoInstruction(pc))?
            .clone();
        match (&instr, directive) {
            // simple-fetch
            (Instr::Op { .. }, Directive::Fetch)
            | (Instr::Load { .. }, Directive::Fetch)
            | (Instr::Store { .. }, Directive::Fetch)
            | (Instr::Fence { .. }, Directive::Fetch) => self.fetch_simple(&instr),
            // cond-fetch
            (Instr::Br { .. }, Directive::FetchBranch(b)) => self.fetch_branch(&instr, b),
            // jmpi-fetch
            (Instr::Jmpi { .. }, Directive::FetchJump(n)) => self.fetch_jmpi(&instr, n),
            // call-direct-fetch
            (Instr::Call { .. }, Directive::Fetch) => self.fetch_call(&instr),
            // ret-fetch-rsb / ret-fetch-rsb-empty
            (Instr::Ret, d) => self.fetch_ret(d),
            (found, _) => Err(StepError::FetchMismatch {
                pc,
                found: found.kind(),
            }),
        }
    }

    fn check_capacity(&self, needed: usize) -> Result<(), StepError> {
        match self.params.rob_capacity {
            Some(cap) if self.cfg.rob.len() + needed > cap => Err(StepError::RobFull),
            _ => Ok(()),
        }
    }

    /// `simple-fetch`: translate the physical instruction to its
    /// unresolved transient form and advance to `next(µ(n))`.
    fn fetch_simple(&mut self, instr: &Instr) -> Result<StepObs, StepError> {
        self.check_capacity(1)?;
        let pc = self.cfg.pc;
        let (transient, next) = match instr {
            Instr::Op { dst, op, args, next } => (
                Transient::Op {
                    dst: *dst,
                    op: *op,
                    args: args.clone(),
                },
                *next,
            ),
            Instr::Load { dst, addr, next } => (
                Transient::Load {
                    dst: *dst,
                    addr: addr.clone(),
                    pp: pc,
                },
                *next,
            ),
            Instr::Store { src, addr, next } => (
                Transient::Store {
                    data: StoreData::Pending(*src),
                    addr: StoreAddr::Pending(addr.clone()),
                },
                *next,
            ),
            Instr::Fence { next } => (Transient::Fence, *next),
            _ => unreachable!("fetch_simple on non-simple instruction"),
        };
        self.cfg.rob.push(transient);
        self.cfg.pc = next;
        Ok(vec![])
    }

    /// `cond-fetch`: record the guessed branch `n0` in the transient
    /// instruction and continue along it.
    fn fetch_branch(&mut self, instr: &Instr, taken: bool) -> Result<StepObs, StepError> {
        self.check_capacity(1)?;
        let Instr::Br { op, args, tru, fls } = instr else {
            unreachable!()
        };
        let guess = if taken { *tru } else { *fls };
        self.cfg.rob.push(Transient::Br {
            op: *op,
            args: args.clone(),
            guess,
            tru: *tru,
            fls: *fls,
        });
        self.cfg.pc = guess;
        Ok(vec![])
    }

    /// `jmpi-fetch`: the attacker-supplied guess `n'` becomes the next
    /// program point and is recorded for the execute-stage check.
    fn fetch_jmpi(&mut self, instr: &Instr, guess: Pc) -> Result<StepObs, StepError> {
        self.check_capacity(1)?;
        let Instr::Jmpi { args } = instr else {
            unreachable!()
        };
        self.cfg.rob.push(Transient::Jmpi {
            args: args.clone(),
            guess,
        });
        self.cfg.pc = guess;
        Ok(vec![])
    }

    /// `call-direct-fetch`: unpack into `call`-marker, stack-pointer
    /// bump, and return-address store; push the return point onto the RSB
    /// keyed by the marker's index.
    fn fetch_call(&mut self, instr: &Instr) -> Result<StepObs, StepError> {
        self.check_capacity(CALL_GROUP)?;
        let Instr::Call { callee, ret } = instr else {
            unreachable!()
        };
        let marker = self.cfg.rob.push(Transient::Call);
        self.cfg.rob.push(Transient::Op {
            dst: Reg::RSP,
            op: OpCode::Succ,
            args: vec![Operand::Reg(Reg::RSP)],
        });
        self.cfg.rob.push(Transient::Store {
            data: StoreData::Pending(Operand::Imm(Val::public(*ret))),
            addr: StoreAddr::Pending(vec![Operand::Reg(Reg::RSP)]),
        });
        self.cfg.rsb.record(marker, RsbOp::Push(*ret));
        self.cfg.pc = *callee;
        Ok(vec![])
    }

    /// `ret-fetch-rsb` / `ret-fetch-rsb-empty`: unpack into `ret`-marker,
    /// return-address load, stack-pointer pop, and an indirect jump
    /// predicted by `top(σ)` (or by the policy-determined fallback when
    /// the RSB is empty).
    fn fetch_ret(&mut self, directive: Directive) -> Result<StepObs, StepError> {
        self.check_capacity(RET_GROUP)?;
        let top = self.cfg.rsb.top();
        let guess: Pc = match (top, directive, self.params.rsb_policy) {
            // ret-fetch-rsb: the RSB supplies the prediction.
            (Some(n), Directive::Fetch, _) => n,
            // ret-fetch-rsb-empty under attacker-chosen fallback.
            (None, Directive::FetchJump(n), RsbPolicy::AttackerChoice) => n,
            // AMD-style refuse-to-speculate.
            (None, _, RsbPolicy::Refuse) => return Err(StepError::RsbRefused),
            // Circular buffer: a stale junk value, via plain fetch.
            (None, Directive::Fetch, RsbPolicy::Circular { stale }) => stale,
            _ => {
                return Err(StepError::FetchMismatch {
                    pc: self.cfg.pc,
                    found: "ret",
                })
            }
        };
        let pc = self.cfg.pc;
        let marker = self.cfg.rob.push(Transient::Ret);
        self.cfg.rob.push(Transient::Load {
            dst: Reg::RTMP,
            addr: vec![Operand::Reg(Reg::RSP)],
            pp: pc,
        });
        self.cfg.rob.push(Transient::Op {
            dst: Reg::RSP,
            op: OpCode::Pred,
            args: vec![Operand::Reg(Reg::RSP)],
        });
        self.cfg.rob.push(Transient::Jmpi {
            args: vec![Operand::Reg(Reg::RTMP)],
            guess,
        });
        self.cfg.rsb.record(marker, RsbOp::Pop);
        self.cfg.pc = guess;
        Ok(vec![])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::instr::Program;
    use crate::reg::names::*;

    fn machine_with(instrs: Vec<(Pc, Instr)>, entry: Pc) -> (Program, Config) {
        let mut p = Program::new();
        p.entry = entry;
        for (n, i) in instrs {
            p.insert(n, i);
        }
        let cfg = Config::initial(Default::default(), Default::default(), entry);
        (p, cfg)
    }

    #[test]
    fn simple_fetch_advances_pc_and_fills_rob() {
        let (p, cfg) = machine_with(
            vec![(
                1,
                Instr::Op {
                    dst: RA,
                    op: OpCode::Add,
                    args: vec![Operand::imm(1)],
                    next: 2,
                },
            )],
            1,
        );
        let mut m = Machine::new(&p, cfg);
        m.step(Directive::Fetch).unwrap();
        assert_eq!(m.cfg.pc, 2);
        assert_eq!(m.cfg.rob.len(), 1);
        assert!(matches!(m.cfg.rob.get(1), Some(Transient::Op { .. })));
    }

    #[test]
    fn branch_fetch_requires_branch_directive() {
        let (p, cfg) = machine_with(
            vec![(
                1,
                Instr::Br {
                    op: OpCode::Gt,
                    args: vec![Operand::imm(4), RA.into()],
                    tru: 2,
                    fls: 4,
                },
            )],
            1,
        );
        let mut m = Machine::new(&p, cfg);
        assert!(matches!(
            m.step(Directive::Fetch),
            Err(StepError::FetchMismatch { .. })
        ));
        m.step(Directive::FetchBranch(true)).unwrap();
        assert_eq!(m.cfg.pc, 2);
        match m.cfg.rob.get(1) {
            Some(Transient::Br { guess, .. }) => assert_eq!(*guess, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fetch_false_goes_to_false_target() {
        let (p, cfg) = machine_with(
            vec![(
                1,
                Instr::Br {
                    op: OpCode::Gt,
                    args: vec![Operand::imm(4), RA.into()],
                    tru: 2,
                    fls: 4,
                },
            )],
            1,
        );
        let mut m = Machine::new(&p, cfg);
        m.step(Directive::FetchBranch(false)).unwrap();
        assert_eq!(m.cfg.pc, 4);
    }

    #[test]
    fn fetch_beyond_program_fails() {
        let (p, cfg) = machine_with(vec![], 1);
        let mut m = Machine::new(&p, cfg);
        assert_eq!(
            m.step(Directive::Fetch),
            Err(StepError::NoInstruction(1))
        );
    }

    #[test]
    fn rob_capacity_blocks_fetch() {
        let (p, cfg) = machine_with(
            vec![
                (1, Instr::Fence { next: 2 }),
                (2, Instr::Fence { next: 3 }),
            ],
            1,
        );
        let mut params = crate::params::Params::paper();
        params.rob_capacity = Some(1);
        let mut m = Machine::with_params(&p, cfg, params);
        m.step(Directive::Fetch).unwrap();
        assert_eq!(m.step(Directive::Fetch), Err(StepError::RobFull));
    }

    #[test]
    fn call_fetch_unpacks_and_pushes_rsb() {
        let (p, cfg) = machine_with(vec![(3, Instr::Call { callee: 5, ret: 4 })], 3);
        let mut m = Machine::new(&p, cfg);
        m.step(Directive::Fetch).unwrap();
        assert_eq!(m.cfg.pc, 5);
        assert_eq!(m.cfg.rob.len(), 3);
        assert!(matches!(m.cfg.rob.get(1), Some(Transient::Call)));
        assert!(matches!(
            m.cfg.rob.get(2),
            Some(Transient::Op {
                op: OpCode::Succ,
                ..
            })
        ));
        assert!(matches!(m.cfg.rob.get(3), Some(Transient::Store { .. })));
        assert_eq!(m.cfg.rsb.top(), Some(4));
    }

    #[test]
    fn ret_fetch_uses_rsb_prediction() {
        let (p, mut cfg) = machine_with(vec![(7, Instr::Ret)], 7);
        cfg.rsb.record(0, RsbOp::Push(4));
        let mut m = Machine::new(&p, cfg);
        m.step(Directive::Fetch).unwrap();
        assert_eq!(m.cfg.pc, 4);
        assert_eq!(m.cfg.rob.len(), 4);
        assert!(matches!(
            m.cfg.rob.get(4),
            Some(Transient::Jmpi { guess: 4, .. })
        ));
        // The pop is recorded, so the RSB is now empty.
        assert_eq!(m.cfg.rsb.top(), None);
    }

    #[test]
    fn ret_fetch_empty_rsb_takes_attacker_target() {
        let (p, cfg) = machine_with(vec![(2, Instr::Ret)], 2);
        let mut m = Machine::new(&p, cfg);
        // Plain fetch is not applicable under AttackerChoice with empty σ.
        assert!(m.step(Directive::Fetch).is_err());
        m.step(Directive::FetchJump(17)).unwrap();
        assert_eq!(m.cfg.pc, 17);
    }

    #[test]
    fn ret_fetch_empty_rsb_refuse_policy() {
        let (p, cfg) = machine_with(vec![(2, Instr::Ret)], 2);
        let mut params = crate::params::Params::paper();
        params.rsb_policy = RsbPolicy::Refuse;
        let mut m = Machine::with_params(&p, cfg, params);
        assert_eq!(m.step(Directive::Fetch), Err(StepError::RsbRefused));
        assert_eq!(m.step(Directive::FetchJump(9)), Err(StepError::RsbRefused));
    }

    #[test]
    fn ret_fetch_empty_rsb_circular_policy() {
        let (p, cfg) = machine_with(vec![(2, Instr::Ret)], 2);
        let mut params = crate::params::Params::paper();
        params.rsb_policy = RsbPolicy::Circular { stale: 0x99 };
        let mut m = Machine::with_params(&p, cfg, params);
        m.step(Directive::Fetch).unwrap();
        assert_eq!(m.cfg.pc, 0x99);
    }
}
