//! The step rules of the semantics, one module per pipeline stage.
//!
//! * [`fetch`] — `simple-fetch`, `cond-fetch`, `jmpi-fetch`,
//!   `call-direct-fetch`, `ret-fetch-rsb`, `ret-fetch-rsb-empty`;
//! * [`execute`] — the execute-stage rules of §3.3–§3.5 and Appendix A;
//! * [`retire`] — `value-retire`, `jump-retire`, `store-retire`,
//!   `fence-retire`, `call-retire`, `ret-retire`.

pub mod execute;
pub mod fetch;
pub mod retire;
