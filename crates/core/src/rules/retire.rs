//! Retire-stage rules: commit the oldest (group of) transient
//! instruction(s) to architectural state.

use crate::error::StepError;
use crate::machine::{Machine, StepObs};
use crate::observation::Observation;
use crate::rules::fetch::{CALL_GROUP, RET_GROUP};
use crate::transient::{StoreAddr, StoreData, Transient};
use crate::value::Val;

impl Machine<'_> {
    /// Dispatch `retire` on `MIN(buf)`.
    pub(crate) fn retire(&mut self) -> Result<StepObs, StepError> {
        let i = self.cfg.rob.min().ok_or(StepError::EmptyBuffer)?;
        let entry = self.cfg.rob.get(i).expect("min index present").clone();
        match entry {
            // value-retire: plain resolved values and resolved loads alike.
            Transient::Value { dst, val } => {
                self.cfg.regs.write(dst, val);
                self.cfg.rob.pop_min();
                Ok(vec![])
            }
            Transient::LoadedValue { dst, val, .. } => {
                self.cfg.regs.write(dst, val);
                self.cfg.rob.pop_min();
                Ok(vec![])
            }
            // jump-retire
            Transient::Jump { .. } => {
                self.cfg.rob.pop_min();
                Ok(vec![])
            }
            // fence-retire
            Transient::Fence => {
                self.cfg.rob.pop_min();
                Ok(vec![])
            }
            // store-retire
            Transient::Store {
                data: StoreData::Resolved(v),
                addr: StoreAddr::Resolved(a),
            } => {
                self.cfg.mem.write(a.bits, v);
                self.cfg.rob.pop_min();
                Ok(vec![Observation::Write {
                    addr: a.bits,
                    label: a.label,
                }])
            }
            // call-retire / ret-retire: whole expansion groups.
            Transient::Call => self.retire_call(i),
            Transient::Ret => self.retire_ret(i),
            other => Err(StepError::NotRetirable {
                index: i,
                found: other.kind(),
            }),
        }
    }

    /// `call-retire`: commit the stack-pointer bump and the return-address
    /// store together with the marker (Appendix A).
    fn retire_call(&mut self, i: usize) -> Result<StepObs, StepError> {
        let rsp_val = match self.cfg.rob.get(i + 1) {
            Some(Transient::Value { dst, val }) if *dst == crate::reg::Reg::RSP => *val,
            _ => {
                return Err(StepError::NotRetirable {
                    index: i,
                    found: "call",
                })
            }
        };
        let (store_val, store_addr): (Val, Val) = match self.cfg.rob.get(i + 2) {
            Some(Transient::Store {
                data: StoreData::Resolved(v),
                addr: StoreAddr::Resolved(a),
            }) => (*v, *a),
            _ => {
                return Err(StepError::NotRetirable {
                    index: i,
                    found: "call",
                })
            }
        };
        self.cfg.regs.write(crate::reg::Reg::RSP, rsp_val);
        self.cfg.mem.write(store_addr.bits, store_val);
        self.cfg.rob.pop_min_n(CALL_GROUP);
        Ok(vec![Observation::Write {
            addr: store_addr.bits,
            label: store_addr.label,
        }])
    }

    /// `ret-retire`: commit the stack-pointer pop; the scratch load and
    /// the resolved jump are discarded (Appendix A updates only `rsp`).
    fn retire_ret(&mut self, i: usize) -> Result<StepObs, StepError> {
        let loaded_ok = matches!(
            self.cfg.rob.get(i + 1),
            Some(Transient::LoadedValue { dst, .. }) if *dst == crate::reg::Reg::RTMP
        ) || matches!(
            self.cfg.rob.get(i + 1),
            Some(Transient::Value { dst, .. }) if *dst == crate::reg::Reg::RTMP
        );
        let rsp_val = match self.cfg.rob.get(i + 2) {
            Some(Transient::Value { dst, val }) if *dst == crate::reg::Reg::RSP => Some(*val),
            _ => None,
        };
        let jump_ok = matches!(self.cfg.rob.get(i + 3), Some(Transient::Jump { .. }));
        match (loaded_ok, rsp_val, jump_ok) {
            (true, Some(v), true) => {
                self.cfg.regs.write(crate::reg::Reg::RSP, v);
                self.cfg.rob.pop_min_n(RET_GROUP);
                Ok(vec![])
            }
            _ => Err(StepError::NotRetirable {
                index: i,
                found: "ret",
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::directive::Directive;
    use crate::instr::{Instr, Operand, Program};
    use crate::label::Label;
    use crate::op::OpCode;
    use crate::reg::names::*;
    use crate::reg::{Reg, RegFile};

    fn machine(
        instrs: Vec<(u64, Instr)>,
        regs: Vec<(Reg, Val)>,
        entry: u64,
    ) -> (Program, Config) {
        let mut p = Program::new();
        p.entry = entry;
        for (n, i) in instrs {
            p.insert(n, i);
        }
        let rf: RegFile = regs.into_iter().collect();
        (p, Config::initial(rf, Default::default(), entry))
    }

    #[test]
    fn value_retire_updates_register_file() {
        let (p, cfg) = machine(
            vec![(
                1,
                Instr::Op {
                    dst: RA,
                    op: OpCode::Add,
                    args: vec![Operand::imm(4)],
                    next: 2,
                },
            )],
            vec![],
            1,
        );
        let mut m = Machine::new(&p, cfg);
        m.step(Directive::Fetch).unwrap();
        assert_eq!(
            m.step(Directive::Retire),
            Err(StepError::NotRetirable {
                index: 1,
                found: "op"
            })
        );
        m.step(Directive::Execute(1)).unwrap();
        m.step(Directive::Retire).unwrap();
        assert_eq!(m.cfg.regs.read(RA), Val::public(4));
        assert!(m.cfg.rob.is_empty());
    }

    #[test]
    fn store_retire_writes_memory_and_observes() {
        let (p, cfg) = machine(
            vec![(
                1,
                Instr::Store {
                    src: Operand::Imm(Val::secret(9)),
                    addr: vec![Operand::imm(0x41)],
                    next: 2,
                },
            )],
            vec![],
            1,
        );
        let mut m = Machine::new(&p, cfg);
        m.step(Directive::Fetch).unwrap();
        m.step(Directive::ExecuteValue(1)).unwrap();
        m.step(Directive::ExecuteAddr(1)).unwrap();
        let obs = m.step(Directive::Retire).unwrap();
        assert_eq!(
            obs,
            vec![Observation::Write {
                addr: 0x41,
                label: Label::Public
            }]
        );
        assert_eq!(m.cfg.mem.read(0x41), Val::secret(9));
    }

    #[test]
    fn retire_on_empty_buffer_fails() {
        let (p, cfg) = machine(vec![], vec![], 1);
        let mut m = Machine::new(&p, cfg);
        assert_eq!(m.step(Directive::Retire), Err(StepError::EmptyBuffer));
    }

    #[test]
    fn call_retires_as_a_group() {
        let (p, cfg) = machine(
            vec![(3, Instr::Call { callee: 5, ret: 4 })],
            vec![(Reg::RSP, Val::public(0x7c))],
            3,
        );
        let mut m = Machine::new(&p, cfg);
        m.step(Directive::Fetch).unwrap();
        // Unresolved expansion cannot retire yet.
        assert!(m.step(Directive::Retire).is_err());
        m.step(Directive::Execute(2)).unwrap(); // rsp = succ(rsp) = 0x7b
        m.step(Directive::ExecuteValue(3)).unwrap();
        m.step(Directive::ExecuteAddr(3)).unwrap();
        let obs = m.step(Directive::Retire).unwrap();
        assert_eq!(
            obs,
            vec![Observation::Write {
                addr: 0x7b,
                label: Label::Public
            }]
        );
        assert_eq!(m.cfg.regs.read(Reg::RSP), Val::public(0x7b));
        assert_eq!(m.cfg.mem.read(0x7b), Val::public(4));
        assert!(m.cfg.rob.is_empty());
    }

    #[test]
    fn ret_retires_as_a_group() {
        // Set up a stack with a return address, then run a ret whose RSB
        // prediction is attacker-supplied (empty RSB).
        let (p, mut cfg) = machine(
            vec![(7, Instr::Ret)],
            vec![(Reg::RSP, Val::public(0x7b))],
            7,
        );
        cfg.mem.write(0x7b, Val::public(4));
        let mut m = Machine::new(&p, cfg);
        m.step(Directive::FetchJump(4)).unwrap();
        m.step(Directive::Execute(2)).unwrap(); // rtmp = load [rsp] → 4
        m.step(Directive::Execute(3)).unwrap(); // rsp = pred(rsp) = 0x7c
        m.step(Directive::Execute(4)).unwrap(); // jmpi [rtmp] → 4, correct
        m.step(Directive::Retire).unwrap();
        assert_eq!(m.cfg.regs.read(Reg::RSP), Val::public(0x7c));
        assert!(m.cfg.rob.is_empty());
        // rtmp is scratch: the paper's ret-retire does not commit it.
        assert_eq!(m.cfg.regs.read(Reg::RTMP), Val::public(0));
    }
}
