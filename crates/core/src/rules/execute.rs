//! Execute-stage rules (§3.3 branches, §3.4 memory, §3.5 aliasing
//! prediction, Appendix A indirect jumps).

use crate::error::StepError;
use crate::machine::{Machine, StepObs};
use crate::observation::Observation;
use crate::transient::{LoadProvenance, StoreAddr, StoreData, Transient};
use crate::value::{Val, Word};

impl Machine<'_> {
    /// Dispatch `execute i` on the transient instruction at `i`.
    pub(crate) fn execute(&mut self, i: usize) -> Result<StepObs, StepError> {
        let entry = self
            .cfg
            .rob
            .get(i)
            .ok_or(StepError::NoSuchIndex(i))?
            .clone();
        match entry {
            Transient::Op { dst, op, args } => self.execute_op(i, dst, op, &args),
            Transient::Br {
                op,
                args,
                guess,
                tru,
                fls,
            } => self.execute_branch(i, op, &args, guess, tru, fls),
            Transient::Load { dst, addr, pp } => self.execute_load(i, dst, &addr, pp),
            Transient::LoadGuessed {
                dst,
                addr,
                fwd,
                from,
                pp,
            } => self.execute_guessed_load(i, dst, &addr, fwd, from, pp),
            Transient::Jmpi { args, guess } => self.execute_jmpi(i, &args, guess),
            other => Err(StepError::ExecuteMismatch {
                index: i,
                found: other.kind(),
            }),
        }
    }

    /// Execute an unresolved `op`, leaving a resolved value.
    fn execute_op(
        &mut self,
        i: usize,
        dst: crate::reg::Reg,
        op: crate::op::OpCode,
        args: &[crate::instr::Operand],
    ) -> Result<StepObs, StepError> {
        self.check_no_fence_below(i)?;
        let vals = self.resolve_list(i, args)?;
        let val = self.eval_op(op, &vals)?;
        self.cfg.rob.set(i, Transient::Value { dst, val });
        Ok(vec![])
    }

    /// `cond-execute-correct` / `cond-execute-incorrect`.
    fn execute_branch(
        &mut self,
        i: usize,
        op: crate::op::OpCode,
        args: &[crate::instr::Operand],
        guess: Word,
        tru: Word,
        fls: Word,
    ) -> Result<StepObs, StepError> {
        self.check_no_fence_below(i)?;
        let vals = self.resolve_list(i, args)?;
        let cond = self.eval_op(op, &vals)?;
        let target = if cond.as_bool() { tru } else { fls };
        let label = cond.label;
        if target == guess {
            // cond-execute-correct
            self.cfg.rob.set(i, Transient::Jump { target });
            Ok(vec![Machine::obs_jump(target, label)])
        } else {
            // cond-execute-incorrect: squash everything newer than the
            // branch, resolve the jump, and redirect the front end.
            self.rollback(i, target);
            self.cfg.rob.push(Transient::Jump { target });
            Ok(vec![Observation::Rollback, Machine::obs_jump(target, label)])
        }
    }

    /// `jmpi-execute-correct` / `jmpi-execute-incorrect` (Appendix A).
    fn execute_jmpi(
        &mut self,
        i: usize,
        args: &[crate::instr::Operand],
        guess: Word,
    ) -> Result<StepObs, StepError> {
        self.check_no_fence_below(i)?;
        let vals = self.resolve_list(i, args)?;
        let target_val = self.eval_addr(&vals);
        let target = target_val.bits;
        let label = target_val.label;
        if target == guess {
            self.cfg.rob.set(i, Transient::Jump { target });
            Ok(vec![Machine::obs_jump(target, label)])
        } else {
            self.rollback(i, target);
            self.cfg.rob.push(Transient::Jump { target });
            Ok(vec![Observation::Rollback, Machine::obs_jump(target, label)])
        }
    }

    /// `load-execute-nodep` / `load-execute-forward`.
    ///
    /// With no prior store resolved to the same address the load reads
    /// memory (`read a`); otherwise the *most recent* such store forwards
    /// its data (`fwd a`) — provided the data is resolved. Loads never
    /// wait for older stores with unresolved addresses: that is the
    /// speculation that enables Spectre v4.
    fn execute_load(
        &mut self,
        i: usize,
        dst: crate::reg::Reg,
        addr_ops: &[crate::instr::Operand],
        pp: Word,
    ) -> Result<StepObs, StepError> {
        self.check_no_fence_below(i)?;
        let vals = self.resolve_list(i, addr_ops)?;
        let addr = self.eval_addr(&vals);
        let a = addr.bits;
        let la = addr.label;
        // max(j) < i with buf(j) = store(_, a)
        let matching = self.latest_matching_store(i, a);
        match matching {
            None => {
                // load-execute-nodep
                let val = self.cfg.mem.read(a);
                self.cfg.rob.set(
                    i,
                    Transient::LoadedValue {
                        dst,
                        val,
                        prov: LoadProvenance { dep: None, addr: a },
                        pp,
                    },
                );
                Ok(vec![Observation::Read { addr: a, label: la }])
            }
            Some((j, store)) => match store.store_resolved_data() {
                Some(val) => {
                    // load-execute-forward
                    self.cfg.rob.set(
                        i,
                        Transient::LoadedValue {
                            dst,
                            val,
                            prov: LoadProvenance {
                                dep: Some(j),
                                addr: a,
                            },
                            pp,
                        },
                    );
                    Ok(vec![Observation::Fwd { addr: a, label: la }])
                }
                // The matching store's data is unresolved: neither load
                // rule applies, the load must wait.
                None => Err(StepError::StoreDataPending { index: i, store: j }),
            },
        }
    }

    /// The most recent store below `i` whose *resolved* address equals
    /// `a`, if any.
    fn latest_matching_store(&self, i: usize, a: Word) -> Option<(usize, Transient)> {
        let mut found = None;
        for (j, t) in self.cfg.rob.iter_below(i) {
            if t.store_resolved_addr().is_some_and(|av| av.bits == a) {
                found = Some((j, t.clone()));
            }
        }
        found
    }

    /// `store-execute-value`: resolve the data operand of the store at
    /// `i` (directive `execute i : value`).
    pub(crate) fn execute_store_value(&mut self, i: usize) -> Result<StepObs, StepError> {
        let entry = self
            .cfg
            .rob
            .get(i)
            .ok_or(StepError::NoSuchIndex(i))?
            .clone();
        let Transient::Store {
            data: StoreData::Pending(rv),
            addr,
        } = entry
        else {
            return Err(StepError::ExecuteMismatch {
                index: i,
                found: entry.kind(),
            });
        };
        self.check_no_fence_below(i)?;
        let val = self.resolve1(i, &rv)?;
        self.cfg.rob.set(
            i,
            Transient::Store {
                data: StoreData::Resolved(val),
                addr,
            },
        );
        Ok(vec![])
    }

    /// `store-execute-addr-ok` / `store-execute-addr-hazard`
    /// (directive `execute i : addr`).
    ///
    /// Resolving a store's address checks every *later* resolved load
    /// against it: a later load bound to the same address must have
    /// forwarded from this store or a younger one (`a_k = a ⇒ j_k ≥ i`,
    /// with `⊥ < i`), and a load that forwarded from this very store must
    /// be bound to this address (`j_k = i ⇒ a_k = a`). The first
    /// offending load (smallest `k`) triggers a rollback to its program
    /// point.
    pub(crate) fn execute_store_addr(&mut self, i: usize) -> Result<StepObs, StepError> {
        let entry = self
            .cfg
            .rob
            .get(i)
            .ok_or(StepError::NoSuchIndex(i))?
            .clone();
        let Transient::Store {
            data,
            addr: StoreAddr::Pending(ops),
        } = entry
        else {
            return Err(StepError::ExecuteMismatch {
                index: i,
                found: entry.kind(),
            });
        };
        self.check_no_fence_below(i)?;
        let vals = self.resolve_list(i, &ops)?;
        let addr = self.eval_addr(&vals);
        let a = addr.bits;
        let la = addr.label;
        // min(k) > i violating the forwarding-consistency conditions.
        let hazard = self.cfg.rob.iter_above(i).find_map(|(k, t)| match t {
            Transient::LoadedValue { prov, pp, .. } => {
                let same_addr_older_source = prov.addr == a && prov.dep_lt(i);
                let from_store_wrong_addr = prov.dep == Some(i) && prov.addr != a;
                if same_addr_older_source || from_store_wrong_addr {
                    Some((k, *pp))
                } else {
                    None
                }
            }
            _ => None,
        });
        match hazard {
            None => {
                // store-execute-addr-ok
                self.cfg.rob.set(
                    i,
                    Transient::Store {
                        data,
                        addr: StoreAddr::Resolved(Val::new(a, la)),
                    },
                );
                Ok(vec![Observation::Fwd { addr: a, label: la }])
            }
            Some((k, load_pp)) => {
                // store-execute-addr-hazard: squash from the offending
                // load, restart the front end there, but keep this
                // store's now-resolved address.
                self.rollback(k, load_pp);
                self.cfg.rob.set(
                    i,
                    Transient::Store {
                        data,
                        addr: StoreAddr::Resolved(Val::new(a, la)),
                    },
                );
                Ok(vec![
                    Observation::Rollback,
                    Observation::Fwd { addr: a, label: la },
                ])
            }
        }
    }

    /// `load-execute-forwarded-guessed` (§3.5, directive
    /// `execute i : fwd j`): the aliasing predictor forwards the resolved
    /// data of the store at `j` to the load at `i`, even though the
    /// store's address is still unknown.
    pub(crate) fn execute_forward_guess(
        &mut self,
        i: usize,
        j: usize,
    ) -> Result<StepObs, StepError> {
        let entry = self
            .cfg
            .rob
            .get(i)
            .ok_or(StepError::NoSuchIndex(i))?
            .clone();
        let Transient::Load { dst, addr, pp } = entry else {
            return Err(StepError::ExecuteMismatch {
                index: i,
                found: entry.kind(),
            });
        };
        self.check_no_fence_below(i)?;
        if j >= i {
            return Err(StepError::BadForwardSource { index: i, from: j });
        }
        let fwd = self
            .cfg
            .rob
            .get(j)
            .and_then(Transient::store_resolved_data)
            .ok_or(StepError::BadForwardSource { index: i, from: j })?;
        self.cfg.rob.set(
            i,
            Transient::LoadGuessed {
                dst,
                addr,
                fwd,
                from: j,
                pp,
            },
        );
        Ok(vec![])
    }

    /// Resolve a partially-resolved (alias-predicted) load: the four
    /// rules `load-execute-addr-{ok,hazard}` and
    /// `load-execute-addr-mem-{match,hazard}` of §3.5.
    fn execute_guessed_load(
        &mut self,
        i: usize,
        dst: crate::reg::Reg,
        addr_ops: &[crate::instr::Operand],
        fwd: Val,
        from: usize,
        pp: Word,
    ) -> Result<StepObs, StepError> {
        self.check_no_fence_below(i)?;
        let vals = self.resolve_list(i, addr_ops)?;
        let addr = self.eval_addr(&vals);
        let a = addr.bits;
        let la = addr.label;
        let originating_present = self.cfg.rob.get(from).is_some();
        if originating_present {
            // The originating store is still in the buffer.
            let store_addr = self
                .cfg
                .rob
                .get(from)
                .and_then(Transient::store_resolved_addr);
            let addr_consistent = match store_addr {
                None => true,          // still unresolved: optimistically fine
                Some(av) => av.bits == a, // resolved: must match
            };
            let intervening = self
                .cfg
                .rob
                .iter_above(from)
                .take_while(|&(k, _)| k < i)
                .any(|(_, t)| t.store_resolved_addr().is_some_and(|av| av.bits == a));
            if addr_consistent && !intervening {
                // load-execute-addr-ok
                self.cfg.rob.set(
                    i,
                    Transient::LoadedValue {
                        dst,
                        val: fwd,
                        prov: LoadProvenance {
                            dep: Some(from),
                            addr: a,
                        },
                        pp,
                    },
                );
                Ok(vec![Observation::Fwd { addr: a, label: la }])
            } else {
                // load-execute-addr-hazard: roll back to just before the
                // load.
                self.rollback(i, pp);
                Ok(vec![
                    Observation::Rollback,
                    Observation::Fwd { addr: a, label: la },
                ])
            }
        } else {
            // The originating store has retired; validate against memory.
            let prior_matching = self
                .cfg
                .rob
                .iter_below(i)
                .any(|(_, t)| t.store_resolved_addr().is_some_and(|av| av.bits == a));
            if prior_matching {
                // No rule of the paper covers this shape; the schedule is
                // stuck on this load.
                return Err(StepError::GuessedLoadBlocked { index: i });
            }
            let vmem = self.cfg.mem.read(a);
            if vmem == fwd {
                // load-execute-addr-mem-match
                self.cfg.rob.set(
                    i,
                    Transient::LoadedValue {
                        dst,
                        val: vmem,
                        prov: LoadProvenance { dep: None, addr: a },
                        pp,
                    },
                );
                Ok(vec![Observation::Read { addr: a, label: la }])
            } else {
                // load-execute-addr-mem-hazard
                self.rollback(i, pp);
                Ok(vec![
                    Observation::Rollback,
                    Observation::Read { addr: a, label: la },
                ])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::directive::Directive;
    use crate::instr::{Instr, Operand, Program};
    use crate::label::Label;
    use crate::op::OpCode;
    use crate::reg::names::*;
    use crate::reg::RegFile;

    /// Build a machine with the given instructions and registers.
    fn machine(
        instrs: Vec<(u64, Instr)>,
        regs: Vec<(crate::reg::Reg, Val)>,
        entry: u64,
    ) -> (Program, Config) {
        let mut p = Program::new();
        p.entry = entry;
        for (n, i) in instrs {
            p.insert(n, i);
        }
        let rf: RegFile = regs.into_iter().collect();
        (p, Config::initial(rf, Default::default(), entry))
    }

    #[test]
    fn op_execute_resolves_value() {
        let (p, cfg) = machine(
            vec![(
                1,
                Instr::Op {
                    dst: RA,
                    op: OpCode::Add,
                    args: vec![Operand::imm(2), Operand::imm(3)],
                    next: 2,
                },
            )],
            vec![],
            1,
        );
        let mut m = Machine::new(&p, cfg);
        m.step(Directive::Fetch).unwrap();
        let obs = m.step(Directive::Execute(1)).unwrap();
        assert!(obs.is_empty());
        assert_eq!(
            m.cfg.rob.get(1),
            Some(&Transient::Value {
                dst: RA,
                val: Val::public(5)
            })
        );
    }

    #[test]
    fn branch_correct_prediction_emits_jump() {
        // Figure 4(a): ra = 3, br(<, (2, ra), 9, 12) predicted true.
        let (p, cfg) = machine(
            vec![(
                4,
                Instr::Br {
                    op: OpCode::Lt,
                    args: vec![Operand::imm(2), RA.into()],
                    tru: 9,
                    fls: 12,
                },
            )],
            vec![(RA, Val::public(3))],
            4,
        );
        let mut m = Machine::new(&p, cfg);
        m.step(Directive::FetchBranch(true)).unwrap();
        let obs = m.step(Directive::Execute(1)).unwrap();
        assert_eq!(
            obs,
            vec![Observation::Jump {
                target: 9,
                label: Label::Public
            }]
        );
        assert_eq!(m.cfg.rob.get(1), Some(&Transient::Jump { target: 9 }));
    }

    #[test]
    fn branch_misprediction_rolls_back() {
        // Figure 4(b): predicted false (to 12) but 2 < 3 is true.
        let (p, cfg) = machine(
            vec![
                (
                    4,
                    Instr::Br {
                        op: OpCode::Lt,
                        args: vec![Operand::imm(2), RA.into()],
                        tru: 9,
                        fls: 12,
                    },
                ),
                (
                    12,
                    Instr::Op {
                        dst: RD,
                        op: OpCode::Mul,
                        args: vec![RG.into(), RH.into()],
                        next: 13,
                    },
                ),
            ],
            vec![(RA, Val::public(3))],
            4,
        );
        let mut m = Machine::new(&p, cfg);
        m.step(Directive::FetchBranch(false)).unwrap();
        m.step(Directive::Fetch).unwrap(); // speculative op at 12
        assert_eq!(m.cfg.rob.len(), 2);
        let obs = m.step(Directive::Execute(1)).unwrap();
        assert_eq!(
            obs,
            vec![
                Observation::Rollback,
                Observation::Jump {
                    target: 9,
                    label: Label::Public
                }
            ]
        );
        // The speculative op was squashed; the jump replaces the branch.
        assert_eq!(m.cfg.rob.len(), 1);
        assert_eq!(m.cfg.rob.get(1), Some(&Transient::Jump { target: 9 }));
        assert_eq!(m.cfg.pc, 9);
    }

    #[test]
    fn branch_condition_label_taints_jump() {
        let (p, cfg) = machine(
            vec![(
                1,
                Instr::Br {
                    op: OpCode::Gt,
                    args: vec![Operand::imm(4), RA.into()],
                    tru: 2,
                    fls: 4,
                },
            )],
            vec![(RA, Val::secret(1))],
            1,
        );
        let mut m = Machine::new(&p, cfg);
        m.step(Directive::FetchBranch(true)).unwrap();
        let obs = m.step(Directive::Execute(1)).unwrap();
        assert!(obs[0].is_secret(), "secret branch condition must leak");
    }

    #[test]
    fn load_reads_memory_when_no_matching_store() {
        let (p, mut cfg) = machine(
            vec![(
                1,
                Instr::Load {
                    dst: RB,
                    addr: vec![Operand::imm(0x40), RA.into()],
                    next: 2,
                },
            )],
            vec![(RA, Val::public(2))],
            1,
        );
        cfg.mem.write(0x42, Val::secret(99));
        let mut m = Machine::new(&p, cfg);
        m.step(Directive::Fetch).unwrap();
        let obs = m.step(Directive::Execute(1)).unwrap();
        assert_eq!(
            obs,
            vec![Observation::Read {
                addr: 0x42,
                label: Label::Public
            }]
        );
        match m.cfg.rob.get(1) {
            Some(Transient::LoadedValue { val, prov, .. }) => {
                assert_eq!(*val, Val::secret(99));
                assert_eq!(prov.dep, None);
                assert_eq!(prov.addr, 0x42);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn secret_address_taints_read_observation() {
        let (p, cfg) = machine(
            vec![(
                1,
                Instr::Load {
                    dst: RB,
                    addr: vec![Operand::imm(0x44), RA.into()],
                    next: 2,
                },
            )],
            vec![(RA, Val::secret(3))],
            1,
        );
        let mut m = Machine::new(&p, cfg);
        m.step(Directive::Fetch).unwrap();
        let obs = m.step(Directive::Execute(1)).unwrap();
        assert!(obs[0].is_secret());
    }

    #[test]
    fn fence_blocks_younger_execution() {
        let (p, cfg) = machine(
            vec![
                (1, Instr::Fence { next: 2 }),
                (
                    2,
                    Instr::Op {
                        dst: RA,
                        op: OpCode::Add,
                        args: vec![Operand::imm(1)],
                        next: 3,
                    },
                ),
            ],
            vec![],
            1,
        );
        let mut m = Machine::new(&p, cfg);
        m.step(Directive::Fetch).unwrap();
        m.step(Directive::Fetch).unwrap();
        assert_eq!(
            m.step(Directive::Execute(2)),
            Err(StepError::FenceBlocked { index: 2 })
        );
    }

    #[test]
    fn store_value_then_addr_resolution() {
        let (p, cfg) = machine(
            vec![(
                1,
                Instr::Store {
                    src: RB.into(),
                    addr: vec![Operand::imm(0x40), RA.into()],
                    next: 2,
                },
            )],
            vec![(RA, Val::public(2)), (RB, Val::secret(7))],
            1,
        );
        let mut m = Machine::new(&p, cfg);
        m.step(Directive::Fetch).unwrap();
        assert!(m.step(Directive::ExecuteValue(1)).unwrap().is_empty());
        let obs = m.step(Directive::ExecuteAddr(1)).unwrap();
        assert_eq!(
            obs,
            vec![Observation::Fwd {
                addr: 0x42,
                label: Label::Public
            }]
        );
        match m.cfg.rob.get(1) {
            Some(Transient::Store { data, addr }) => {
                assert_eq!(data.resolved(), Some(Val::secret(7)));
                assert_eq!(addr.resolved(), Some(Val::public(0x42)));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Re-resolving is not applicable.
        assert!(m.step(Directive::ExecuteValue(1)).is_err());
        assert!(m.step(Directive::ExecuteAddr(1)).is_err());
    }

    #[test]
    fn pending_operand_blocks_execution() {
        let (p, cfg) = machine(
            vec![
                (
                    1,
                    Instr::Op {
                        dst: RA,
                        op: OpCode::Add,
                        args: vec![Operand::imm(1)],
                        next: 2,
                    },
                ),
                (
                    2,
                    Instr::Op {
                        dst: RB,
                        op: OpCode::Add,
                        args: vec![RA.into(), Operand::imm(1)],
                        next: 3,
                    },
                ),
            ],
            vec![],
            1,
        );
        let mut m = Machine::new(&p, cfg);
        m.step(Directive::Fetch).unwrap();
        m.step(Directive::Fetch).unwrap();
        assert_eq!(
            m.step(Directive::Execute(2)),
            Err(StepError::OperandsPending { index: 2 })
        );
        m.step(Directive::Execute(1)).unwrap();
        m.step(Directive::Execute(2)).unwrap();
    }
}
