//! Opcodes and the evaluation function `J·K`.
//!
//! The paper keeps the set of arithmetic/Boolean operators abstract (`op`
//! "specifies opcode"). We provide the operators its examples and our case
//! studies need, including a constant-time select (`Csel`) standing in for
//! the `cmov`-style instructions the FaCT compiler emits.

use crate::label::Label;
use crate::value::{Val, Word};
use std::fmt;

/// An operator usable in `op` instructions and as the Boolean operator of
/// conditional branches.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum OpCode {
    /// Wrapping addition of all operands (identity 0).
    Add,
    /// Wrapping subtraction, left-associated over the operands.
    Sub,
    /// Wrapping multiplication of all operands (identity 1).
    Mul,
    /// Bitwise and (identity all-ones).
    And,
    /// Bitwise or (identity 0).
    Or,
    /// Bitwise xor (identity 0).
    Xor,
    /// Left shift: `v0 << (v1 mod 64)`.
    Shl,
    /// Logical right shift: `v0 >> (v1 mod 64)`.
    Shr,
    /// Bitwise complement of the single operand.
    Not,
    /// Equality of `v0` and `v1` (1 or 0).
    Eq,
    /// Inequality of `v0` and `v1`.
    Ne,
    /// Unsigned `v0 < v1`.
    Lt,
    /// Unsigned `v0 <= v1`.
    Le,
    /// Unsigned `v0 > v1`. Figure 1's bounds check is `br(>, (4, ra), ...)`:
    /// operand order follows the paper, so `Gt(4, ra)` is `4 > ra`.
    Gt,
    /// Unsigned `v0 >= v1`.
    Ge,
    /// Signed `v0 < v1`.
    SLt,
    /// Signed `v0 <= v1`.
    SLe,
    /// Constant-time select: `v0 != 0 ? v1 : v2`. The label of the result
    /// joins all three operand labels, so selecting on a secret taints the
    /// result rather than the control flow.
    Csel,
    /// Identity on the single operand (register-to-register move).
    Mov,
    /// The abstract stack-successor operation `succ` of Appendix A.
    Succ,
    /// The abstract stack-predecessor operation `pred` of Appendix A.
    Pred,
    /// The abstract address computation `addr`. Exposed as an opcode so the
    /// retpoline gadget of Figure 13 (`rd = op(addr, [12, rb])`) can be
    /// written; evaluates with [`crate::params::AddrMode::Sum`] semantics.
    Addr,
}

impl OpCode {
    /// Arity check: `None` means variadic (at least one operand).
    pub fn arity(self) -> Option<usize> {
        use OpCode::*;
        match self {
            Not | Mov | Succ | Pred => Some(1),
            Shl | Shr | Eq | Ne | Lt | Le | Gt | Ge | SLt | SLe => Some(2),
            Csel => Some(3),
            Add | Sub | Mul | And | Or | Xor | Addr => None,
        }
    }

    /// `true` for operators producing a 0/1 Boolean, usable in `br`.
    pub fn is_boolean(self) -> bool {
        use OpCode::*;
        matches!(self, Eq | Ne | Lt | Le | Gt | Ge | SLt | SLe)
    }

    /// The mnemonic used by the assembler and `Display`.
    pub fn mnemonic(self) -> &'static str {
        use OpCode::*;
        match self {
            Add => "add",
            Sub => "sub",
            Mul => "mul",
            And => "and",
            Or => "or",
            Xor => "xor",
            Shl => "shl",
            Shr => "shr",
            Not => "not",
            Eq => "eq",
            Ne => "ne",
            Lt => "lt",
            Le => "le",
            Gt => "gt",
            Ge => "ge",
            SLt => "slt",
            SLe => "sle",
            Csel => "csel",
            Mov => "mov",
            Succ => "succ",
            Pred => "pred",
            Addr => "addr",
        }
    }

    /// Parse a mnemonic produced by [`OpCode::mnemonic`].
    pub fn parse(s: &str) -> Option<OpCode> {
        use OpCode::*;
        Some(match s {
            "add" => Add,
            "sub" => Sub,
            "mul" => Mul,
            "and" => And,
            "or" => Or,
            "xor" => Xor,
            "shl" => Shl,
            "shr" => Shr,
            "not" => Not,
            "eq" => Eq,
            "ne" => Ne,
            "lt" => Lt,
            "le" => Le,
            "gt" => Gt,
            "ge" => Ge,
            "slt" => SLt,
            "sle" => SLe,
            "csel" => Csel,
            "mov" => Mov,
            "succ" => Succ,
            "pred" => Pred,
            "addr" => Addr,
            _ => return None,
        })
    }

    /// All opcodes, for exhaustive tests and fuzzing.
    pub const ALL: [OpCode; 22] = [
        OpCode::Add,
        OpCode::Sub,
        OpCode::Mul,
        OpCode::And,
        OpCode::Or,
        OpCode::Xor,
        OpCode::Shl,
        OpCode::Shr,
        OpCode::Not,
        OpCode::Eq,
        OpCode::Ne,
        OpCode::Lt,
        OpCode::Le,
        OpCode::Gt,
        OpCode::Ge,
        OpCode::SLt,
        OpCode::SLe,
        OpCode::Csel,
        OpCode::Mov,
        OpCode::Succ,
        OpCode::Pred,
        OpCode::Addr,
    ];
}

impl fmt::Display for OpCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Errors from [`eval`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EvalError {
    /// The operand list length does not match the opcode's arity.
    Arity {
        /// Opcode being evaluated.
        op: OpCode,
        /// Number of operands supplied.
        got: usize,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Arity { op, got } => {
                write!(f, "opcode {op} applied to {got} operand(s)")
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// The evaluation function `Jop(v⃗ℓ)K`.
///
/// The result's label is the join of every operand label: evaluation never
/// declassifies. `succ`/`pred` use the stack discipline's word size 8 with
/// a downward-growing stack by default; [`crate::params::StackDiscipline`]
/// callers evaluate those two opcodes themselves.
///
/// # Errors
///
/// Returns [`EvalError::Arity`] when the operand count does not match
/// [`OpCode::arity`] (or is zero for variadic opcodes).
pub fn eval(op: OpCode, args: &[Val]) -> Result<Val, EvalError> {
    if let Some(n) = op.arity() {
        if args.len() != n {
            return Err(EvalError::Arity { op, got: args.len() });
        }
    } else if args.is_empty() {
        return Err(EvalError::Arity { op, got: 0 });
    }
    let label = Label::join_all(args.iter().map(|v| v.label));
    let bits = eval_bits(op, args);
    Ok(Val::new(bits, label))
}

fn eval_bits(op: OpCode, args: &[Val]) -> Word {
    use OpCode::*;
    let a = |i: usize| args[i].bits;
    match op {
        Add | Addr => args.iter().fold(0u64, |acc, v| acc.wrapping_add(v.bits)),
        Sub => args[1..]
            .iter()
            .fold(a(0), |acc, v| acc.wrapping_sub(v.bits)),
        Mul => args.iter().fold(1u64, |acc, v| acc.wrapping_mul(v.bits)),
        And => args.iter().fold(u64::MAX, |acc, v| acc & v.bits),
        Or => args.iter().fold(0u64, |acc, v| acc | v.bits),
        Xor => args.iter().fold(0u64, |acc, v| acc ^ v.bits),
        Shl => a(0).wrapping_shl(a(1) as u32 & 63),
        Shr => a(0).wrapping_shr(a(1) as u32 & 63),
        Not => !a(0),
        Eq => (a(0) == a(1)) as u64,
        Ne => (a(0) != a(1)) as u64,
        Lt => (a(0) < a(1)) as u64,
        Le => (a(0) <= a(1)) as u64,
        Gt => (a(0) > a(1)) as u64,
        Ge => (a(0) >= a(1)) as u64,
        SLt => ((a(0) as i64) < (a(1) as i64)) as u64,
        SLe => ((a(0) as i64) <= (a(1) as i64)) as u64,
        Csel => {
            if a(0) != 0 {
                a(1)
            } else {
                a(2)
            }
        }
        Mov => a(0),
        Succ => a(0).wrapping_sub(8),
        Pred => a(0).wrapping_add(8),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: Word) -> Val {
        Val::public(x)
    }

    #[test]
    fn arithmetic_basics() {
        assert_eq!(eval(OpCode::Add, &[p(2), p(3), p(4)]).unwrap().bits, 9);
        assert_eq!(eval(OpCode::Sub, &[p(10), p(3), p(2)]).unwrap().bits, 5);
        assert_eq!(eval(OpCode::Mul, &[p(3), p(4)]).unwrap().bits, 12);
        assert_eq!(eval(OpCode::Xor, &[p(0b101), p(0b011)]).unwrap().bits, 0b110);
        assert_eq!(eval(OpCode::Not, &[p(0)]).unwrap().bits, u64::MAX);
        assert_eq!(eval(OpCode::Shl, &[p(1), p(4)]).unwrap().bits, 16);
        assert_eq!(eval(OpCode::Shr, &[p(16), p(4)]).unwrap().bits, 1);
    }

    #[test]
    fn wrapping_never_panics() {
        assert_eq!(
            eval(OpCode::Add, &[p(u64::MAX), p(1)]).unwrap().bits,
            0
        );
        assert_eq!(
            eval(OpCode::Mul, &[p(u64::MAX), p(2)]).unwrap().bits,
            u64::MAX - 1
        );
        assert_eq!(eval(OpCode::Shl, &[p(1), p(200)]).unwrap().bits, 1 << (200 & 63));
    }

    #[test]
    fn comparisons_follow_paper_operand_order() {
        // Figure 1: br(>, (4, ra), ...) with ra = 9 takes the false branch.
        assert_eq!(eval(OpCode::Gt, &[p(4), p(9)]).unwrap().bits, 0);
        assert_eq!(eval(OpCode::Gt, &[p(4), p(3)]).unwrap().bits, 1);
        assert_eq!(eval(OpCode::SLt, &[p(u64::MAX), p(0)]).unwrap().bits, 1);
        assert_eq!(eval(OpCode::Lt, &[p(u64::MAX), p(0)]).unwrap().bits, 0);
    }

    #[test]
    fn csel_is_data_not_control() {
        let sel = eval(OpCode::Csel, &[Val::secret(1), p(11), p(22)]).unwrap();
        assert_eq!(sel.bits, 11);
        assert!(sel.label.is_secret(), "selector label must taint result");
        let sel0 = eval(OpCode::Csel, &[p(0), p(11), p(22)]).unwrap();
        assert_eq!(sel0.bits, 22);
        assert!(sel0.label.is_public());
    }

    #[test]
    fn labels_join_across_operands() {
        let v = eval(OpCode::Add, &[p(1), Val::secret(2)]).unwrap();
        assert!(v.label.is_secret());
    }

    #[test]
    fn arity_errors() {
        assert!(eval(OpCode::Not, &[p(1), p(2)]).is_err());
        assert!(eval(OpCode::Add, &[]).is_err());
        assert!(eval(OpCode::Csel, &[p(1)]).is_err());
        let e = eval(OpCode::Eq, &[p(1)]).unwrap_err();
        assert_eq!(e.to_string(), "opcode eq applied to 1 operand(s)");
    }

    #[test]
    fn succ_pred_default_stack() {
        assert_eq!(eval(OpCode::Succ, &[p(0x80)]).unwrap().bits, 0x78);
        assert_eq!(eval(OpCode::Pred, &[p(0x78)]).unwrap().bits, 0x80);
    }

    #[test]
    fn mnemonics_round_trip() {
        for op in OpCode::ALL {
            assert_eq!(OpCode::parse(op.mnemonic()), Some(op));
        }
        assert_eq!(OpCode::parse("bogus"), None);
    }

    #[test]
    fn boolean_classification() {
        assert!(OpCode::Gt.is_boolean());
        assert!(!OpCode::Add.is_boolean());
        assert!(!OpCode::Csel.is_boolean());
    }
}
