//! Labeled machine values (`vℓ` in the paper).

use crate::label::{Label, Lattice};
use std::fmt;

/// A machine word. The paper leaves the value domain `V` abstract; we use
/// 64-bit words, which is wide enough for every example and case study.
pub type Word = u64;

/// A program point (`n` in the paper): an address in instruction space.
pub type Pc = u64;

/// A labeled value `vℓ`: a machine word together with its security label.
///
/// # Examples
///
/// ```
/// use sct_core::value::Val;
/// use sct_core::label::Label;
/// let v = Val::public(9);
/// let s = Val::secret(0xdead);
/// assert_eq!(v.bits, 9);
/// assert!(s.label.is_secret());
/// assert!(v.join_label(s.label).label.is_secret());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Val {
    /// The word contents.
    pub bits: Word,
    /// The security label attached to the word.
    pub label: Label,
}

impl Val {
    /// A fresh labeled value.
    #[inline]
    pub const fn new(bits: Word, label: Label) -> Self {
        Val { bits, label }
    }

    /// A public value (the paper omits the `pub` subscript for these).
    #[inline]
    pub const fn public(bits: Word) -> Self {
        Val::new(bits, Label::Public)
    }

    /// A secret value (`v_sec`).
    #[inline]
    pub const fn secret(bits: Word) -> Self {
        Val::new(bits, Label::Secret)
    }

    /// The same bits with the label raised by `other` (`v_{ℓ ⊔ ℓ'}`).
    #[inline]
    pub fn join_label(self, other: Label) -> Self {
        Val::new(self.bits, self.label.join(other))
    }

    /// Interpret the word as a boolean (`0` is false, anything else true).
    #[inline]
    pub fn as_bool(self) -> bool {
        self.bits != 0
    }

    /// Interpret the word as a signed 64-bit integer.
    #[inline]
    pub fn as_i64(self) -> i64 {
        self.bits as i64
    }
}

impl Default for Val {
    /// The default value is public zero, matching uninitialized registers
    /// in the examples.
    fn default() -> Self {
        Val::public(0)
    }
}

impl From<Word> for Val {
    /// Bare words are public, matching the paper's convention of omitting
    /// public label subscripts.
    fn from(bits: Word) -> Self {
        Val::public(bits)
    }
}

impl fmt::Display for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.bits, self.label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_labels() {
        assert!(Val::public(1).label.is_public());
        assert!(Val::secret(1).label.is_secret());
        assert_eq!(Val::from(7u64), Val::public(7));
        assert_eq!(Val::default(), Val::public(0));
    }

    #[test]
    fn join_label_raises_but_never_lowers() {
        let v = Val::public(3).join_label(Label::Secret);
        assert!(v.label.is_secret());
        let w = Val::secret(3).join_label(Label::Public);
        assert!(w.label.is_secret());
        assert_eq!(v.bits, 3);
    }

    #[test]
    fn bool_and_signed_views() {
        assert!(!Val::public(0).as_bool());
        assert!(Val::public(2).as_bool());
        assert_eq!(Val::public(u64::MAX).as_i64(), -1);
    }

    #[test]
    fn display_shows_label_subscript() {
        assert_eq!(Val::public(9).to_string(), "9pub");
        assert_eq!(Val::secret(4).to_string(), "4sec");
    }
}
