//! Security labels.
//!
//! The paper annotates every value with a label drawn from "a lattice of
//! security labels with join operator ⊔". All of the paper's examples (and
//! the speculative constant-time definition itself) use the two-point
//! lattice `public ⊑ secret`; we implement that lattice directly and keep
//! the lattice operations behind the [`Lattice`] trait so richer lattices
//! can be slotted in later.

use std::fmt;

/// A join-semilattice of security labels.
///
/// Laws (checked by property tests in this module):
/// * `join` is associative, commutative, and idempotent;
/// * `bottom` is the identity of `join`.
pub trait Lattice: Copy + Eq + fmt::Debug {
    /// The least element (most permissive label).
    const BOTTOM: Self;
    /// Least upper bound.
    fn join(self, other: Self) -> Self;
    /// Lattice ordering: `self ⊑ other`.
    fn flows_to(self, other: Self) -> bool {
        self.join(other) == other
    }
}

/// The two-point security lattice used throughout the paper's examples.
///
/// `Public ⊑ Secret`. An observation that carries a [`Label::Secret`]
/// label witnesses a speculative constant-time violation (Corollary B.10).
///
/// # Examples
///
/// ```
/// use sct_core::label::{Label, Lattice};
/// assert_eq!(Label::Public.join(Label::Secret), Label::Secret);
/// assert!(Label::Public.flows_to(Label::Secret));
/// assert!(!Label::Secret.flows_to(Label::Public));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub enum Label {
    /// Attacker-observable data; leaking it is fine.
    #[default]
    Public,
    /// Confidential data; any observation carrying this label is a leak.
    Secret,
}

impl Lattice for Label {
    const BOTTOM: Self = Label::Public;

    #[inline]
    fn join(self, other: Self) -> Self {
        match (self, other) {
            (Label::Public, Label::Public) => Label::Public,
            _ => Label::Secret,
        }
    }
}

impl Label {
    /// `true` iff the label is [`Label::Secret`].
    #[inline]
    pub fn is_secret(self) -> bool {
        matches!(self, Label::Secret)
    }

    /// `true` iff the label is [`Label::Public`].
    #[inline]
    pub fn is_public(self) -> bool {
        matches!(self, Label::Public)
    }

    /// Join of an iterator of labels (`⊔ ℓ⃗`), [`Label::Public`] when empty.
    pub fn join_all<I: IntoIterator<Item = Label>>(labels: I) -> Label {
        labels
            .into_iter()
            .fold(Label::Public, |acc, l| acc.join(l))
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Label::Public => write!(f, "pub"),
            Label::Secret => write!(f, "sec"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Label; 2] = [Label::Public, Label::Secret];

    #[test]
    fn join_is_commutative_and_associative() {
        for a in ALL {
            for b in ALL {
                assert_eq!(a.join(b), b.join(a));
                for c in ALL {
                    assert_eq!(a.join(b).join(c), a.join(b.join(c)));
                }
            }
        }
    }

    #[test]
    fn join_is_idempotent_with_bottom_identity() {
        for a in ALL {
            assert_eq!(a.join(a), a);
            assert_eq!(a.join(Label::BOTTOM), a);
            assert_eq!(Label::BOTTOM.join(a), a);
        }
    }

    #[test]
    fn flows_to_is_the_expected_order() {
        assert!(Label::Public.flows_to(Label::Public));
        assert!(Label::Public.flows_to(Label::Secret));
        assert!(Label::Secret.flows_to(Label::Secret));
        assert!(!Label::Secret.flows_to(Label::Public));
    }

    #[test]
    fn join_all_of_empty_is_public() {
        assert_eq!(Label::join_all(std::iter::empty()), Label::Public);
        assert_eq!(
            Label::join_all([Label::Public, Label::Secret, Label::Public]),
            Label::Secret
        );
    }

    #[test]
    fn display_matches_paper_subscripts() {
        assert_eq!(Label::Public.to_string(), "pub");
        assert_eq!(Label::Secret.to_string(), "sec");
    }
}
