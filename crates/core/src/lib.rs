//! # sct-core
//!
//! Reference implementation of the speculative operational semantics and
//! the *speculative constant-time* (SCT) security definition from
//! **"Constant-Time Foundations for the New Spectre Era"** (Cauligi,
//! Disselkoen, v. Gleissenthall, Tullsen, Stefan, Rezk, Barthe —
//! PLDI 2020).
//!
//! The semantics models an abstract three-stage machine:
//!
//! * **fetch** moves physical instructions ([`instr::Instr`]) into the
//!   reorder buffer ([`rob::Rob`]) as transient instructions
//!   ([`transient::Transient`]), speculating through branches, indirect
//!   jumps, and returns;
//! * **execute** resolves transient instructions out of order, forwarding
//!   store data to loads and rolling back on mispredictions and memory
//!   hazards;
//! * **retire** commits the oldest instruction to architectural state.
//!
//! All microarchitectural non-determinism (branch prediction, scheduling,
//! alias prediction) is resolved by attacker **directives**
//! ([`directive::Directive`]); every step emits the **observations**
//! ([`observation::Observation`]) a cache/timing attacker can see. A
//! program is *speculatively constant-time* when low-equivalent
//! configurations produce identical observation traces under every
//! schedule ([`sct`]).
//!
//! # Quick example
//!
//! The Spectre v1 gadget of the paper's Figure 1 leaks a secret under
//! speculation even though it is sequentially constant-time:
//!
//! ```
//! use sct_core::examples::fig1;
//! use sct_core::directive::{Directive::*, Schedule};
//! use sct_core::machine::Machine;
//!
//! let (program, config) = fig1();
//! let schedule: Schedule =
//!     [FetchBranch(true), Fetch, Fetch, Execute(2), Execute(3)]
//!         .into_iter()
//!         .collect();
//! let mut m = Machine::new(&program, config);
//! let out = m.run(&schedule).unwrap();
//! assert!(out.trace.first_secret().is_some(), "Spectre v1 leaks");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod directive;
pub mod error;
pub mod examples;
pub mod instr;
pub mod label;
pub mod machine;
pub mod mem;
pub mod observation;
pub mod op;
pub mod params;
pub mod proggen;
pub mod reg;
pub mod resolve;
pub mod rob;
pub mod rsb;
mod rules;
pub mod sched;
pub mod sct;
pub mod transient;
pub mod value;

pub use config::Config;
pub use directive::{Directive, Schedule};
pub use error::{ScheduleError, StepError};
pub use instr::{Instr, Operand, Program};
pub use label::{Label, Lattice};
pub use machine::{Machine, RunOutcome};
pub use mem::Memory;
pub use observation::{Observation, Trace};
pub use op::OpCode;
pub use params::{AddrMode, Params, RsbPolicy, StackDiscipline};
pub use reg::{Reg, RegFile};
pub use value::{Pc, Val, Word};
