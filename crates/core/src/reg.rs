//! Register names and the register file (`ρ : R ⇀ V`).

use crate::value::Val;
use std::collections::BTreeMap;
use std::fmt;

/// A register name.
///
/// The paper uses a finite set `R` of register names (`ra`, `rb`, ...,
/// plus the distinguished stack pointer `rsp` and scratch register `rtmp`
/// used by the call/return semantics of Appendix A). We represent names as
/// small integers; [`Reg::RSP`] and [`Reg::RTMP`] are reserved.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Reg(pub u16);

impl Reg {
    /// The stack-pointer register used by `call`/`ret` (Appendix A).
    pub const RSP: Reg = Reg(u16::MAX);
    /// The scratch register used by the `ret` expansion (Appendix A).
    pub const RTMP: Reg = Reg(u16::MAX - 1);

    /// General-purpose register `r<i>`.
    ///
    /// # Panics
    ///
    /// Panics if `i` collides with the reserved [`Reg::RSP`]/[`Reg::RTMP`]
    /// encodings.
    pub fn gpr(i: u16) -> Reg {
        assert!(i < u16::MAX - 1, "register index collides with rsp/rtmp");
        Reg(i)
    }

    /// `true` for `rsp`/`rtmp`.
    pub fn is_reserved(self) -> bool {
        self == Reg::RSP || self == Reg::RTMP
    }

    /// Conventional names `ra..rz` for the first 26 registers, then `r<i>`.
    pub fn name(self) -> String {
        match self {
            Reg::RSP => "rsp".to_string(),
            Reg::RTMP => "rtmp".to_string(),
            Reg(i) if i < 26 => format!("r{}", (b'a' + i as u8) as char),
            Reg(i) => format!("r{i}"),
        }
    }

    /// Parse a conventional register name (`ra`..`rz`, `r<i>`, `rsp`,
    /// `rtmp`). Returns `None` for anything else.
    pub fn parse(name: &str) -> Option<Reg> {
        match name {
            "rsp" => return Some(Reg::RSP),
            "rtmp" => return Some(Reg::RTMP),
            _ => {}
        }
        let rest = name.strip_prefix('r')?;
        if rest.len() == 1 {
            let c = rest.bytes().next()?;
            if c.is_ascii_lowercase() {
                return Some(Reg((c - b'a') as u16));
            }
        }
        rest.parse::<u16>().ok().filter(|&i| i < u16::MAX - 1).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Handy constants for the registers the paper's figures use.
pub mod names {
    use super::Reg;
    /// `ra`
    pub const RA: Reg = Reg(0);
    /// `rb`
    pub const RB: Reg = Reg(1);
    /// `rc`
    pub const RC: Reg = Reg(2);
    /// `rd`
    pub const RD: Reg = Reg(3);
    /// `re`
    pub const RE: Reg = Reg(4);
    /// `rf`
    pub const RF: Reg = Reg(5);
    /// `rg`
    pub const RG: Reg = Reg(6);
    /// `rh`
    pub const RH: Reg = Reg(7);
}

/// The register file `ρ : R ⇀ V`, a partial map from names to labeled
/// values. Reads of unmapped registers yield public zero, mirroring the
/// examples which leave most registers implicit.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct RegFile {
    map: BTreeMap<Reg, Val>,
}

impl RegFile {
    /// An empty register file.
    pub fn new() -> Self {
        RegFile::default()
    }

    /// Read `ρ(r)`; unmapped registers read as public zero.
    pub fn read(&self, r: Reg) -> Val {
        self.map.get(&r).copied().unwrap_or_default()
    }

    /// Write `ρ[r ↦ v]`.
    pub fn write(&mut self, r: Reg, v: Val) {
        self.map.insert(r, v);
    }

    /// Iterate over the explicitly-mapped registers in name order.
    pub fn iter(&self) -> impl Iterator<Item = (Reg, Val)> + '_ {
        self.map.iter().map(|(&r, &v)| (r, v))
    }

    /// Number of explicitly-mapped registers.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when no register has been written.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Two register files agree on public data: every register that is
    /// public in either file must be public-and-equal in both. This is the
    /// register part of the paper's `≃pub` low-equivalence.
    pub fn low_equivalent(&self, other: &RegFile) -> bool {
        let regs = self.map.keys().chain(other.map.keys());
        for &r in regs {
            let a = self.read(r);
            let b = other.read(r);
            if a.label != b.label {
                return false;
            }
            if a.label.is_public() && a.bits != b.bits {
                return false;
            }
        }
        true
    }
}

impl FromIterator<(Reg, Val)> for RegFile {
    fn from_iter<I: IntoIterator<Item = (Reg, Val)>>(iter: I) -> Self {
        RegFile {
            map: iter.into_iter().collect(),
        }
    }
}

impl Extend<(Reg, Val)> for RegFile {
    fn extend<I: IntoIterator<Item = (Reg, Val)>>(&mut self, iter: I) {
        self.map.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::names::*;
    use super::*;
    use crate::label::Label;

    #[test]
    fn names_round_trip() {
        for r in [RA, RB, RC, Reg(25), Reg(31), Reg::RSP, Reg::RTMP] {
            assert_eq!(Reg::parse(&r.name()), Some(r), "{}", r.name());
        }
        assert_eq!(Reg::parse("ra"), Some(RA));
        assert_eq!(Reg::parse("rz"), Some(Reg(25)));
        assert_eq!(Reg::parse("r42"), Some(Reg(42)));
        assert_eq!(Reg::parse("sp"), None);
        assert_eq!(Reg::parse("rxx"), None);
    }

    #[test]
    fn unmapped_registers_read_zero() {
        let rf = RegFile::new();
        assert_eq!(rf.read(RA), Val::public(0));
        assert!(rf.is_empty());
    }

    #[test]
    fn write_then_read() {
        let mut rf = RegFile::new();
        rf.write(RA, Val::secret(9));
        assert_eq!(rf.read(RA), Val::secret(9));
        assert_eq!(rf.len(), 1);
    }

    #[test]
    fn low_equivalence_ignores_secret_bits() {
        let a: RegFile = [(RA, Val::public(1)), (RB, Val::secret(10))]
            .into_iter()
            .collect();
        let b: RegFile = [(RA, Val::public(1)), (RB, Val::secret(20))]
            .into_iter()
            .collect();
        assert!(a.low_equivalent(&b));
    }

    #[test]
    fn low_equivalence_detects_public_mismatch() {
        let a: RegFile = [(RA, Val::public(1))].into_iter().collect();
        let b: RegFile = [(RA, Val::public(2))].into_iter().collect();
        assert!(!a.low_equivalent(&b));
    }

    #[test]
    fn low_equivalence_detects_label_mismatch() {
        let a: RegFile = [(RA, Val::new(1, Label::Public))].into_iter().collect();
        let b: RegFile = [(RA, Val::new(1, Label::Secret))].into_iter().collect();
        assert!(!a.low_equivalent(&b));
    }

    #[test]
    fn gpr_rejects_reserved_indices() {
        let r = std::panic::catch_unwind(|| Reg::gpr(u16::MAX));
        assert!(r.is_err());
    }
}
