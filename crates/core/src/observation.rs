//! Observations (leakage) and traces.
//!
//! The semantics does not model caches or predictors; instead every step
//! may emit observations capturing exactly what a cache/timing attacker
//! can learn: memory reads and writes, store-to-load forwards, resolved
//! control flow, and rollbacks (§3.2). Speculative constant-time asks
//! that low-equivalent configurations produce *identical* observation
//! traces; by Corollary B.10 it suffices to check that no observation
//! carries a secret label.

use crate::label::Label;
use crate::value::{Pc, Word};
use std::fmt;

/// A single observation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Observation {
    /// `read aℓ` — a load accessed memory address `a`.
    Read {
        /// The address read.
        addr: Word,
        /// Label of the address computation (`ℓa = ⊔ ℓ⃗`).
        label: Label,
    },
    /// `write aℓ` — a retiring store wrote address `a`.
    Write {
        /// The address written.
        addr: Word,
        /// Label of the address computation.
        label: Label,
    },
    /// `fwd aℓ` — a load was satisfied by store-forwarding for address
    /// `a` (observable as the *absence* of a memory access), or a store
    /// resolved its address `a`.
    Fwd {
        /// The forwarded address.
        addr: Word,
        /// Label of the address computation.
        label: Label,
    },
    /// `jump nℓ` — control flow resolved to program point `n`.
    Jump {
        /// The resolved target.
        target: Pc,
        /// Label of the condition/target computation.
        label: Label,
    },
    /// `rollback` — misspeculation or a memory hazard squashed the
    /// buffer (observable through instruction timing).
    Rollback,
}

impl Observation {
    /// The label the observation leaks at, if it carries one
    /// (`rollback` does not carry data).
    pub fn label(self) -> Option<Label> {
        match self {
            Observation::Read { label, .. }
            | Observation::Write { label, .. }
            | Observation::Fwd { label, .. }
            | Observation::Jump { label, .. } => Some(label),
            Observation::Rollback => None,
        }
    }

    /// `true` iff this observation leaks secret-labeled data — a
    /// speculative constant-time violation by Corollary B.10.
    pub fn is_secret(self) -> bool {
        self.label().is_some_and(Label::is_secret)
    }
}

impl fmt::Display for Observation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Observation::Read { addr, label } => write!(f, "read {addr:#x}{label}"),
            Observation::Write { addr, label } => write!(f, "write {addr:#x}{label}"),
            Observation::Fwd { addr, label } => write!(f, "fwd {addr:#x}{label}"),
            Observation::Jump { target, label } => write!(f, "jump {target}{label}"),
            Observation::Rollback => write!(f, "rollback"),
        }
    }
}

/// The observation trace `O` of an execution.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Trace(pub Vec<Observation>);

impl Trace {
    /// The empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Append the observations of one step.
    pub fn extend_step(&mut self, obs: impl IntoIterator<Item = Observation>) {
        self.0.extend(obs);
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` when nothing was observed.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterate over the observations.
    pub fn iter(&self) -> impl Iterator<Item = Observation> + '_ {
        self.0.iter().copied()
    }

    /// The first secret-labeled observation, if any (the witness Pitchfork
    /// reports).
    pub fn first_secret(&self) -> Option<Observation> {
        self.iter().find(|o| o.is_secret())
    }

    /// `true` iff no observation carries a secret label (Thm B.9's
    /// premise; Corollary B.10's sufficient condition for SCT).
    pub fn is_public(&self) -> bool {
        self.first_secret().is_none()
    }
}

impl FromIterator<Observation> for Trace {
    fn from_iter<I: IntoIterator<Item = Observation>>(iter: I) -> Self {
        Trace(iter.into_iter().collect())
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, o) in self.0.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{o}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_secrecy() {
        let r = Observation::Read {
            addr: 0x49,
            label: Label::Public,
        };
        assert!(!r.is_secret());
        let j = Observation::Jump {
            target: 9,
            label: Label::Secret,
        };
        assert!(j.is_secret());
        assert_eq!(Observation::Rollback.label(), None);
        assert!(!Observation::Rollback.is_secret());
    }

    #[test]
    fn trace_first_secret() {
        let t: Trace = [
            Observation::Read {
                addr: 0x49,
                label: Label::Public,
            },
            Observation::Rollback,
            Observation::Read {
                addr: 0x8c,
                label: Label::Secret,
            },
        ]
        .into_iter()
        .collect();
        assert!(!t.is_public());
        assert_eq!(
            t.first_secret(),
            Some(Observation::Read {
                addr: 0x8c,
                label: Label::Secret
            })
        );
    }

    #[test]
    fn empty_trace_is_public() {
        assert!(Trace::new().is_public());
    }

    #[test]
    fn display_matches_paper_notation() {
        let o = Observation::Fwd {
            addr: 0x45,
            label: Label::Public,
        };
        assert_eq!(o.to_string(), "fwd 0x45pub");
        assert_eq!(Observation::Rollback.to_string(), "rollback");
        let j = Observation::Jump {
            target: 9,
            label: Label::Public,
        };
        assert_eq!(j.to_string(), "jump 9pub");
    }
}
