//! Errors for the small-step semantics.
//!
//! A directive for which no rule applies makes the step fail with a
//! [`StepError`]; a schedule is *well-formed* for a configuration exactly
//! when every step succeeds.

use crate::directive::Directive;
use crate::value::Pc;
use std::fmt;

/// Why a directive had no applicable rule.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StepError {
    /// `fetch` at a program point with no instruction (the program has
    /// halted, or speculation ran off the program).
    NoInstruction(Pc),
    /// The fetch directive's shape does not match the instruction at the
    /// current program point (e.g. plain `fetch` on a branch).
    FetchMismatch {
        /// The current program point.
        pc: Pc,
        /// The instruction kind found there.
        found: &'static str,
    },
    /// The reorder buffer is at its configured capacity.
    RobFull,
    /// An execute-family directive referenced an index outside the
    /// buffer's domain.
    NoSuchIndex(usize),
    /// The execute directive's shape does not match the transient
    /// instruction at the index.
    ExecuteMismatch {
        /// The targeted index.
        index: usize,
        /// The transient kind found there.
        found: &'static str,
    },
    /// A fence at a smaller index blocks this execute step (§3.6).
    FenceBlocked {
        /// The targeted index.
        index: usize,
    },
    /// An operand's latest assignment is still unresolved
    /// (`(buf +i ρ)(r) = ⊥`).
    OperandsPending {
        /// The targeted index.
        index: usize,
    },
    /// A load's most recent address-matching store has no resolved data
    /// yet: neither load-execute rule applies.
    StoreDataPending {
        /// The load's index.
        index: usize,
        /// The matching store's index.
        store: usize,
    },
    /// `execute i : fwd j` named an index `j` that is not a store with
    /// resolved data, or `j ≥ i`.
    BadForwardSource {
        /// The load's index.
        index: usize,
        /// The claimed store index.
        from: usize,
    },
    /// A partially-resolved load whose originating store has retired found
    /// a prior in-buffer store with a matching resolved address; the paper
    /// has no rule for this case.
    GuessedLoadBlocked {
        /// The load's index.
        index: usize,
    },
    /// `retire` on an empty buffer.
    EmptyBuffer,
    /// The oldest instruction (or its call/ret expansion group) is not
    /// fully resolved, so it cannot retire.
    NotRetirable {
        /// The oldest index.
        index: usize,
        /// The transient kind found there.
        found: &'static str,
    },
    /// Fetching a `ret` under an empty RSB with the
    /// [`crate::params::RsbPolicy::Refuse`] policy.
    RsbRefused,
    /// An opcode was applied to the wrong number of operands.
    Eval(crate::op::EvalError),
}

impl fmt::Display for StepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StepError::NoInstruction(pc) => write!(f, "no instruction at program point {pc}"),
            StepError::FetchMismatch { pc, found } => {
                write!(f, "fetch directive does not match `{found}` at {pc}")
            }
            StepError::RobFull => write!(f, "reorder buffer is full"),
            StepError::NoSuchIndex(i) => write!(f, "no reorder-buffer entry at index {i}"),
            StepError::ExecuteMismatch { index, found } => {
                write!(f, "execute directive does not match `{found}` at index {index}")
            }
            StepError::FenceBlocked { index } => {
                write!(f, "a fence below index {index} blocks execution")
            }
            StepError::OperandsPending { index } => {
                write!(f, "operands of index {index} are not yet resolved")
            }
            StepError::StoreDataPending { index, store } => write!(
                f,
                "load at {index} matches store at {store} whose data is unresolved"
            ),
            StepError::BadForwardSource { index, from } => write!(
                f,
                "cannot forward to load at {index} from index {from}"
            ),
            StepError::GuessedLoadBlocked { index } => write!(
                f,
                "guessed load at {index} is blocked by a prior matching store"
            ),
            StepError::EmptyBuffer => write!(f, "retire on an empty reorder buffer"),
            StepError::NotRetirable { index, found } => {
                write!(f, "`{found}` at index {index} is not ready to retire")
            }
            StepError::RsbRefused => {
                write!(f, "empty RSB: processor refuses to speculate on ret")
            }
            StepError::Eval(e) => write!(f, "evaluation error: {e}"),
        }
    }
}

impl std::error::Error for StepError {}

impl From<crate::op::EvalError> for StepError {
    fn from(e: crate::op::EvalError) -> Self {
        StepError::Eval(e)
    }
}

/// An error together with the directive that caused it, as reported by
/// schedule runners.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ScheduleError {
    /// Position of the failing directive within the schedule.
    pub at: usize,
    /// The failing directive.
    pub directive: Directive,
    /// The underlying step error.
    pub error: StepError,
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "directive #{} ({}) failed: {}",
            self.at, self.directive, self.error
        )
    }
}

impl std::error::Error for ScheduleError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}
