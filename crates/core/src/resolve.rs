//! The register resolve function `(buf +i ρ)` (Figure 3, extended per
//! §3.5 to read through partially-resolved loads).

use crate::instr::Operand;
use crate::reg::{Reg, RegFile};
use crate::rob::Rob;
use crate::value::Val;

/// Result of resolving one register at a buffer index.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Resolved {
    /// A value was determined (case 1 or 2 of Figure 3).
    Val(Val),
    /// The latest assignment before `i` is still unresolved
    /// (`(buf +i ρ)(r) = ⊥`): the consumer must wait.
    Pending,
}

impl Resolved {
    /// The value, if resolution succeeded.
    pub fn ok(self) -> Option<Val> {
        match self {
            Resolved::Val(v) => Some(v),
            Resolved::Pending => None,
        }
    }
}

/// `(buf +i ρ)(r)`:
/// * the value of the **latest** resolved assignment to `r` strictly
///   before index `i` in the buffer, if one exists;
/// * `ρ(r)` if no assignment to `r` is pending before `i`;
/// * `⊥` ([`Resolved::Pending`]) if the latest assignment is unresolved.
pub fn resolve_reg(rob: &Rob, regs: &RegFile, i: usize, r: Reg) -> Resolved {
    // Scan from the youngest entry below `i` to the oldest: the first
    // assignment to `r` we meet is `max(j) < i`.
    let mut latest: Option<Option<Val>> = None;
    for (_, t) in rob.iter_below(i) {
        if let Some((dst, v)) = t.assignment() {
            if dst == r {
                latest = Some(v);
            }
        }
    }
    match latest {
        Some(Some(v)) => Resolved::Val(v),
        Some(None) => Resolved::Pending,
        None => Resolved::Val(regs.read(r)),
    }
}

/// The pointwise lifting of the resolve function to operands: immediates
/// resolve to themselves (`(buf +i ρ)(vℓ) = vℓ`).
pub fn resolve_operand(rob: &Rob, regs: &RegFile, i: usize, op: &Operand) -> Resolved {
    match op {
        Operand::Imm(v) => Resolved::Val(*v),
        Operand::Reg(r) => resolve_reg(rob, regs, i, *r),
    }
}

/// Lift resolution to an operand list; `None` if any operand is pending.
pub fn resolve_operands(
    rob: &Rob,
    regs: &RegFile,
    i: usize,
    ops: &[Operand],
) -> Option<Vec<Val>> {
    ops.iter()
        .map(|op| resolve_operand(rob, regs, i, op).ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpCode;
    use crate::reg::names::*;
    use crate::transient::{LoadProvenance, Transient};

    fn regs() -> RegFile {
        [(RA, Val::public(10)), (RB, Val::public(20))]
            .into_iter()
            .collect()
    }

    #[test]
    fn falls_back_to_register_file() {
        let rob = Rob::new();
        assert_eq!(
            resolve_reg(&rob, &regs(), 1, RA),
            Resolved::Val(Val::public(10))
        );
    }

    #[test]
    fn latest_resolved_assignment_wins() {
        let mut rob = Rob::new();
        rob.push(Transient::Value {
            dst: RA,
            val: Val::public(1),
        }); // index 1
        rob.push(Transient::Value {
            dst: RA,
            val: Val::public(2),
        }); // index 2
        assert_eq!(
            resolve_reg(&rob, &regs(), 3, RA),
            Resolved::Val(Val::public(2))
        );
        // Below index 2 only the first assignment is visible.
        assert_eq!(
            resolve_reg(&rob, &regs(), 2, RA),
            Resolved::Val(Val::public(1))
        );
        // Below index 1 nothing is visible: register file.
        assert_eq!(
            resolve_reg(&rob, &regs(), 1, RA),
            Resolved::Val(Val::public(10))
        );
    }

    #[test]
    fn pending_assignment_blocks() {
        let mut rob = Rob::new();
        rob.push(Transient::Value {
            dst: RA,
            val: Val::public(1),
        }); // 1
        rob.push(Transient::Op {
            dst: RA,
            op: OpCode::Add,
            args: vec![Operand::imm(1)],
        }); // 2: unresolved
        assert_eq!(resolve_reg(&rob, &regs(), 3, RA), Resolved::Pending);
        // Other registers are unaffected.
        assert_eq!(
            resolve_reg(&rob, &regs(), 3, RB),
            Resolved::Val(Val::public(20))
        );
    }

    #[test]
    fn resolved_loads_and_guessed_loads_supply_values() {
        let mut rob = Rob::new();
        rob.push(Transient::LoadedValue {
            dst: RA,
            val: Val::secret(5),
            prov: LoadProvenance { dep: None, addr: 0x40 },
            pp: 2,
        }); // 1
        assert_eq!(
            resolve_reg(&rob, &regs(), 2, RA),
            Resolved::Val(Val::secret(5))
        );
        rob.push(Transient::LoadGuessed {
            dst: RA,
            addr: vec![Operand::imm(0x45)],
            fwd: Val::secret(9),
            from: 1,
            pp: 3,
        }); // 2
        assert_eq!(
            resolve_reg(&rob, &regs(), 3, RA),
            Resolved::Val(Val::secret(9))
        );
    }

    #[test]
    fn immediates_resolve_to_themselves() {
        let rob = Rob::new();
        let rf = regs();
        assert_eq!(
            resolve_operand(&rob, &rf, 1, &Operand::imm(7)),
            Resolved::Val(Val::public(7))
        );
        let ops = [Operand::imm(1), RA.into()];
        assert_eq!(
            resolve_operands(&rob, &rf, 1, &ops),
            Some(vec![Val::public(1), Val::public(10)])
        );
    }

    #[test]
    fn operand_list_with_pending_register_is_none() {
        let mut rob = Rob::new();
        rob.push(Transient::Op {
            dst: RA,
            op: OpCode::Add,
            args: vec![Operand::imm(1)],
        });
        let ops = [Operand::imm(1), RA.into()];
        assert_eq!(resolve_operands(&rob, &regs(), 2, &ops), None);
    }
}
