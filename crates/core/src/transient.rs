//! Transient instructions (the right column of Table 1).

use crate::op::OpCode;
use crate::reg::Reg;
use crate::value::{Pc, Val, Word};
use std::fmt;

use crate::instr::Operand;

/// The provenance annotation `{j, a}` on a resolved load
/// `(r = vℓ{j,a})_n`: where the value came from and which address it is
/// bound to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LoadProvenance {
    /// `j`: the reorder-buffer index of the store the value was forwarded
    /// from, or `None` (`⊥`) when it was read from memory. The paper
    /// defines `⊥ < n` for every index `n`, which [`LoadProvenance::dep_lt`]
    /// encodes.
    pub dep: Option<usize>,
    /// `a`: the address the value is associated with.
    pub addr: Word,
}

impl LoadProvenance {
    /// `true` iff the dependency index is `< i`, treating `⊥` as smaller
    /// than every index (the paper's convention in the store hazard check).
    pub fn dep_lt(&self, i: usize) -> bool {
        match self.dep {
            None => true,
            Some(j) => j < i,
        }
    }

    /// `true` iff the dependency index is `≥ i` (`⊥` never is).
    pub fn dep_ge(&self, i: usize) -> bool {
        !self.dep_lt(i)
    }
}

/// Resolution state of a store's data operand.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StoreData {
    /// `rv` not yet resolved.
    Pending(Operand),
    /// Resolved to `vℓ`.
    Resolved(Val),
}

impl StoreData {
    /// The resolved value, if any.
    pub fn resolved(&self) -> Option<Val> {
        match self {
            StoreData::Resolved(v) => Some(*v),
            StoreData::Pending(_) => None,
        }
    }
}

/// Resolution state of a store's address operands.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StoreAddr {
    /// `r⃗v` not yet resolved to an address.
    Pending(Vec<Operand>),
    /// Resolved to `aℓa`.
    Resolved(Val),
}

impl StoreAddr {
    /// The resolved address, if any.
    pub fn resolved(&self) -> Option<Val> {
        match self {
            StoreAddr::Resolved(a) => Some(*a),
            StoreAddr::Pending(_) => None,
        }
    }
}

/// A transient instruction in the reorder buffer (Table 1, right column).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Transient {
    /// `(r = op(op, r⃗v))` — unresolved arithmetic operation.
    Op {
        /// Destination register.
        dst: Reg,
        /// Opcode.
        op: OpCode,
        /// Operands.
        args: Vec<Operand>,
    },
    /// `(r = vℓ)` — resolved value.
    Value {
        /// Destination register.
        dst: Reg,
        /// The resolved value.
        val: Val,
    },
    /// `br(op, r⃗v, n0, (n_true, n_false))` — unresolved conditional; `n0`
    /// records the speculatively-taken branch.
    Br {
        /// Boolean opcode.
        op: OpCode,
        /// Condition operands.
        args: Vec<Operand>,
        /// The branch chosen at fetch time.
        guess: Pc,
        /// True target.
        tru: Pc,
        /// False target.
        fls: Pc,
    },
    /// `jump n0` — resolved conditional/indirect jump.
    Jump {
        /// The resolved target.
        target: Pc,
    },
    /// `(r = load(r⃗v))_n` — unresolved load, annotated with the program
    /// point `n` of the physical load that produced it.
    Load {
        /// Destination register.
        dst: Reg,
        /// Address operands.
        addr: Vec<Operand>,
        /// Originating program point.
        pp: Pc,
    },
    /// `(r = load(r⃗v, (vℓ, j)))_n` — partially resolved load carrying data
    /// speculatively forwarded from the (possibly address-unresolved) store
    /// at buffer index `j` (§3.5, aliasing prediction).
    LoadGuessed {
        /// Destination register.
        dst: Reg,
        /// Address operands (still to be resolved).
        addr: Vec<Operand>,
        /// The forwarded value.
        fwd: Val,
        /// Buffer index of the originating store.
        from: usize,
        /// Originating program point.
        pp: Pc,
    },
    /// `(r = vℓ{j,a})_n` — resolved load. Behaves like [`Transient::Value`]
    /// for the register-resolve function but keeps its provenance for the
    /// store hazard checks, and its program point for rollbacks.
    LoadedValue {
        /// Destination register.
        dst: Reg,
        /// The loaded (or forwarded) value.
        val: Val,
        /// Provenance `{j, a}`.
        prov: LoadProvenance,
        /// Originating program point.
        pp: Pc,
    },
    /// `store(rv, r⃗v)` / `store(vℓ, r⃗v)` / `store(rv, aℓ)` /
    /// `store(vℓ, aℓ)` — a store whose data and address resolve
    /// independently (via `execute i: value` and `execute i: addr`).
    Store {
        /// Data-operand state.
        data: StoreData,
        /// Address-operand state.
        addr: StoreAddr,
    },
    /// `jmpi(r⃗v, n0)` — unresolved indirect jump predicted to `n0`.
    Jmpi {
        /// Target operands.
        args: Vec<Operand>,
        /// Predicted target.
        guess: Pc,
    },
    /// `call` — marker produced by fetching a `call` (Appendix A).
    Call,
    /// `ret` — marker produced by fetching a `ret` (Appendix A).
    Ret,
    /// `fence` — speculation barrier (no execute step).
    Fence,
}

impl Transient {
    /// The register this entry assigns, for the register-resolve function:
    /// `Some((r, Some(v)))` for resolved assignments, `Some((r, None))`
    /// for pending ones, `None` for non-assignments.
    ///
    /// Partially-resolved loads ([`Transient::LoadGuessed`]) count as
    /// *resolved* assignments carrying their forwarded value — this is the
    /// §3.5 extension of the resolve function.
    pub fn assignment(&self) -> Option<(Reg, Option<Val>)> {
        match self {
            Transient::Op { dst, .. } | Transient::Load { dst, .. } => Some((*dst, None)),
            Transient::Value { dst, val } => Some((*dst, Some(*val))),
            Transient::LoadedValue { dst, val, .. } => Some((*dst, Some(*val))),
            Transient::LoadGuessed { dst, fwd, .. } => Some((*dst, Some(*fwd))),
            _ => None,
        }
    }

    /// `true` for the `fence` marker; execute rules require no fence at a
    /// smaller buffer index.
    pub fn is_fence(&self) -> bool {
        matches!(self, Transient::Fence)
    }

    /// `true` when the entry is fully resolved, i.e. ready to retire as
    /// far as its own state is concerned.
    pub fn is_resolved(&self) -> bool {
        match self {
            Transient::Value { .. }
            | Transient::Jump { .. }
            | Transient::LoadedValue { .. }
            | Transient::Fence => true,
            Transient::Store { data, addr } => {
                data.resolved().is_some() && addr.resolved().is_some()
            }
            // call/ret markers retire together with their expansions; the
            // markers themselves carry no pending work.
            Transient::Call | Transient::Ret => true,
            _ => false,
        }
    }

    /// The store's resolved address, if this is a store with one
    /// (`buf(j) = store(_, a)` matching in the load rules).
    pub fn store_resolved_addr(&self) -> Option<Val> {
        match self {
            Transient::Store { addr, .. } => addr.resolved(),
            _ => None,
        }
    }

    /// The store's resolved data, if this is a store with one.
    pub fn store_resolved_data(&self) -> Option<Val> {
        match self {
            Transient::Store { data, .. } => data.resolved(),
            _ => None,
        }
    }

    /// Short form for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            Transient::Op { .. } => "op",
            Transient::Value { .. } => "value",
            Transient::Br { .. } => "br",
            Transient::Jump { .. } => "jump",
            Transient::Load { .. } => "load",
            Transient::LoadGuessed { .. } => "load-guessed",
            Transient::LoadedValue { .. } => "loaded-value",
            Transient::Store { .. } => "store",
            Transient::Jmpi { .. } => "jmpi",
            Transient::Call => "call",
            Transient::Ret => "ret",
            Transient::Fence => "fence",
        }
    }
}

fn fmt_ops(f: &mut fmt::Formatter<'_>, args: &[Operand]) -> fmt::Result {
    write!(f, "[")?;
    for (i, a) in args.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "{a}")?;
    }
    write!(f, "]")
}

impl fmt::Display for Transient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Transient::Op { dst, op, args } => {
                write!(f, "({dst} = op({op}, ")?;
                fmt_ops(f, args)?;
                write!(f, "))")
            }
            Transient::Value { dst, val } => write!(f, "({dst} = {val})"),
            Transient::Br { op, args, guess, tru, fls } => {
                write!(f, "br({op}, ")?;
                fmt_ops(f, args)?;
                write!(f, ", {guess}, ({tru}, {fls}))")
            }
            Transient::Jump { target } => write!(f, "jump {target}"),
            Transient::Load { dst, addr, .. } => {
                write!(f, "({dst} = load(")?;
                fmt_ops(f, addr)?;
                write!(f, "))")
            }
            Transient::LoadGuessed { dst, addr, fwd, from, .. } => {
                write!(f, "({dst} = load(")?;
                fmt_ops(f, addr)?;
                write!(f, ", ({fwd}, {from})))")
            }
            Transient::LoadedValue { dst, val, prov, .. } => match prov.dep {
                Some(j) => write!(f, "({dst} = {val}{{{j}, {:#x}}})", prov.addr),
                None => write!(f, "({dst} = {val}{{⊥, {:#x}}})", prov.addr),
            },
            Transient::Store { data, addr } => {
                write!(f, "store(")?;
                match data {
                    StoreData::Pending(op) => write!(f, "{op}")?,
                    StoreData::Resolved(v) => write!(f, "{v}")?,
                }
                write!(f, ", ")?;
                match addr {
                    StoreAddr::Pending(ops) => fmt_ops(f, ops)?,
                    StoreAddr::Resolved(a) => write!(f, "{a}")?,
                }
                write!(f, ")")
            }
            Transient::Jmpi { args, guess } => {
                write!(f, "jmpi(")?;
                fmt_ops(f, args)?;
                write!(f, ", {guess})")
            }
            Transient::Call => write!(f, "call"),
            Transient::Ret => write!(f, "ret"),
            Transient::Fence => write!(f, "fence"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::names::*;

    #[test]
    fn assignment_classification() {
        let pending = Transient::Op {
            dst: RA,
            op: OpCode::Add,
            args: vec![Operand::imm(1)],
        };
        assert_eq!(pending.assignment(), Some((RA, None)));
        let val = Transient::Value {
            dst: RB,
            val: Val::public(5),
        };
        assert_eq!(val.assignment(), Some((RB, Some(Val::public(5)))));
        let guessed = Transient::LoadGuessed {
            dst: RC,
            addr: vec![Operand::imm(0x45)],
            fwd: Val::secret(7),
            from: 2,
            pp: 7,
        };
        assert_eq!(guessed.assignment(), Some((RC, Some(Val::secret(7)))));
        assert_eq!(Transient::Fence.assignment(), None);
    }

    #[test]
    fn store_resolution_states() {
        let st = Transient::Store {
            data: StoreData::Pending(RB.into()),
            addr: StoreAddr::Pending(vec![Operand::imm(0x40), RA.into()]),
        };
        assert!(!st.is_resolved());
        assert_eq!(st.store_resolved_addr(), None);
        let st2 = Transient::Store {
            data: StoreData::Resolved(Val::secret(1)),
            addr: StoreAddr::Resolved(Val::public(0x42)),
        };
        assert!(st2.is_resolved());
        assert_eq!(st2.store_resolved_addr(), Some(Val::public(0x42)));
        assert_eq!(st2.store_resolved_data(), Some(Val::secret(1)));
    }

    #[test]
    fn provenance_bottom_is_less_than_everything() {
        let from_mem = LoadProvenance { dep: None, addr: 0x43 };
        assert!(from_mem.dep_lt(0));
        assert!(from_mem.dep_lt(100));
        let from_store = LoadProvenance { dep: Some(3), addr: 0x43 };
        assert!(from_store.dep_lt(4));
        assert!(!from_store.dep_lt(3));
        assert!(from_store.dep_ge(3));
    }

    #[test]
    fn display_matches_paper_forms() {
        let lv = Transient::LoadedValue {
            dst: RC,
            val: Val::public(12),
            prov: LoadProvenance { dep: Some(2), addr: 0x43 },
            pp: 4,
        };
        assert_eq!(lv.to_string(), "(rc = 12pub{2, 0x43})");
        assert_eq!(Transient::Jump { target: 9 }.to_string(), "jump 9");
    }

    #[test]
    fn fence_and_markers_are_resolved() {
        assert!(Transient::Fence.is_resolved());
        assert!(Transient::Call.is_resolved());
        assert!(Transient::Ret.is_resolved());
        assert!(Transient::Fence.is_fence());
        assert!(!Transient::Call.is_fence());
    }
}
