//! Data memory (`µ : V ⇀ V`) with per-word security labels.

use crate::label::Label;
use crate::value::{Val, Word};
use std::collections::BTreeMap;
use std::fmt;

/// The data memory `µ`, a partial map from word addresses to labeled
/// values.
///
/// The paper uses a single partial map for instructions and data; the two
/// address ranges never overlap in any example, so we keep instruction
/// space in [`crate::instr::Program`] and data here. Reads of unmapped
/// addresses yield public zero (memory is zero-initialized), which keeps
/// every schedule's behaviour total on loads.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Memory {
    map: BTreeMap<Word, Val>,
}

impl Memory {
    /// An empty (all zero, all public) memory.
    pub fn new() -> Self {
        Memory::default()
    }

    /// Read `µ(a)`; unmapped addresses read as public zero.
    pub fn read(&self, addr: Word) -> Val {
        self.map.get(&addr).copied().unwrap_or_default()
    }

    /// Write `µ[a ↦ v]`.
    pub fn write(&mut self, addr: Word, v: Val) {
        self.map.insert(addr, v);
    }

    /// Populate `[base, base + data.len())` with labeled words.
    pub fn write_array(&mut self, base: Word, data: &[Word], label: Label) {
        for (i, &w) in data.iter().enumerate() {
            self.write(base + i as Word, Val::new(w, label));
        }
    }

    /// Iterate over explicitly-written cells in address order.
    pub fn iter(&self) -> impl Iterator<Item = (Word, Val)> + '_ {
        self.map.iter().map(|(&a, &v)| (a, v))
    }

    /// Number of explicitly-written cells.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Memory part of the paper's `≃pub` low-equivalence: agree on labels
    /// everywhere and on bits wherever the label is public.
    pub fn low_equivalent(&self, other: &Memory) -> bool {
        let addrs = self.map.keys().chain(other.map.keys());
        for &a in addrs {
            let x = self.read(a);
            let y = other.read(a);
            if x.label != y.label {
                return false;
            }
            if x.label.is_public() && x.bits != y.bits {
                return false;
            }
        }
        true
    }
}

impl FromIterator<(Word, Val)> for Memory {
    fn from_iter<I: IntoIterator<Item = (Word, Val)>>(iter: I) -> Self {
        Memory {
            map: iter.into_iter().collect(),
        }
    }
}

impl Extend<(Word, Val)> for Memory {
    fn extend<I: IntoIterator<Item = (Word, Val)>>(&mut self, iter: I) {
        self.map.extend(iter);
    }
}

impl fmt::Display for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "a    µ(a)")?;
        for (a, v) in self.iter() {
            writeln!(f, "{a:#x}  {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmapped_reads_zero() {
        let m = Memory::new();
        assert_eq!(m.read(0x40), Val::public(0));
        assert!(m.is_empty());
    }

    #[test]
    fn write_then_read() {
        let mut m = Memory::new();
        m.write(0x40, Val::secret(7));
        assert_eq!(m.read(0x40), Val::secret(7));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn write_array_labels_every_cell() {
        let mut m = Memory::new();
        m.write_array(0x48, &[1, 2, 3, 4], Label::Secret);
        for (i, want) in [1u64, 2, 3, 4].into_iter().enumerate() {
            let v = m.read(0x48 + i as Word);
            assert_eq!(v.bits, want);
            assert!(v.label.is_secret());
        }
    }

    #[test]
    fn low_equivalence_mirrors_regfile_semantics() {
        let mut a = Memory::new();
        let mut b = Memory::new();
        a.write_array(0x40, &[1, 2], Label::Public);
        b.write_array(0x40, &[1, 2], Label::Public);
        a.write_array(0x48, &[11, 12], Label::Secret);
        b.write_array(0x48, &[99, 98], Label::Secret);
        assert!(a.low_equivalent(&b));
        b.write(0x40, Val::public(5));
        assert!(!a.low_equivalent(&b));
    }

    #[test]
    fn low_equivalence_detects_label_difference() {
        let mut a = Memory::new();
        let mut b = Memory::new();
        a.write(0x40, Val::public(1));
        b.write(0x40, Val::secret(1));
        assert!(!a.low_equivalent(&b));
    }
}
