//! Enumerating applicable directives.
//!
//! The directive alphabet is infinite only through the program points of
//! `fetch: n` guesses; restricting guesses to the program's own points
//! (plus the statically correct one where known) keeps the set finite
//! without losing any *interesting* behaviour — a guess outside the
//! program rolls back exactly like any other wrong guess but can fetch
//! nothing speculatively.

use crate::directive::Directive;
use crate::instr::Instr;
use crate::machine::Machine;
use crate::params::RsbPolicy;
use crate::transient::{StoreAddr, StoreData, Transient};

/// All candidate directives worth attempting in the current state,
/// *before* filtering by rule applicability.
pub fn candidate_directives(m: &Machine<'_>) -> Vec<Directive> {
    let mut out = Vec::new();
    candidate_fetches(m, &mut out);
    candidate_executes(m, &mut out);
    if !m.cfg.rob.is_empty() {
        out.push(Directive::Retire);
    }
    out
}

/// The subset of [`candidate_directives`] that actually steps (checked by
/// dry-running each candidate on a clone).
pub fn applicable_directives(m: &Machine<'_>) -> Vec<Directive> {
    candidate_directives(m)
        .into_iter()
        .filter(|&d| {
            let mut probe = m.clone();
            probe.step(d).is_ok()
        })
        .collect()
}

fn candidate_fetches(m: &Machine<'_>, out: &mut Vec<Directive>) {
    let Some(instr) = m.program.fetch(m.cfg.pc) else {
        return;
    };
    match instr {
        Instr::Op { .. }
        | Instr::Load { .. }
        | Instr::Store { .. }
        | Instr::Fence { .. }
        | Instr::Call { .. } => out.push(Directive::Fetch),
        Instr::Br { .. } => {
            out.push(Directive::FetchBranch(true));
            out.push(Directive::FetchBranch(false));
        }
        Instr::Jmpi { .. } => {
            out.extend(m.program.iter().map(|(n, _)| Directive::FetchJump(n)));
        }
        Instr::Ret => {
            if m.cfg.rsb.top().is_some() {
                out.push(Directive::Fetch);
            } else {
                match m.params.rsb_policy {
                    RsbPolicy::AttackerChoice => {
                        out.extend(m.program.iter().map(|(n, _)| Directive::FetchJump(n)));
                    }
                    RsbPolicy::Refuse => {}
                    RsbPolicy::Circular { .. } => out.push(Directive::Fetch),
                }
            }
        }
    }
}

fn candidate_executes(m: &Machine<'_>, out: &mut Vec<Directive>) {
    for (i, t) in m.cfg.rob.iter() {
        match t {
            Transient::Op { .. }
            | Transient::Br { .. }
            | Transient::Jmpi { .. }
            | Transient::LoadGuessed { .. } => out.push(Directive::Execute(i)),
            Transient::Load { .. } => {
                out.push(Directive::Execute(i));
                // Alias-predicted forwarding from any older store with
                // resolved data (§3.5).
                for (j, s) in m.cfg.rob.iter_below(i) {
                    if s.store_resolved_data().is_some() {
                        out.push(Directive::ExecuteFwd(i, j));
                    }
                }
            }
            Transient::Store { data, addr } => {
                if matches!(data, StoreData::Pending(_)) {
                    out.push(Directive::ExecuteValue(i));
                }
                if matches!(addr, StoreAddr::Pending(_)) {
                    out.push(Directive::ExecuteAddr(i));
                }
            }
            Transient::Value { .. }
            | Transient::Jump { .. }
            | Transient::LoadedValue { .. }
            | Transient::Call
            | Transient::Ret
            | Transient::Fence => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::fig1;

    #[test]
    fn initial_fig1_offers_both_branch_guesses() {
        let (p, cfg) = fig1();
        let m = Machine::new(&p, cfg);
        let ds = applicable_directives(&m);
        assert!(ds.contains(&Directive::FetchBranch(true)));
        assert!(ds.contains(&Directive::FetchBranch(false)));
        assert!(!ds.contains(&Directive::Retire));
    }

    #[test]
    fn applicability_filters_pending_operands() {
        let (p, cfg) = fig1();
        let mut m = Machine::new(&p, cfg);
        m.step(Directive::FetchBranch(true)).unwrap();
        m.step(Directive::Fetch).unwrap(); // load rb
        m.step(Directive::Fetch).unwrap(); // load rc (depends on rb)
        let ds = applicable_directives(&m);
        assert!(ds.contains(&Directive::Execute(1))); // the branch
        assert!(ds.contains(&Directive::Execute(2))); // first load
        // Second load's address depends on the unresolved rb.
        assert!(!ds.contains(&Directive::Execute(3)));
        // Retire of the unresolved branch is not applicable.
        assert!(!ds.contains(&Directive::Retire));
    }

    #[test]
    fn every_applicable_directive_actually_steps() {
        let (p, cfg) = fig1();
        let mut m = Machine::new(&p, cfg);
        for _ in 0..20 {
            let ds = applicable_directives(&m);
            if ds.is_empty() {
                break;
            }
            for &d in &ds {
                let mut probe = m.clone();
                assert!(probe.step(d).is_ok(), "directive {d} must step");
            }
            m.step(ds[0]).unwrap();
        }
    }
}
