//! Schedulers: ways of producing well-formed directive schedules.
//!
//! * [`enumerate`] — enumerate the directives applicable in a state
//!   (used by the random adversary and by Pitchfork's explorer);
//! * [`sequential`] — the canonical sequential schedule of Theorem 3.2;
//! * [`random`] — a random adversarial scheduler for fuzzing and for the
//!   relational SCT checker.

pub mod enumerate;
pub mod random;
pub mod sequential;
