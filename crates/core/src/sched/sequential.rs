//! The canonical sequential schedule (`C ⇓ⁿseq C'`, Theorem 3.2).
//!
//! A sequential schedule "executes and retires instructions immediately
//! upon fetching them" (Def. B.3). Our canonical scheduler additionally
//! fetches with the *correct* prediction (evaluating branch conditions and
//! jump targets against the architectural state, which is sound because
//! the buffer is empty at every fetch), so canonical sequential traces
//! contain no rollbacks from branches — the paper's footnote 6 permits
//! either choice.

use crate::config::Config;
use crate::directive::{Directive, Schedule};
use crate::error::{ScheduleError, StepError};
use crate::instr::{Instr, Program};
use crate::machine::{Machine, RunOutcome};
use crate::observation::Trace;
use crate::params::Params;
use crate::transient::{StoreAddr, StoreData, Transient};

/// Result of a sequential run.
#[derive(Clone, Debug)]
pub struct SeqOutcome {
    /// The final configuration.
    pub config: Config,
    /// Trace, retired-instruction count.
    pub outcome: RunOutcome,
    /// The schedule that was generated (useful for replay/validation).
    pub schedule: Schedule,
    /// `true` when execution reached a terminal configuration (empty
    /// buffer, no instruction at the final program point) rather than the
    /// step bound.
    pub terminal: bool,
}

/// Pick the canonical (correctly-predicted) fetch directive for the
/// instruction at the current program point, given an **empty** buffer.
fn canonical_fetch(m: &Machine<'_>) -> Result<Directive, StepError> {
    debug_assert!(m.cfg.rob.is_empty());
    let i = m.cfg.rob.next_index();
    let instr = m
        .program
        .fetch(m.cfg.pc)
        .ok_or(StepError::NoInstruction(m.cfg.pc))?;
    Ok(match instr {
        Instr::Br { op, args, tru, fls } => {
            let vals = m.resolve_list(i, args)?;
            let cond = m.eval_op(*op, &vals)?;
            let _ = (tru, fls);
            Directive::FetchBranch(cond.as_bool())
        }
        Instr::Jmpi { args } => {
            let vals = m.resolve_list(i, args)?;
            Directive::FetchJump(m.eval_addr(&vals).bits)
        }
        Instr::Ret => {
            if m.cfg.rsb.top().is_some() {
                Directive::Fetch
            } else {
                // Empty RSB: predict the architecturally correct target,
                // which is the return address stored at the top of stack.
                let rsp = m.cfg.regs.read(crate::reg::Reg::RSP);
                let target = m.cfg.mem.read(rsp.bits).bits;
                Directive::FetchJump(target)
            }
        }
        _ => Directive::Fetch,
    })
}

/// The next execute directive for the oldest unresolved entry, or
/// `Retire` when the whole (group at the) head is resolved.
fn next_inorder_directive(m: &Machine<'_>) -> Directive {
    for (i, t) in m.cfg.rob.iter() {
        match t {
            Transient::Op { .. }
            | Transient::Br { .. }
            | Transient::Jmpi { .. }
            | Transient::Load { .. }
            | Transient::LoadGuessed { .. } => return Directive::Execute(i),
            Transient::Store { data, addr } => {
                if matches!(data, StoreData::Pending(_)) {
                    return Directive::ExecuteValue(i);
                }
                if matches!(addr, StoreAddr::Pending(_)) {
                    return Directive::ExecuteAddr(i);
                }
            }
            _ => {}
        }
    }
    Directive::Retire
}

/// Run the canonical sequential schedule from `config` until the program
/// halts or `max_steps` directives have been issued.
///
/// # Errors
///
/// Propagates the first [`StepError`] other than the terminal
/// "no instruction to fetch" (which ends the run normally). The canonical
/// schedule is well-formed on every program our generators produce, so an
/// error indicates a genuinely stuck program (e.g. a `ret` under the
/// [`crate::params::RsbPolicy::Refuse`] policy with an empty stack).
pub fn run_sequential(
    program: &Program,
    config: Config,
    params: Params,
    max_steps: usize,
) -> Result<SeqOutcome, ScheduleError> {
    run_sequential_bounded(program, config, params, usize::MAX, max_steps)
}

/// Like [`run_sequential`], but stop after `max_retires` retire
/// directives — the sequential big step `C ⇓seq^N C'` with a fixed `N`,
/// used to validate Theorem 3.2 against arbitrary speculative runs.
///
/// # Errors
///
/// As for [`run_sequential`].
pub fn run_sequential_bounded(
    program: &Program,
    config: Config,
    params: Params,
    max_retires: usize,
    max_steps: usize,
) -> Result<SeqOutcome, ScheduleError> {
    let mut m = Machine::with_params(program, config, params);
    let mut schedule = Schedule::new();
    let mut trace = Trace::new();
    let mut retired = 0;
    let mut terminal = false;
    for at in 0..max_steps {
        if retired >= max_retires {
            break;
        }
        let directive = if m.cfg.rob.is_empty() {
            match canonical_fetch(&m) {
                Ok(d) => d,
                Err(StepError::NoInstruction(_)) => {
                    terminal = true;
                    break;
                }
                Err(error) => {
                    return Err(ScheduleError {
                        at,
                        directive: Directive::Fetch,
                        error,
                    })
                }
            }
        } else {
            next_inorder_directive(&m)
        };
        match m.step(directive) {
            Ok(obs) => {
                if matches!(directive, Directive::Retire) {
                    retired += 1;
                }
                trace.extend_step(obs);
                schedule.push(directive);
            }
            Err(error) => {
                return Err(ScheduleError {
                    at,
                    directive,
                    error,
                })
            }
        }
    }
    Ok(SeqOutcome {
        config: m.cfg,
        outcome: RunOutcome { trace, retired },
        schedule,
        terminal,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::fig1;
    use crate::instr::Operand;
    use crate::label::Label;
    use crate::op::OpCode;
    use crate::reg::names::*;
    use crate::reg::{Reg, RegFile};
    use crate::value::Val;

    #[test]
    fn fig1_sequential_takes_false_branch() {
        let (p, cfg) = fig1();
        let out = run_sequential(&p, cfg, Params::paper(), 1_000).unwrap();
        assert!(out.terminal);
        // ra = 9 fails the bounds check; no load executes.
        assert_eq!(out.outcome.retired, 1);
        assert!(out.outcome.trace.is_public());
        assert_eq!(out.config.pc, 4);
        assert!(out.config.rob.is_empty());
    }

    #[test]
    fn in_bounds_index_loads_sequentially() {
        let (p, mut cfg) = fig1();
        cfg.regs.write(RA, Val::public(2));
        let out = run_sequential(&p, cfg, Params::paper(), 1_000).unwrap();
        assert!(out.terminal);
        assert_eq!(out.outcome.retired, 3);
        // A[2] = 2, so rc = B[2] = 1.
        assert_eq!(out.config.regs.read(RC), Val::public(1));
        assert!(out.outcome.trace.is_public());
    }

    #[test]
    fn sequential_call_ret_round_trip() {
        // 1: call(3, 2); 2: op ra += 1; 3: op rb = 5; 4: ret
        let mut p = Program::new();
        p.entry = 1;
        p.insert(1, Instr::Call { callee: 3, ret: 2 });
        p.insert(
            2,
            Instr::Op {
                dst: RA,
                op: OpCode::Add,
                args: vec![RA.into(), Operand::imm(1)],
                next: 5,
            },
        );
        p.insert(
            3,
            Instr::Op {
                dst: RB,
                op: OpCode::Add,
                args: vec![Operand::imm(5)],
                next: 4,
            },
        );
        p.insert(4, Instr::Ret);
        let regs: RegFile = [(Reg::RSP, Val::public(0x7c))].into_iter().collect();
        let cfg = Config::initial(regs, Default::default(), 1);
        let out = run_sequential(&p, cfg, Params::paper(), 1_000).unwrap();
        assert!(out.terminal, "schedule: {}", out.schedule);
        assert_eq!(out.config.regs.read(RB), Val::public(5));
        assert_eq!(out.config.regs.read(RA), Val::public(1));
        // Stack pointer restored.
        assert_eq!(out.config.regs.read(Reg::RSP), Val::public(0x7c));
        // Return address was written to the stack (call-retire observes it).
        assert_eq!(out.config.mem.read(0x7b), Val::public(2));
        assert!(out
            .outcome
            .trace
            .iter()
            .any(|o| matches!(o, crate::observation::Observation::Write { addr: 0x7b, .. })));
    }

    #[test]
    fn step_bound_returns_partial_run() {
        let (p, cfg) = fig1();
        let out = run_sequential(&p, cfg, Params::paper(), 1).unwrap();
        assert!(!out.terminal);
        assert_eq!(out.schedule.len(), 1);
    }

    #[test]
    fn secret_branch_leaks_sequentially_too() {
        // Sequential constant-time is still violated by branching on a
        // secret: br(gt, (4, ra_sec), ...) leaks via the jump observation.
        let (p, mut cfg) = fig1();
        cfg.regs.write(RA, Val::new(9, Label::Secret));
        let out = run_sequential(&p, cfg, Params::paper(), 1_000).unwrap();
        assert!(out.outcome.trace.first_secret().is_some());
    }
}
