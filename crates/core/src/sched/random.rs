//! A random adversarial scheduler.
//!
//! At every step it picks uniformly among the applicable directives —
//! exploring out-of-order execution, both branch guesses, alias
//! prediction, everything. Used to fuzz the semantics (determinism,
//! sequential equivalence) and to sample schedules for the relational SCT
//! checker.

use crate::config::Config;
use crate::directive::{Directive, Schedule};
use crate::instr::Program;
use crate::machine::{Machine, RunOutcome};
use crate::observation::Trace;
use crate::params::Params;
use crate::sched::enumerate::applicable_directives;
use rand::Rng;

/// Tuning knobs for the random adversary.
#[derive(Clone, Copy, Debug)]
pub struct RandomSchedulerOptions {
    /// Stop after this many directives.
    pub max_steps: usize,
    /// Suppress fetches once the reorder buffer holds this many entries
    /// (otherwise mispredicted loops could fetch forever).
    pub max_rob: usize,
    /// Bias towards fetch directives (out of 100) while below `max_rob`,
    /// approximating the eager front ends of real processors.
    pub fetch_bias: u8,
}

impl Default for RandomSchedulerOptions {
    fn default() -> Self {
        RandomSchedulerOptions {
            max_steps: 4_000,
            max_rob: 24,
            fetch_bias: 50,
        }
    }
}

/// Outcome of a random adversarial run.
#[derive(Clone, Debug)]
pub struct RandomRun {
    /// Final configuration.
    pub config: Config,
    /// Trace and retired count.
    pub outcome: RunOutcome,
    /// The schedule that was chosen (well-formed by construction).
    pub schedule: Schedule,
    /// `true` if the run ended because no directive was applicable with
    /// an empty buffer and nothing left to fetch (terminal configuration).
    pub terminal: bool,
}

/// Run a random adversarial schedule from `config`.
pub fn run_random<R: Rng>(
    program: &Program,
    config: Config,
    params: Params,
    options: RandomSchedulerOptions,
    rng: &mut R,
) -> RandomRun {
    let mut m = Machine::with_params(program, config, params);
    let mut schedule = Schedule::new();
    let mut trace = Trace::new();
    let mut retired = 0;
    let mut terminal = false;
    for _ in 0..options.max_steps {
        let mut candidates = applicable_directives(&m);
        if m.cfg.rob.len() >= options.max_rob {
            candidates.retain(|d| !d.is_fetch());
        }
        if candidates.is_empty() {
            terminal = m.cfg.rob.is_empty();
            break;
        }
        let fetches: Vec<Directive> = candidates
            .iter()
            .copied()
            .filter(|d| d.is_fetch())
            .collect();
        let directive = if !fetches.is_empty()
            && rng.gen_range(0..100u8) < options.fetch_bias
        {
            fetches[rng.gen_range(0..fetches.len())]
        } else {
            candidates[rng.gen_range(0..candidates.len())]
        };
        let obs = m
            .step(directive)
            .expect("applicable directives must step");
        if matches!(directive, Directive::Retire) {
            retired += 1;
        }
        trace.extend_step(obs);
        schedule.push(directive);
    }
    RandomRun {
        config: m.cfg,
        outcome: RunOutcome { trace, retired },
        schedule,
        terminal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::fig1;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn random_runs_are_well_formed_replays() {
        let (p, cfg) = fig1();
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..25 {
            let run = run_random(
                &p,
                cfg.clone(),
                Params::paper(),
                RandomSchedulerOptions::default(),
                &mut rng,
            );
            // Replaying the recorded schedule must succeed and reproduce
            // the same trace (Lemma B.1, determinism).
            let mut m = Machine::new(&p, cfg.clone());
            let replay = m.run(&run.schedule).expect("schedule is well-formed");
            assert_eq!(replay.trace, run.outcome.trace);
            assert_eq!(replay.retired, run.outcome.retired);
            assert_eq!(m.cfg, run.config);
        }
    }

    #[test]
    fn random_adversary_finds_the_fig1_leak() {
        let (p, cfg) = fig1();
        let mut rng = SmallRng::seed_from_u64(42);
        let mut leaked = false;
        for _ in 0..200 {
            let run = run_random(
                &p,
                cfg.clone(),
                Params::paper(),
                RandomSchedulerOptions::default(),
                &mut rng,
            );
            if run.outcome.trace.first_secret().is_some() {
                leaked = true;
                break;
            }
        }
        assert!(leaked, "the random adversary should stumble on Spectre v1");
    }

    #[test]
    fn runs_terminate_within_bounds() {
        let (p, cfg) = fig1();
        let mut rng = SmallRng::seed_from_u64(3);
        let run = run_random(
            &p,
            cfg,
            Params::paper(),
            RandomSchedulerOptions {
                max_steps: 50,
                ..Default::default()
            },
            &mut rng,
        );
        assert!(run.schedule.len() <= 50);
    }
}
