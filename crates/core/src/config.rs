//! Configurations `C = (ρ, µ, n, buf)` (extended with `σ` in Appendix A)
//! and the paper's two equivalence relations.

use crate::mem::Memory;
use crate::reg::RegFile;
use crate::rob::Rob;
use crate::rsb::Rsb;
use crate::value::Pc;
use std::fmt;

/// A machine configuration.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Config {
    /// The register map `ρ`.
    pub regs: RegFile,
    /// The data memory `µ`.
    pub mem: Memory,
    /// The current program point `n`.
    pub pc: Pc,
    /// The reorder buffer `buf`.
    pub rob: Rob,
    /// The return stack buffer `σ` (Appendix A).
    pub rsb: Rsb,
}

impl Config {
    /// An initial configuration (empty reorder buffer, Def. B.2) starting
    /// at `entry`.
    pub fn initial(regs: RegFile, mem: Memory, entry: Pc) -> Self {
        Config {
            regs,
            mem,
            pc: entry,
            rob: Rob::new(),
            rsb: Rsb::new(),
        }
    }

    /// `true` for initial/terminal configurations (`|C.buf| = 0`,
    /// Def. B.2).
    pub fn is_speculation_free(&self) -> bool {
        self.rob.is_empty()
    }

    /// The paper's low-equivalence `≃pub`: configurations coincide on
    /// public values in registers and memories (labels must agree
    /// everywhere, public bits must agree).
    ///
    /// Only the architectural state takes part, matching the paper's use
    /// of `≃pub` on *initial* configurations (where `buf` is empty).
    pub fn low_equivalent(&self, other: &Config) -> bool {
        self.pc == other.pc
            && self.regs.low_equivalent(&other.regs)
            && self.mem.low_equivalent(&other.mem)
    }

    /// The paper's `≈`: "memories and register files are equal, even if
    /// their speculative states may be different" — the equivalence used
    /// to validate against sequential execution (Thm 3.2).
    pub fn arch_equivalent(&self, other: &Config) -> bool {
        self.regs == other.regs && self.mem == other.mem
    }
}

impl fmt::Display for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "pc = {}", self.pc)?;
        writeln!(f, "registers:")?;
        for (r, v) in self.regs.iter() {
            writeln!(f, "  {r} = {v}")?;
        }
        writeln!(f, "memory:")?;
        for (a, v) in self.mem.iter() {
            writeln!(f, "  {a:#x} = {v}")?;
        }
        writeln!(f, "reorder buffer:")?;
        for (i, t) in self.rob.iter() {
            writeln!(f, "  {i} ↦ {t}")?;
        }
        if !self.rsb.is_empty() {
            writeln!(f, "{}", self.rsb)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::names::*;
    use crate::value::Val;

    fn base_config() -> Config {
        let regs: RegFile = [(RA, Val::public(1)), (RB, Val::secret(7))]
            .into_iter()
            .collect();
        let mut mem = Memory::new();
        mem.write(0x48, Val::secret(42));
        Config::initial(regs, mem, 1)
    }

    #[test]
    fn initial_configs_are_speculation_free() {
        assert!(base_config().is_speculation_free());
    }

    #[test]
    fn low_equivalence_tolerates_secret_differences() {
        let a = base_config();
        let mut b = base_config();
        b.regs.write(RB, Val::secret(99));
        b.mem.write(0x48, Val::secret(1));
        assert!(a.low_equivalent(&b));
        assert!(!a.arch_equivalent(&b));
    }

    #[test]
    fn low_equivalence_requires_same_pc_and_publics() {
        let a = base_config();
        let mut b = base_config();
        b.pc = 2;
        assert!(!a.low_equivalent(&b));
        let mut c = base_config();
        c.regs.write(RA, Val::public(2));
        assert!(!a.low_equivalent(&c));
    }

    #[test]
    fn arch_equivalence_ignores_speculative_state() {
        let a = base_config();
        let mut b = base_config();
        b.rob.push(crate::transient::Transient::Fence);
        b.pc = 77;
        assert!(a.arch_equivalent(&b));
        assert!(!a.is_speculation_free() || !b.is_speculation_free() || a == b);
    }
}
