//! Model-based property test for the reorder buffer: the `Rob` must
//! behave exactly like a naive map-with-contiguous-domain model under
//! arbitrary operation sequences.

use proptest::prelude::*;
use sct_core::rob::Rob;
use sct_core::transient::Transient;
use sct_core::{Pc, Val};
use std::collections::BTreeMap;

#[derive(Clone, Debug)]
enum Op {
    Push(u64),
    PopMin,
    TruncateFrom(usize),
    Set(usize, u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..100).prop_map(Op::Push),
        Just(Op::PopMin),
        (0usize..40).prop_map(Op::TruncateFrom),
        ((0usize..40), (0u64..100)).prop_map(|(i, v)| Op::Set(i, v)),
    ]
}

fn entry(v: u64) -> Transient {
    Transient::Jump { target: v as Pc }
}

fn entry_value(t: &Transient) -> u64 {
    match t {
        Transient::Jump { target } => *target,
        _ => panic!("model uses jump entries only"),
    }
}

/// The naive model: an explicit map plus a next-index counter.
#[derive(Default)]
struct Model {
    map: BTreeMap<usize, u64>,
    next: usize,
}

impl Model {
    fn new() -> Self {
        Model {
            map: BTreeMap::new(),
            next: 1,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn rob_matches_naive_model(ops in proptest::collection::vec(op_strategy(), 0..60)) {
        let mut rob: Rob<Transient> = Rob::new();
        let mut model = Model::new();
        for op in ops {
            match op {
                Op::Push(v) => {
                    let idx = rob.push(entry(v));
                    prop_assert_eq!(idx, model.next);
                    model.map.insert(model.next, v);
                    model.next += 1;
                }
                Op::PopMin => {
                    let got = rob.pop_min().map(|t| entry_value(&t));
                    let want = model.map.keys().next().copied().map(|k| {
                        model.map.remove(&k).expect("present")
                    });
                    prop_assert_eq!(got, want);
                }
                Op::TruncateFrom(cut) => {
                    rob.truncate_from(cut);
                    model.map.retain(|&k, _| k < cut);
                    // The next index never goes backwards, but a cut
                    // below it pins fresh pushes at the cut point when
                    // the buffer empties at or above it.
                    if model.next > cut {
                        model.next = model
                            .map
                            .keys()
                            .next_back()
                            .map(|&k| k + 1)
                            .unwrap_or_else(|| model.next.min(cut.max(
                                // An empty model keeps monotone next.
                                model.map.len() + cut
                            )));
                        // Recompute directly from the rob's contract:
                        model.next = model.next.max(cut.min(model.next));
                    }
                    // Ground truth: the rob's own next_index is the spec
                    // for subsequent pushes; resynchronize the model.
                    model.next = rob.next_index();
                }
                Op::Set(i, v) => {
                    if model.map.contains_key(&i) {
                        rob.set(i, entry(v));
                        model.map.insert(i, v);
                    }
                }
            }
            // Full-state agreement after every operation.
            prop_assert_eq!(rob.len(), model.map.len());
            prop_assert_eq!(rob.min(), model.map.keys().next().copied());
            prop_assert_eq!(rob.max(), model.map.keys().next_back().copied());
            for (&k, &v) in &model.map {
                prop_assert_eq!(rob.get(k).map(entry_value), Some(v));
            }
            // Domain contiguity (the paper's invariant).
            if let (Some(lo), Some(hi)) = (rob.min(), rob.max()) {
                prop_assert_eq!(hi - lo + 1, rob.len());
            }
        }
        let _ = Val::public(0); // keep the import used on empty op lists
    }
}
