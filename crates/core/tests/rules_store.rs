//! Rule-level tests for the store/forward machinery of §3.4: the full
//! hazard-condition matrix of `store-execute-addr-{ok,hazard}`, load
//! forwarding choice, and fence interactions.

use sct_core::instr::{Instr, Operand};
use sct_core::label::Label;
use sct_core::reg::names::*;
use sct_core::transient::Transient;
use sct_core::{Config, Directive, Machine, Observation, Program, StepError, Val};

fn store(src: Operand, addr: Vec<Operand>, next: u64) -> Instr {
    Instr::Store { src, addr, next }
}

fn load(dst: sct_core::Reg, addr: Vec<Operand>, next: u64) -> Instr {
    Instr::Load { dst, addr, next }
}

/// Two stores to the same slot plus a load: forwarding must pick the
/// *most recent* store with a resolved matching address.
#[test]
fn forwarding_picks_the_most_recent_resolved_store() {
    let mut p = Program::new();
    p.entry = 1;
    p.insert(1, store(Operand::imm(11), vec![Operand::imm(0x45)], 2));
    p.insert(2, store(Operand::imm(22), vec![Operand::imm(0x45)], 3));
    p.insert(3, load(RC, vec![Operand::imm(0x45)], 4));
    let mut m = Machine::new(&p, Config::initial(Default::default(), Default::default(), 1));
    for _ in 0..3 {
        m.step(Directive::Fetch).unwrap();
    }
    for i in [1, 2] {
        m.step(Directive::ExecuteValue(i)).unwrap();
        m.step(Directive::ExecuteAddr(i)).unwrap();
    }
    let obs = m.step(Directive::Execute(3)).unwrap();
    assert_eq!(
        obs,
        vec![Observation::Fwd {
            addr: 0x45,
            label: Label::Public
        }]
    );
    match m.cfg.rob.get(3) {
        Some(Transient::LoadedValue { val, prov, .. }) => {
            assert_eq!(val.bits, 22, "most recent store wins");
            assert_eq!(prov.dep, Some(2));
        }
        other => panic!("unexpected {other:?}"),
    }
}

/// A matching store whose *data* is unresolved blocks the load: neither
/// load rule applies.
#[test]
fn unresolved_data_on_matching_store_blocks_the_load() {
    let mut p = Program::new();
    p.entry = 1;
    p.insert(1, store(RB.into(), vec![Operand::imm(0x45)], 2));
    p.insert(2, load(RC, vec![Operand::imm(0x45)], 3));
    let mut m = Machine::new(&p, Config::initial(Default::default(), Default::default(), 1));
    m.step(Directive::Fetch).unwrap();
    m.step(Directive::Fetch).unwrap();
    m.step(Directive::ExecuteAddr(1)).unwrap();
    assert_eq!(
        m.step(Directive::Execute(2)),
        Err(StepError::StoreDataPending { index: 2, store: 1 })
    );
    // Resolving the data unblocks it.
    m.step(Directive::ExecuteValue(1)).unwrap();
    assert!(m.step(Directive::Execute(2)).is_ok());
}

/// The hazard matrix of `store-execute-addr`:
/// (a) a later load bound to the same address with an *older* source
///     (`a_k = a ∧ j_k < i`, including `⊥`) → hazard;
/// (b) a later load bound to the same address forwarded from *this or a
///     newer* store (`j_k ≥ i`) → no hazard;
/// (c) a later load bound to a different address → no hazard.
#[test]
fn store_addr_hazard_matrix() {
    // Case (a): the load read memory (dep = ⊥) at the address this
    // store later resolves to.
    let mut p = Program::new();
    p.entry = 1;
    p.insert(1, store(Operand::imm(0), vec![RA.into()], 2));
    p.insert(2, load(RC, vec![Operand::imm(0x45)], 3));
    let regs: sct_core::RegFile = [(RA, Val::public(0x45))].into_iter().collect();
    let mut m = Machine::new(&p, Config::initial(regs, Default::default(), 1));
    m.step(Directive::Fetch).unwrap();
    m.step(Directive::Fetch).unwrap();
    m.step(Directive::ExecuteValue(1)).unwrap();
    m.step(Directive::Execute(2)).unwrap(); // reads memory, dep = ⊥
    let obs = m.step(Directive::ExecuteAddr(1)).unwrap();
    assert_eq!(obs[0], Observation::Rollback, "case (a) must hazard");
    assert_eq!(m.cfg.pc, 2, "restart at the offending load");

    // Case (b): the load forwarded from this very store (addresses
    // match) — consistent, no hazard.
    let mut p = Program::new();
    p.entry = 1;
    p.insert(1, store(Operand::imm(7), vec![Operand::imm(0x45)], 2));
    p.insert(2, load(RC, vec![Operand::imm(0x45)], 3));
    let mut m = Machine::new(&p, Config::initial(Default::default(), Default::default(), 1));
    m.step(Directive::Fetch).unwrap();
    m.step(Directive::Fetch).unwrap();
    m.step(Directive::ExecuteValue(1)).unwrap();
    m.step(Directive::ExecuteAddr(1)).unwrap();
    m.step(Directive::Execute(2)).unwrap(); // forwards, dep = 1
    // Nothing left to hazard: the store is already resolved; re-resolving
    // is not applicable (covered elsewhere). Retire cleanly.
    m.step(Directive::Retire).unwrap();
    m.step(Directive::Retire).unwrap();
    assert!(m.cfg.rob.is_empty());

    // Case (c): later load at a *different* address — store resolution
    // does not disturb it.
    let mut p = Program::new();
    p.entry = 1;
    p.insert(1, store(Operand::imm(0), vec![RA.into()], 2));
    p.insert(2, load(RC, vec![Operand::imm(0x50)], 3));
    let regs: sct_core::RegFile = [(RA, Val::public(0x45))].into_iter().collect();
    let mut m = Machine::new(&p, Config::initial(regs, Default::default(), 1));
    m.step(Directive::Fetch).unwrap();
    m.step(Directive::Fetch).unwrap();
    m.step(Directive::ExecuteValue(1)).unwrap();
    m.step(Directive::Execute(2)).unwrap();
    let obs = m.step(Directive::ExecuteAddr(1)).unwrap();
    assert_eq!(
        obs,
        vec![Observation::Fwd {
            addr: 0x45,
            label: Label::Public
        }],
        "case (c) must not hazard"
    );
}

/// The hazard picks the *earliest* offending load (`min(k) > i`) and
/// squashes everything from there.
#[test]
fn hazard_restarts_at_the_earliest_offender() {
    let mut p = Program::new();
    p.entry = 1;
    p.insert(1, store(Operand::imm(0), vec![RA.into()], 2));
    p.insert(2, load(RB, vec![Operand::imm(0x45)], 3));
    p.insert(3, load(RC, vec![Operand::imm(0x45)], 4));
    let regs: sct_core::RegFile = [(RA, Val::public(0x45))].into_iter().collect();
    let mut m = Machine::new(&p, Config::initial(regs, Default::default(), 1));
    for _ in 0..3 {
        m.step(Directive::Fetch).unwrap();
    }
    m.step(Directive::ExecuteValue(1)).unwrap();
    m.step(Directive::Execute(2)).unwrap();
    m.step(Directive::Execute(3)).unwrap();
    m.step(Directive::ExecuteAddr(1)).unwrap();
    // Both loads were offenders; the rollback restarts at the first.
    assert_eq!(m.cfg.pc, 2);
    assert!(m.cfg.rob.get(2).is_none());
    assert!(m.cfg.rob.get(3).is_none());
}

/// Store execution (both halves) is blocked by an older fence.
#[test]
fn fence_blocks_store_resolution() {
    let mut p = Program::new();
    p.entry = 1;
    p.insert(1, Instr::Fence { next: 2 });
    p.insert(2, store(Operand::imm(1), vec![Operand::imm(0x45)], 3));
    let mut m = Machine::new(&p, Config::initial(Default::default(), Default::default(), 1));
    m.step(Directive::Fetch).unwrap();
    m.step(Directive::Fetch).unwrap();
    assert_eq!(
        m.step(Directive::ExecuteValue(2)),
        Err(StepError::FenceBlocked { index: 2 })
    );
    assert_eq!(
        m.step(Directive::ExecuteAddr(2)),
        Err(StepError::FenceBlocked { index: 2 })
    );
    // Retiring the fence unblocks the store.
    m.step(Directive::Retire).unwrap();
    assert!(m.step(Directive::ExecuteValue(2)).is_ok());
    assert!(m.step(Directive::ExecuteAddr(2)).is_ok());
}

/// Stores retire only when fully resolved, and retiring writes memory
/// with the store's value (label included).
#[test]
fn store_retire_requires_full_resolution() {
    let mut p = Program::new();
    p.entry = 1;
    p.insert(
        1,
        store(Operand::Imm(Val::secret(9)), vec![Operand::imm(0x45)], 2),
    );
    let mut m = Machine::new(&p, Config::initial(Default::default(), Default::default(), 1));
    m.step(Directive::Fetch).unwrap();
    assert!(matches!(
        m.step(Directive::Retire),
        Err(StepError::NotRetirable { .. })
    ));
    m.step(Directive::ExecuteValue(1)).unwrap();
    assert!(matches!(
        m.step(Directive::Retire),
        Err(StepError::NotRetirable { .. })
    ));
    m.step(Directive::ExecuteAddr(1)).unwrap();
    let obs = m.step(Directive::Retire).unwrap();
    assert_eq!(
        obs,
        vec![Observation::Write {
            addr: 0x45,
            label: Label::Public
        }]
    );
    assert_eq!(m.cfg.mem.read(0x45), Val::secret(9));
}

/// A store with a secret-labeled address leaks at *address resolution*
/// (the `fwd` observation), before it ever retires.
#[test]
fn secret_store_address_leaks_at_resolution() {
    let mut p = Program::new();
    p.entry = 1;
    p.insert(1, store(Operand::imm(0), vec![Operand::imm(0x50), RB.into()], 2));
    let regs: sct_core::RegFile = [(RB, Val::secret(3))].into_iter().collect();
    let mut m = Machine::new(&p, Config::initial(regs, Default::default(), 1));
    m.step(Directive::Fetch).unwrap();
    m.step(Directive::ExecuteValue(1)).unwrap();
    let obs = m.step(Directive::ExecuteAddr(1)).unwrap();
    assert!(obs[0].is_secret(), "fwd observation carries the address label");
}
