//! Rule-level tests for calls, returns, and the RSB (Appendix A):
//! speculative call/ret squashing, RSB rollback, nested calls, and
//! stack-discipline interaction.

use sct_core::instr::{Instr, Operand};
use sct_core::reg::names::*;
use sct_core::reg::Reg;
use sct_core::{
    Config, Directive, Machine, Observation, OpCode, Params, Program, RegFile, StepError, Val,
};

/// main: br → (mispredicted) call f; out: ...; f: ret
fn speculative_call_program() -> (Program, Config) {
    let mut p = Program::new();
    p.entry = 1;
    p.insert(
        1,
        Instr::Br {
            op: OpCode::Gt,
            args: vec![Operand::imm(4), RA.into()],
            tru: 2,
            fls: 3,
        },
    );
    p.insert(2, Instr::Call { callee: 4, ret: 3 });
    p.insert(
        3,
        Instr::Op {
            dst: RB,
            op: OpCode::Add,
            args: vec![RB.into(), Operand::imm(1)],
            next: 5,
        },
    );
    p.insert(4, Instr::Ret);
    let regs: RegFile = [(RA, Val::public(9)), (Reg::RSP, Val::public(0x7c))]
        .into_iter()
        .collect();
    (p, Config::initial(regs, Default::default(), 1))
}

#[test]
fn squashed_call_unwinds_the_rsb() {
    let (p, cfg) = speculative_call_program();
    let mut m = Machine::new(&p, cfg);
    // Mispredict into the call.
    m.step(Directive::FetchBranch(true)).unwrap();
    m.step(Directive::Fetch).unwrap(); // call expands at 2..4
    assert_eq!(m.cfg.rsb.top(), Some(3), "speculative push visible");
    // The branch resolves: everything after it (including the call's
    // RSB push) is squashed.
    let obs = m.step(Directive::Execute(1)).unwrap();
    assert_eq!(obs[0], Observation::Rollback);
    assert_eq!(m.cfg.rsb.top(), None, "RSB rolled back with the buffer");
    assert_eq!(m.cfg.pc, 3);
    assert_eq!(m.cfg.rob.len(), 1); // just the resolved jump
}

#[test]
fn speculative_ret_through_rsb_matches_architecture() {
    let (p, mut cfg) = speculative_call_program();
    cfg.regs.write(RA, Val::public(1)); // the call is architectural now
    let mut m = Machine::new(&p, cfg);
    m.step(Directive::FetchBranch(true)).unwrap(); // correct guess
    m.step(Directive::Fetch).unwrap(); // call → 2,3,4; rsb push 3
    m.step(Directive::Fetch).unwrap(); // ret at 4 → 5..8; rsb pop; pc = 3
    assert_eq!(m.cfg.pc, 3);
    // Resolve everything in order and retire through both groups.
    m.step(Directive::Execute(1)).unwrap(); // branch correct
    m.step(Directive::Execute(3)).unwrap(); // rsp = succ
    m.step(Directive::ExecuteValue(4)).unwrap();
    m.step(Directive::ExecuteAddr(4)).unwrap();
    m.step(Directive::Execute(6)).unwrap(); // rtmp = load [rsp] (forwarded 3)
    m.step(Directive::Execute(7)).unwrap(); // rsp = pred
    let obs = m.step(Directive::Execute(8)).unwrap(); // jmpi: correct (3)
    assert_eq!(
        obs,
        vec![Observation::Jump {
            target: 3,
            label: sct_core::Label::Public
        }]
    );
    m.step(Directive::Retire).unwrap(); // jump (the branch)
    let obs = m.step(Directive::Retire).unwrap(); // call group
    assert!(matches!(obs[0], Observation::Write { .. }));
    m.step(Directive::Retire).unwrap(); // ret group
    assert_eq!(m.cfg.regs.read(Reg::RSP), Val::public(0x7c), "stack balanced");
}

#[test]
fn ret_group_cannot_retire_before_call_group() {
    let (p, mut cfg) = speculative_call_program();
    cfg.regs.write(RA, Val::public(1));
    let mut m = Machine::new(&p, cfg);
    m.step(Directive::FetchBranch(true)).unwrap();
    m.step(Directive::Fetch).unwrap(); // call
    m.step(Directive::Fetch).unwrap(); // ret
    // Retire is strictly in order: the branch at MIN is unresolved.
    assert!(matches!(
        m.step(Directive::Retire),
        Err(StepError::NotRetirable { .. })
    ));
}

#[test]
fn nested_calls_track_the_rsb_stack() {
    // main calls f, f calls g: the RSB holds both return points.
    let mut p = Program::new();
    p.entry = 1;
    p.insert(1, Instr::Call { callee: 3, ret: 2 });
    p.insert(
        2,
        Instr::Op {
            dst: RB,
            op: OpCode::Add,
            args: vec![Operand::imm(1)],
            next: 6,
        },
    );
    p.insert(3, Instr::Call { callee: 5, ret: 4 });
    p.insert(4, Instr::Ret);
    p.insert(5, Instr::Ret);
    let regs: RegFile = [(Reg::RSP, Val::public(0x7c))].into_iter().collect();
    let cfg = Config::initial(regs, Default::default(), 1);
    let mut m = Machine::new(&p, cfg);
    m.step(Directive::Fetch).unwrap(); // call f: push 2
    assert_eq!(m.cfg.rsb.top(), Some(2));
    m.step(Directive::Fetch).unwrap(); // call g: push 4
    assert_eq!(m.cfg.rsb.top(), Some(4));
    m.step(Directive::Fetch).unwrap(); // ret in g: pop → predict 4
    assert_eq!(m.cfg.pc, 4);
    assert_eq!(m.cfg.rsb.top(), Some(2));
    m.step(Directive::Fetch).unwrap(); // ret in f: pop → predict 2
    assert_eq!(m.cfg.pc, 2);
    assert_eq!(m.cfg.rsb.top(), None);
}

#[test]
fn stack_discipline_governs_slot_addresses() {
    for (stack, expected_slot) in [
        (sct_core::StackDiscipline::GrowsDown { word: 1 }, 0x7b),
        (sct_core::StackDiscipline::GrowsDown { word: 8 }, 0x74),
        (sct_core::StackDiscipline::GrowsUp { word: 4 }, 0x80),
    ] {
        let mut p = Program::new();
        p.entry = 1;
        p.insert(1, Instr::Call { callee: 3, ret: 2 });
        p.insert(3, Instr::Ret);
        let regs: RegFile = [(Reg::RSP, Val::public(0x7c))].into_iter().collect();
        let cfg = Config::initial(regs, Default::default(), 1);
        let params = Params {
            stack,
            ..Params::paper()
        };
        let mut m = Machine::with_params(&p, cfg, params);
        m.step(Directive::Fetch).unwrap();
        m.step(Directive::Execute(2)).unwrap();
        m.step(Directive::ExecuteValue(3)).unwrap();
        let obs = m.step(Directive::ExecuteAddr(3)).unwrap();
        assert_eq!(
            obs,
            vec![Observation::Fwd {
                addr: expected_slot,
                label: sct_core::Label::Public
            }],
            "{stack:?}"
        );
    }
}

#[test]
fn rob_capacity_counts_expansion_groups() {
    let (p, mut cfg) = speculative_call_program();
    cfg.pc = 2; // straight at the call
    let params = Params {
        rob_capacity: Some(2), // too small for a 3-entry call group
        ..Params::paper()
    };
    let mut m = Machine::with_params(&p, cfg, params);
    assert_eq!(m.step(Directive::Fetch), Err(StepError::RobFull));
}
