//! Rule-level tests for aliasing prediction (§3.5): all four resolution
//! rules of partially-resolved loads, plus the interaction with the
//! store-address hazard checks.

use sct_core::instr::{Instr, Operand};
use sct_core::label::Label;
use sct_core::reg::names::*;
use sct_core::transient::Transient;
use sct_core::{Config, Directive, Machine, Observation, OpCode, Program, StepError, Val};

/// Program: store rb, [0x40 + ra]; load rc, [0x45]; load rd, [0x50 + rc].
fn alias_program() -> (Program, Config) {
    let mut p = Program::new();
    p.entry = 1;
    p.insert(
        1,
        Instr::Store {
            src: RB.into(),
            addr: vec![Operand::imm(0x40), RA.into()],
            next: 2,
        },
    );
    p.insert(
        2,
        Instr::Load {
            dst: RC,
            addr: vec![Operand::imm(0x45)],
            next: 3,
        },
    );
    p.insert(
        3,
        Instr::Load {
            dst: RD,
            addr: vec![Operand::imm(0x50), RC.into()],
            next: 4,
        },
    );
    let regs = [(RA, Val::public(5)), (RB, Val::secret(3))]
        .into_iter()
        .collect();
    let mut cfg = Config::initial(regs, Default::default(), 1);
    cfg.mem.write(0x45, Val::public(7));
    (p, cfg)
}

fn setup(m: &mut Machine<'_>) {
    m.step(Directive::Fetch).unwrap(); // store at 1
    m.step(Directive::Fetch).unwrap(); // load at 2
    m.step(Directive::Fetch).unwrap(); // load at 3
    m.step(Directive::ExecuteValue(1)).unwrap(); // store data = 3_sec
}

#[test]
fn fwd_guess_requires_resolved_store_data() {
    let (p, cfg) = alias_program();
    let mut m = Machine::new(&p, cfg);
    m.step(Directive::Fetch).unwrap();
    m.step(Directive::Fetch).unwrap();
    // Data not resolved yet: the predictor has nothing to forward.
    assert_eq!(
        m.step(Directive::ExecuteFwd(2, 1)),
        Err(StepError::BadForwardSource { index: 2, from: 1 })
    );
    // Nor can a load forward from itself or from a later index.
    m.step(Directive::ExecuteValue(1)).unwrap();
    assert!(matches!(
        m.step(Directive::ExecuteFwd(2, 2)),
        Err(StepError::BadForwardSource { .. })
    ));
}

#[test]
fn guessed_load_supplies_value_to_dependents() {
    let (p, cfg) = alias_program();
    let mut m = Machine::new(&p, cfg);
    setup(&mut m);
    m.step(Directive::ExecuteFwd(2, 1)).unwrap();
    assert!(matches!(
        m.cfg.rob.get(2),
        Some(Transient::LoadGuessed { from: 1, .. })
    ));
    // The dependent load resolves using the forwarded (secret) value:
    // address = 0x50 + 3 with a secret label — the Figure 2 leak.
    let obs = m.step(Directive::Execute(3)).unwrap();
    assert_eq!(
        obs,
        vec![Observation::Read {
            addr: 0x53,
            label: Label::Secret
        }]
    );
}

#[test]
fn guessed_load_resolves_optimistically_while_store_unresolved() {
    let (p, cfg) = alias_program();
    let mut m = Machine::new(&p, cfg);
    setup(&mut m);
    m.step(Directive::ExecuteFwd(2, 1)).unwrap();
    // load-execute-addr-ok: the originating store's address is still
    // unknown, so the prediction stands.
    let obs = m.step(Directive::Execute(2)).unwrap();
    assert_eq!(
        obs,
        vec![Observation::Fwd {
            addr: 0x45,
            label: Label::Public
        }]
    );
    match m.cfg.rob.get(2) {
        Some(Transient::LoadedValue { val, prov, .. }) => {
            assert_eq!(*val, Val::secret(3));
            assert_eq!(prov.dep, Some(1));
            assert_eq!(prov.addr, 0x45);
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn store_addr_mismatch_rolls_back_the_misprediction() {
    let (p, cfg) = alias_program();
    let mut m = Machine::new(&p, cfg);
    setup(&mut m);
    m.step(Directive::ExecuteFwd(2, 1)).unwrap();
    m.step(Directive::Execute(2)).unwrap(); // optimistic resolution
    // Now the store resolves to 0x45... with ra = 5 it really is 0x45!
    // The prediction was *correct*: forwarding consistency holds
    // (jk = i ⇒ ak = a), no hazard.
    let obs = m.step(Directive::ExecuteAddr(1)).unwrap();
    assert_eq!(
        obs,
        vec![Observation::Fwd {
            addr: 0x45,
            label: Label::Public
        }]
    );
}

#[test]
fn store_addr_mismatch_with_wrong_prediction_hazards() {
    let (p, mut cfg) = alias_program();
    // ra = 2: the store actually writes 0x42, not 0x45.
    cfg.regs.write(RA, Val::public(2));
    let mut m = Machine::new(&p, cfg);
    setup(&mut m);
    m.step(Directive::ExecuteFwd(2, 1)).unwrap();
    m.step(Directive::Execute(2)).unwrap(); // resolves with dep = 1, addr = 0x45
    // The store resolves to 0x42: the load forwarded from it but is
    // bound to a different address (jk = i ∧ ak ≠ a) — hazard.
    let obs = m.step(Directive::ExecuteAddr(1)).unwrap();
    assert_eq!(obs[0], Observation::Rollback);
    // Rolled back to the load's program point.
    assert_eq!(m.cfg.pc, 2);
    assert!(m.cfg.rob.get(2).is_none());
}

#[test]
fn guessed_load_detects_mispredicted_aliasing_at_resolution() {
    let (p, mut cfg) = alias_program();
    cfg.regs.write(RA, Val::public(2)); // store goes to 0x42
    let mut m = Machine::new(&p, cfg);
    setup(&mut m);
    m.step(Directive::ExecuteFwd(2, 1)).unwrap();
    // Resolve the *store address* first (no hazard yet: the load is
    // only partially resolved, not a LoadedValue).
    m.step(Directive::ExecuteAddr(1)).unwrap();
    // Now the guessed load resolves: its address 0x45 ≠ the store's
    // 0x42 — mispredicted aliasing, rollback (load-execute-addr-hazard).
    let obs = m.step(Directive::Execute(2)).unwrap();
    assert_eq!(
        obs,
        vec![
            Observation::Rollback,
            Observation::Fwd {
                addr: 0x45,
                label: Label::Public
            }
        ]
    );
    assert_eq!(m.cfg.pc, 2);
}

#[test]
fn retired_store_validates_against_memory_match() {
    // The originating store retires before the guessed load resolves;
    // the forwarded value must be checked against memory.
    let mut p = Program::new();
    p.entry = 1;
    p.insert(
        1,
        Instr::Store {
            src: Operand::Imm(Val::public(7)),
            addr: vec![Operand::imm(0x45)],
            next: 2,
        },
    );
    p.insert(
        2,
        Instr::Load {
            dst: RC,
            addr: vec![Operand::imm(0x45)],
            next: 3,
        },
    );
    let cfg = Config::initial(Default::default(), Default::default(), 1);
    let mut m = Machine::new(&p, cfg);
    m.step(Directive::Fetch).unwrap();
    m.step(Directive::Fetch).unwrap();
    m.step(Directive::ExecuteValue(1)).unwrap();
    m.step(Directive::ExecuteFwd(2, 1)).unwrap();
    m.step(Directive::ExecuteAddr(1)).unwrap();
    m.step(Directive::Retire).unwrap(); // store commits 7 to 0x45
    // load-execute-addr-mem-match: memory now holds exactly the
    // forwarded value.
    let obs = m.step(Directive::Execute(2)).unwrap();
    assert_eq!(
        obs,
        vec![Observation::Read {
            addr: 0x45,
            label: Label::Public
        }]
    );
    match m.cfg.rob.get(2) {
        Some(Transient::LoadedValue { val, prov, .. }) => {
            assert_eq!(*val, Val::public(7));
            assert_eq!(prov.dep, None, "validated against memory: dep = ⊥");
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn retired_store_validates_against_memory_hazard() {
    // Same shape, but another store overwrote the slot in between: the
    // forwarded value no longer matches memory (mem-hazard rollback).
    let mut p = Program::new();
    p.entry = 1;
    p.insert(
        1,
        Instr::Store {
            src: Operand::Imm(Val::public(7)),
            addr: vec![Operand::imm(0x45)],
            next: 2,
        },
    );
    p.insert(
        2,
        Instr::Store {
            src: Operand::Imm(Val::public(9)),
            addr: vec![Operand::imm(0x45)],
            next: 3,
        },
    );
    p.insert(
        3,
        Instr::Load {
            dst: RC,
            addr: vec![Operand::imm(0x45)],
            next: 4,
        },
    );
    let cfg = Config::initial(Default::default(), Default::default(), 1);
    let mut m = Machine::new(&p, cfg);
    m.step(Directive::Fetch).unwrap(); // store 7
    m.step(Directive::Fetch).unwrap(); // store 9
    m.step(Directive::Fetch).unwrap(); // load
    m.step(Directive::ExecuteValue(1)).unwrap();
    m.step(Directive::ExecuteAddr(1)).unwrap();
    // The aliasing predictor forwards the *old* store's 7.
    m.step(Directive::ExecuteFwd(3, 1)).unwrap();
    m.step(Directive::ExecuteValue(2)).unwrap();
    m.step(Directive::ExecuteAddr(2)).unwrap();
    m.step(Directive::Retire).unwrap(); // 7 hits memory
    m.step(Directive::Retire).unwrap(); // 9 overwrites it
    let obs = m.step(Directive::Execute(3)).unwrap();
    assert_eq!(obs[0], Observation::Rollback, "stale forward must roll back");
    assert_eq!(m.cfg.pc, 3);
}

#[test]
fn guessed_load_blocked_by_prior_matching_store_after_retirement() {
    // The paper has no rule when the originating store retired but a
    // *different* prior in-buffer store matches the address: the
    // directive is stuck.
    let mut p = Program::new();
    p.entry = 1;
    p.insert(
        1,
        Instr::Store {
            src: Operand::Imm(Val::public(7)),
            addr: vec![Operand::imm(0x45)],
            next: 2,
        },
    );
    p.insert(
        2,
        Instr::Store {
            src: Operand::Imm(Val::public(9)),
            addr: vec![Operand::imm(0x45)],
            next: 3,
        },
    );
    p.insert(
        3,
        Instr::Load {
            dst: RC,
            addr: vec![Operand::imm(0x45)],
            next: 4,
        },
    );
    let cfg = Config::initial(Default::default(), Default::default(), 1);
    let mut m = Machine::new(&p, cfg);
    for _ in 0..3 {
        m.step(Directive::Fetch).unwrap();
    }
    m.step(Directive::ExecuteValue(1)).unwrap();
    m.step(Directive::ExecuteAddr(1)).unwrap();
    m.step(Directive::ExecuteFwd(3, 1)).unwrap();
    m.step(Directive::Retire).unwrap(); // store 1 retires
    // Store 2 is still in the buffer with a resolved matching address.
    m.step(Directive::ExecuteValue(2)).unwrap();
    m.step(Directive::ExecuteAddr(2)).unwrap();
    assert_eq!(
        m.step(Directive::Execute(3)),
        Err(StepError::GuessedLoadBlocked { index: 3 })
    );
}

#[test]
fn fig2_attack_full_replay() {
    // End-to-end §3.5: value-forward before any address is known, leak,
    // then rollback on the detected misprediction — Figure 2's exact
    // directive sequence (on a compact 4-instruction variant).
    let (p, cfg) = alias_program();
    let mut m = Machine::new(&p, cfg);
    setup(&mut m);
    let mut trace = Vec::new();
    for d in [
        Directive::ExecuteFwd(2, 1),
        Directive::Execute(3), // leak: read (3 + 0x50)_sec
    ] {
        trace.extend(m.step(d).unwrap());
    }
    assert!(trace.iter().any(|o| o.is_secret()));
    // The leak happened while the store's address was still unknown:
    // no rollback has occurred yet.
    assert!(!trace.contains(&Observation::Rollback));
}

#[test]
fn op_arity_mismatch_is_reported_not_panicked() {
    // Malformed programs surface as step errors, not panics.
    let mut p = Program::new();
    p.entry = 1;
    p.insert(
        1,
        Instr::Op {
            dst: RA,
            op: OpCode::Not,
            args: vec![Operand::imm(1), Operand::imm(2)],
            next: 2,
        },
    );
    let cfg = Config::initial(Default::default(), Default::default(), 1);
    let mut m = Machine::new(&p, cfg);
    m.step(Directive::Fetch).unwrap();
    assert!(matches!(
        m.step(Directive::Execute(1)),
        Err(StepError::Eval(_))
    ));
}
