//! Executable metatheory: the paper's lemmas and theorems, checked by
//! property-based testing over random programs and random adversarial
//! schedules.
//!
//! | Test | Paper result |
//! |------|--------------|
//! | `determinism`                    | Lemma B.1 |
//! | `sequential_determinism`         | Lemma B.5 |
//! | `sequential_equivalence`         | Theorem 3.2 / B.7 |
//! | `label_stability`                | Theorem B.9 / Corollary B.10 |
//! | `label_check_soundness`          | justification of Pitchfork's label-based check |

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sct_core::proggen::{random_config, random_program, ProgGenOptions};
use sct_core::sched::enumerate::applicable_directives;
use sct_core::sched::random::{run_random, RandomRun, RandomSchedulerOptions};
use sct_core::sched::sequential::{run_sequential, run_sequential_bounded};
use sct_core::{Directive, Machine, Params};

fn gen_opts() -> ProgGenOptions {
    ProgGenOptions {
        len: 14,
        regs: 4,
        mem_base: 0x40,
        mem_size: 16,
        mem_ratio: 45,
        branch_ratio: 20,
        fence_ratio: 5,
    }
}

fn adversary_opts() -> RandomSchedulerOptions {
    RandomSchedulerOptions {
        max_steps: 3_000,
        max_rob: 20,
        fetch_bias: 55,
    }
}

fn random_run_from_seed(seed: u64) -> (sct_core::Program, sct_core::Config, RandomRun) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let opts = gen_opts();
    let program = random_program(&mut rng, &opts);
    let config = random_config(&mut rng, &opts);
    let run = run_random(
        &program,
        config.clone(),
        Params::paper(),
        adversary_opts(),
        &mut rng,
    );
    (program, config, run)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lemma B.1: the step relation is a function of `(C, d)`.
    #[test]
    fn determinism(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let opts = gen_opts();
        let program = random_program(&mut rng, &opts);
        let config = random_config(&mut rng, &opts);
        let mut m = Machine::new(&program, config);
        for _ in 0..200 {
            let ds = applicable_directives(&m);
            let Some(&d) = ds.first() else { break };
            let mut m1 = m.clone();
            let mut m2 = m.clone();
            let o1 = m1.step(d).unwrap();
            let o2 = m2.step(d).unwrap();
            prop_assert_eq!(&o1, &o2);
            prop_assert_eq!(&m1.cfg, &m2.cfg);
            m = m1;
        }
    }

    /// Lemma B.5: sequential execution is deterministic (two canonical
    /// sequential runs from the same initial configuration agree).
    #[test]
    fn sequential_determinism(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let opts = gen_opts();
        let program = random_program(&mut rng, &opts);
        let config = random_config(&mut rng, &opts);
        let a = run_sequential(&program, config.clone(), Params::paper(), 20_000).unwrap();
        let b = run_sequential(&program, config, Params::paper(), 20_000).unwrap();
        prop_assert_eq!(a.config, b.config);
        prop_assert_eq!(a.outcome.trace, b.outcome.trace);
        prop_assert_eq!(a.outcome.retired, b.outcome.retired);
    }

    /// Theorem 3.2 / B.7: any well-formed speculative execution with `N`
    /// retires agrees with the canonical sequential execution of `N`
    /// instructions on registers and memory (`≈`); if the speculative
    /// execution is terminal the configurations agree exactly on
    /// architectural state and program point.
    #[test]
    fn sequential_equivalence(seed in any::<u64>()) {
        let (program, config, run) = random_run_from_seed(seed);
        let n = run.outcome.retired;
        let seq = run_sequential_bounded(
            &program,
            config,
            Params::paper(),
            n,
            50_000,
        )
        .unwrap();
        prop_assert_eq!(seq.outcome.retired, n, "sequential run too short");
        prop_assert!(
            run.config.arch_equivalent(&seq.config),
            "speculative (N={}) and sequential architectural states differ:\n\
             spec regs: {:?}\nseq regs:  {:?}\nschedule: {}",
            n, run.config.regs, seq.config.regs, run.schedule
        );
        if run.terminal {
            prop_assert_eq!(run.config.pc, seq.config.pc);
        }
    }

    /// Theorem B.9 / Corollary B.10: if a speculative execution's trace
    /// carries no secret label, neither does the sequential execution of
    /// the same `N` instructions.
    #[test]
    fn label_stability(seed in any::<u64>()) {
        let (program, config, run) = random_run_from_seed(seed);
        if run.outcome.trace.is_public() {
            let seq = run_sequential_bounded(
                &program,
                config,
                Params::paper(),
                run.outcome.retired,
                50_000,
            )
            .unwrap();
            prop_assert!(
                seq.outcome.trace.is_public(),
                "sequential run leaked where speculative did not: seq trace {}",
                seq.outcome.trace
            );
        }
    }

    /// Soundness of the label-based (Pitchfork-style) check for the
    /// fragment Pitchfork explores (no alias-prediction directives): a
    /// schedule whose trace carries no secret label produces *identical*
    /// traces on every low-equivalent sibling.
    #[test]
    fn label_check_soundness(seed in any::<u64>()) {
        let (program, config, run) = random_run_from_seed(seed);
        let uses_alias_prediction = run
            .schedule
            .iter()
            .any(|d| matches!(d, Directive::ExecuteFwd(_, _)));
        if uses_alias_prediction || !run.outcome.trace.is_public() {
            return Ok(());
        }
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xdead_beef);
        let violation = sct_core::sct::check_schedule_relational(
            &program,
            config,
            Params::paper(),
            &run.schedule,
            6,
            &mut rng,
        )
        .unwrap();
        prop_assert!(
            violation.is_none(),
            "label-clean schedule diverged relationally: {}",
            violation.unwrap()
        );
    }

    /// Replaying a recorded well-formed schedule reproduces the identical
    /// outcome (big-step determinism).
    #[test]
    fn replay_fidelity(seed in any::<u64>()) {
        let (program, config, run) = random_run_from_seed(seed);
        let mut m = Machine::new(&program, config);
        let replay = m.run(&run.schedule).expect("recorded schedule is well-formed");
        prop_assert_eq!(replay.trace, run.outcome.trace);
        prop_assert_eq!(replay.retired, run.outcome.retired);
        prop_assert_eq!(m.cfg, run.config);
    }
}

/// Proposition B.11 on the corpus scale is exercised in the litmus crate;
/// here we check the degenerate case: an SCT-clean straight-line program
/// is sequentially constant-time.
#[test]
fn sct_implies_sequential_ct_smoke() {
    use sct_core::instr::{Instr, Operand};
    use sct_core::OpCode;
    let mut p = sct_core::Program::new();
    p.entry = 1;
    p.insert(
        1,
        Instr::Op {
            dst: sct_core::reg::names::RA,
            op: OpCode::Add,
            args: vec![Operand::imm(1), Operand::imm(2)],
            next: 2,
        },
    );
    let cfg = sct_core::Config::initial(Default::default(), Default::default(), 1);
    let seq = run_sequential(&p, cfg, Params::paper(), 100).unwrap();
    assert!(seq.outcome.trace.is_public());
    assert!(seq.terminal);
}
