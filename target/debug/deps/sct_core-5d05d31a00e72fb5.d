/root/repo/target/debug/deps/sct_core-5d05d31a00e72fb5.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/directive.rs crates/core/src/error.rs crates/core/src/examples.rs crates/core/src/instr.rs crates/core/src/label.rs crates/core/src/machine.rs crates/core/src/mem.rs crates/core/src/observation.rs crates/core/src/op.rs crates/core/src/params.rs crates/core/src/proggen.rs crates/core/src/reg.rs crates/core/src/resolve.rs crates/core/src/rob.rs crates/core/src/rsb.rs crates/core/src/rules/mod.rs crates/core/src/rules/execute.rs crates/core/src/rules/fetch.rs crates/core/src/rules/retire.rs crates/core/src/sched/mod.rs crates/core/src/sched/enumerate.rs crates/core/src/sched/random.rs crates/core/src/sched/sequential.rs crates/core/src/sct.rs crates/core/src/transient.rs crates/core/src/value.rs

/root/repo/target/debug/deps/libsct_core-5d05d31a00e72fb5.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/directive.rs crates/core/src/error.rs crates/core/src/examples.rs crates/core/src/instr.rs crates/core/src/label.rs crates/core/src/machine.rs crates/core/src/mem.rs crates/core/src/observation.rs crates/core/src/op.rs crates/core/src/params.rs crates/core/src/proggen.rs crates/core/src/reg.rs crates/core/src/resolve.rs crates/core/src/rob.rs crates/core/src/rsb.rs crates/core/src/rules/mod.rs crates/core/src/rules/execute.rs crates/core/src/rules/fetch.rs crates/core/src/rules/retire.rs crates/core/src/sched/mod.rs crates/core/src/sched/enumerate.rs crates/core/src/sched/random.rs crates/core/src/sched/sequential.rs crates/core/src/sct.rs crates/core/src/transient.rs crates/core/src/value.rs

/root/repo/target/debug/deps/libsct_core-5d05d31a00e72fb5.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/directive.rs crates/core/src/error.rs crates/core/src/examples.rs crates/core/src/instr.rs crates/core/src/label.rs crates/core/src/machine.rs crates/core/src/mem.rs crates/core/src/observation.rs crates/core/src/op.rs crates/core/src/params.rs crates/core/src/proggen.rs crates/core/src/reg.rs crates/core/src/resolve.rs crates/core/src/rob.rs crates/core/src/rsb.rs crates/core/src/rules/mod.rs crates/core/src/rules/execute.rs crates/core/src/rules/fetch.rs crates/core/src/rules/retire.rs crates/core/src/sched/mod.rs crates/core/src/sched/enumerate.rs crates/core/src/sched/random.rs crates/core/src/sched/sequential.rs crates/core/src/sct.rs crates/core/src/transient.rs crates/core/src/value.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/directive.rs:
crates/core/src/error.rs:
crates/core/src/examples.rs:
crates/core/src/instr.rs:
crates/core/src/label.rs:
crates/core/src/machine.rs:
crates/core/src/mem.rs:
crates/core/src/observation.rs:
crates/core/src/op.rs:
crates/core/src/params.rs:
crates/core/src/proggen.rs:
crates/core/src/reg.rs:
crates/core/src/resolve.rs:
crates/core/src/rob.rs:
crates/core/src/rsb.rs:
crates/core/src/rules/mod.rs:
crates/core/src/rules/execute.rs:
crates/core/src/rules/fetch.rs:
crates/core/src/rules/retire.rs:
crates/core/src/sched/mod.rs:
crates/core/src/sched/enumerate.rs:
crates/core/src/sched/random.rs:
crates/core/src/sched/sequential.rs:
crates/core/src/sct.rs:
crates/core/src/transient.rs:
crates/core/src/value.rs:
