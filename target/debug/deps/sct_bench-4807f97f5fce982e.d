/root/repo/target/debug/deps/sct_bench-4807f97f5fce982e.d: crates/bench/src/lib.rs crates/bench/src/render.rs crates/bench/src/sweep.rs

/root/repo/target/debug/deps/libsct_bench-4807f97f5fce982e.rlib: crates/bench/src/lib.rs crates/bench/src/render.rs crates/bench/src/sweep.rs

/root/repo/target/debug/deps/libsct_bench-4807f97f5fce982e.rmeta: crates/bench/src/lib.rs crates/bench/src/render.rs crates/bench/src/sweep.rs

crates/bench/src/lib.rs:
crates/bench/src/render.rs:
crates/bench/src/sweep.rs:
