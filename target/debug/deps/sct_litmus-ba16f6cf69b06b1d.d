/root/repo/target/debug/deps/sct_litmus-ba16f6cf69b06b1d.d: crates/litmus/src/lib.rs crates/litmus/src/alias.rs crates/litmus/src/corpus.rs crates/litmus/src/figures.rs crates/litmus/src/harness.rs crates/litmus/src/kocher.rs crates/litmus/src/layout.rs crates/litmus/src/v1p1.rs crates/litmus/src/v2.rs crates/litmus/src/v4.rs crates/litmus/src/../corpus/spectre_v1.sasm crates/litmus/src/../corpus/spectre_v1_fenced.sasm crates/litmus/src/../corpus/spectre_v1p1.sasm crates/litmus/src/../corpus/spectre_v4.sasm crates/litmus/src/../corpus/ct_select.sasm

/root/repo/target/debug/deps/sct_litmus-ba16f6cf69b06b1d: crates/litmus/src/lib.rs crates/litmus/src/alias.rs crates/litmus/src/corpus.rs crates/litmus/src/figures.rs crates/litmus/src/harness.rs crates/litmus/src/kocher.rs crates/litmus/src/layout.rs crates/litmus/src/v1p1.rs crates/litmus/src/v2.rs crates/litmus/src/v4.rs crates/litmus/src/../corpus/spectre_v1.sasm crates/litmus/src/../corpus/spectre_v1_fenced.sasm crates/litmus/src/../corpus/spectre_v1p1.sasm crates/litmus/src/../corpus/spectre_v4.sasm crates/litmus/src/../corpus/ct_select.sasm

crates/litmus/src/lib.rs:
crates/litmus/src/alias.rs:
crates/litmus/src/corpus.rs:
crates/litmus/src/figures.rs:
crates/litmus/src/harness.rs:
crates/litmus/src/kocher.rs:
crates/litmus/src/layout.rs:
crates/litmus/src/v1p1.rs:
crates/litmus/src/v2.rs:
crates/litmus/src/v4.rs:
crates/litmus/src/../corpus/spectre_v1.sasm:
crates/litmus/src/../corpus/spectre_v1_fenced.sasm:
crates/litmus/src/../corpus/spectre_v1p1.sasm:
crates/litmus/src/../corpus/spectre_v4.sasm:
crates/litmus/src/../corpus/ct_select.sasm:
