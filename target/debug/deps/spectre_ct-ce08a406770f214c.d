/root/repo/target/debug/deps/spectre_ct-ce08a406770f214c.d: src/lib.rs

/root/repo/target/debug/deps/spectre_ct-ce08a406770f214c: src/lib.rs

src/lib.rs:
