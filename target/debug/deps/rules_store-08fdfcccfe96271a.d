/root/repo/target/debug/deps/rules_store-08fdfcccfe96271a.d: crates/core/tests/rules_store.rs

/root/repo/target/debug/deps/rules_store-08fdfcccfe96271a: crates/core/tests/rules_store.rs

crates/core/tests/rules_store.rs:
