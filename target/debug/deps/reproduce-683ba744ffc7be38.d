/root/repo/target/debug/deps/reproduce-683ba744ffc7be38.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/debug/deps/reproduce-683ba744ffc7be38: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
