/root/repo/target/debug/deps/pitchfork-c39457f687a65a89.d: crates/pitchfork/src/main.rs

/root/repo/target/debug/deps/pitchfork-c39457f687a65a89: crates/pitchfork/src/main.rs

crates/pitchfork/src/main.rs:
