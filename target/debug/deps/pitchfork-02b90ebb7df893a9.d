/root/repo/target/debug/deps/pitchfork-02b90ebb7df893a9.d: crates/pitchfork/src/lib.rs crates/pitchfork/src/detector.rs crates/pitchfork/src/explorer.rs crates/pitchfork/src/machine.rs crates/pitchfork/src/repair.rs crates/pitchfork/src/report.rs crates/pitchfork/src/state.rs

/root/repo/target/debug/deps/libpitchfork-02b90ebb7df893a9.rlib: crates/pitchfork/src/lib.rs crates/pitchfork/src/detector.rs crates/pitchfork/src/explorer.rs crates/pitchfork/src/machine.rs crates/pitchfork/src/repair.rs crates/pitchfork/src/report.rs crates/pitchfork/src/state.rs

/root/repo/target/debug/deps/libpitchfork-02b90ebb7df893a9.rmeta: crates/pitchfork/src/lib.rs crates/pitchfork/src/detector.rs crates/pitchfork/src/explorer.rs crates/pitchfork/src/machine.rs crates/pitchfork/src/repair.rs crates/pitchfork/src/report.rs crates/pitchfork/src/state.rs

crates/pitchfork/src/lib.rs:
crates/pitchfork/src/detector.rs:
crates/pitchfork/src/explorer.rs:
crates/pitchfork/src/machine.rs:
crates/pitchfork/src/repair.rs:
crates/pitchfork/src/report.rs:
crates/pitchfork/src/state.rs:
