/root/repo/target/debug/deps/solver_props-6072cf759fa42912.d: crates/symx/tests/solver_props.rs

/root/repo/target/debug/deps/solver_props-6072cf759fa42912: crates/symx/tests/solver_props.rs

crates/symx/tests/solver_props.rs:
