/root/repo/target/debug/deps/end_to_end-6d4e05fe61d66d45.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-6d4e05fe61d66d45: tests/end_to_end.rs

tests/end_to_end.rs:
