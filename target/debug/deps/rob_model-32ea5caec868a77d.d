/root/repo/target/debug/deps/rob_model-32ea5caec868a77d.d: crates/core/tests/rob_model.rs

/root/repo/target/debug/deps/rob_model-32ea5caec868a77d: crates/core/tests/rob_model.rs

crates/core/tests/rob_model.rs:
