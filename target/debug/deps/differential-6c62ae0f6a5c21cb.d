/root/repo/target/debug/deps/differential-6c62ae0f6a5c21cb.d: crates/pitchfork/tests/differential.rs

/root/repo/target/debug/deps/differential-6c62ae0f6a5c21cb: crates/pitchfork/tests/differential.rs

crates/pitchfork/tests/differential.rs:
