/root/repo/target/debug/deps/reproduce-b813a6195e8c1542.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/debug/deps/reproduce-b813a6195e8c1542: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
