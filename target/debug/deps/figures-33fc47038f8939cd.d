/root/repo/target/debug/deps/figures-33fc47038f8939cd.d: crates/litmus/tests/figures.rs

/root/repo/target/debug/deps/figures-33fc47038f8939cd: crates/litmus/tests/figures.rs

crates/litmus/tests/figures.rs:
