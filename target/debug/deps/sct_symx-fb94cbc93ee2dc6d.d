/root/repo/target/debug/deps/sct_symx-fb94cbc93ee2dc6d.d: crates/symx/src/lib.rs crates/symx/src/expr.rs crates/symx/src/interval.rs crates/symx/src/simplify.rs crates/symx/src/solver.rs crates/symx/src/symmem.rs

/root/repo/target/debug/deps/sct_symx-fb94cbc93ee2dc6d: crates/symx/src/lib.rs crates/symx/src/expr.rs crates/symx/src/interval.rs crates/symx/src/simplify.rs crates/symx/src/solver.rs crates/symx/src/symmem.rs

crates/symx/src/lib.rs:
crates/symx/src/expr.rs:
crates/symx/src/interval.rs:
crates/symx/src/simplify.rs:
crates/symx/src/solver.rs:
crates/symx/src/symmem.rs:
