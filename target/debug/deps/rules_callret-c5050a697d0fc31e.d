/root/repo/target/debug/deps/rules_callret-c5050a697d0fc31e.d: crates/core/tests/rules_callret.rs

/root/repo/target/debug/deps/rules_callret-c5050a697d0fc31e: crates/core/tests/rules_callret.rs

crates/core/tests/rules_callret.rs:
