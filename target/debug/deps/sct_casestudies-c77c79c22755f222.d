/root/repo/target/debug/deps/sct_casestudies-c77c79c22755f222.d: crates/casestudies/src/lib.rs crates/casestudies/src/common.rs crates/casestudies/src/donna.rs crates/casestudies/src/meecbc.rs crates/casestudies/src/secretbox.rs crates/casestudies/src/ssl3.rs crates/casestudies/src/table2.rs

/root/repo/target/debug/deps/sct_casestudies-c77c79c22755f222: crates/casestudies/src/lib.rs crates/casestudies/src/common.rs crates/casestudies/src/donna.rs crates/casestudies/src/meecbc.rs crates/casestudies/src/secretbox.rs crates/casestudies/src/ssl3.rs crates/casestudies/src/table2.rs

crates/casestudies/src/lib.rs:
crates/casestudies/src/common.rs:
crates/casestudies/src/donna.rs:
crates/casestudies/src/meecbc.rs:
crates/casestudies/src/secretbox.rs:
crates/casestudies/src/ssl3.rs:
crates/casestudies/src/table2.rs:
