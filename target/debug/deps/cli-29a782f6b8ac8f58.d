/root/repo/target/debug/deps/cli-29a782f6b8ac8f58.d: crates/pitchfork/tests/cli.rs

/root/repo/target/debug/deps/cli-29a782f6b8ac8f58: crates/pitchfork/tests/cli.rs

crates/pitchfork/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_pitchfork=/root/repo/target/debug/pitchfork
