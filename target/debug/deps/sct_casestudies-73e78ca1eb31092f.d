/root/repo/target/debug/deps/sct_casestudies-73e78ca1eb31092f.d: crates/casestudies/src/lib.rs crates/casestudies/src/common.rs crates/casestudies/src/donna.rs crates/casestudies/src/meecbc.rs crates/casestudies/src/secretbox.rs crates/casestudies/src/ssl3.rs crates/casestudies/src/table2.rs

/root/repo/target/debug/deps/libsct_casestudies-73e78ca1eb31092f.rlib: crates/casestudies/src/lib.rs crates/casestudies/src/common.rs crates/casestudies/src/donna.rs crates/casestudies/src/meecbc.rs crates/casestudies/src/secretbox.rs crates/casestudies/src/ssl3.rs crates/casestudies/src/table2.rs

/root/repo/target/debug/deps/libsct_casestudies-73e78ca1eb31092f.rmeta: crates/casestudies/src/lib.rs crates/casestudies/src/common.rs crates/casestudies/src/donna.rs crates/casestudies/src/meecbc.rs crates/casestudies/src/secretbox.rs crates/casestudies/src/ssl3.rs crates/casestudies/src/table2.rs

crates/casestudies/src/lib.rs:
crates/casestudies/src/common.rs:
crates/casestudies/src/donna.rs:
crates/casestudies/src/meecbc.rs:
crates/casestudies/src/secretbox.rs:
crates/casestudies/src/ssl3.rs:
crates/casestudies/src/table2.rs:
