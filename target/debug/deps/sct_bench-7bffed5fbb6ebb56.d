/root/repo/target/debug/deps/sct_bench-7bffed5fbb6ebb56.d: crates/bench/src/lib.rs crates/bench/src/render.rs crates/bench/src/sweep.rs

/root/repo/target/debug/deps/sct_bench-7bffed5fbb6ebb56: crates/bench/src/lib.rs crates/bench/src/render.rs crates/bench/src/sweep.rs

crates/bench/src/lib.rs:
crates/bench/src/render.rs:
crates/bench/src/sweep.rs:
