/root/repo/target/debug/deps/paper_claims-e2c84cd514ef9bac.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-e2c84cd514ef9bac: tests/paper_claims.rs

tests/paper_claims.rs:
