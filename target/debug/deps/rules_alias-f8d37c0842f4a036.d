/root/repo/target/debug/deps/rules_alias-f8d37c0842f4a036.d: crates/core/tests/rules_alias.rs

/root/repo/target/debug/deps/rules_alias-f8d37c0842f4a036: crates/core/tests/rules_alias.rs

crates/core/tests/rules_alias.rs:
