/root/repo/target/debug/deps/table2-44c1424913c456a1.d: crates/casestudies/tests/table2.rs

/root/repo/target/debug/deps/table2-44c1424913c456a1: crates/casestudies/tests/table2.rs

crates/casestudies/tests/table2.rs:
