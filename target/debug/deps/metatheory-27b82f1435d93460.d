/root/repo/target/debug/deps/metatheory-27b82f1435d93460.d: crates/core/tests/metatheory.rs

/root/repo/target/debug/deps/metatheory-27b82f1435d93460: crates/core/tests/metatheory.rs

crates/core/tests/metatheory.rs:
