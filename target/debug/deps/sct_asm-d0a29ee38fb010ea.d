/root/repo/target/debug/deps/sct_asm-d0a29ee38fb010ea.d: crates/asm/src/lib.rs crates/asm/src/assembler.rs crates/asm/src/ast.rs crates/asm/src/builder.rs crates/asm/src/disasm.rs crates/asm/src/error.rs crates/asm/src/lexer.rs crates/asm/src/parser.rs crates/asm/src/token.rs

/root/repo/target/debug/deps/libsct_asm-d0a29ee38fb010ea.rlib: crates/asm/src/lib.rs crates/asm/src/assembler.rs crates/asm/src/ast.rs crates/asm/src/builder.rs crates/asm/src/disasm.rs crates/asm/src/error.rs crates/asm/src/lexer.rs crates/asm/src/parser.rs crates/asm/src/token.rs

/root/repo/target/debug/deps/libsct_asm-d0a29ee38fb010ea.rmeta: crates/asm/src/lib.rs crates/asm/src/assembler.rs crates/asm/src/ast.rs crates/asm/src/builder.rs crates/asm/src/disasm.rs crates/asm/src/error.rs crates/asm/src/lexer.rs crates/asm/src/parser.rs crates/asm/src/token.rs

crates/asm/src/lib.rs:
crates/asm/src/assembler.rs:
crates/asm/src/ast.rs:
crates/asm/src/builder.rs:
crates/asm/src/disasm.rs:
crates/asm/src/error.rs:
crates/asm/src/lexer.rs:
crates/asm/src/parser.rs:
crates/asm/src/token.rs:
