/root/repo/target/debug/deps/pitchfork-290e9dc60e4926e5.d: crates/pitchfork/src/main.rs

/root/repo/target/debug/deps/pitchfork-290e9dc60e4926e5: crates/pitchfork/src/main.rs

crates/pitchfork/src/main.rs:
