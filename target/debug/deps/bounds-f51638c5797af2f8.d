/root/repo/target/debug/deps/bounds-f51638c5797af2f8.d: crates/litmus/tests/bounds.rs

/root/repo/target/debug/deps/bounds-f51638c5797af2f8: crates/litmus/tests/bounds.rs

crates/litmus/tests/bounds.rs:
