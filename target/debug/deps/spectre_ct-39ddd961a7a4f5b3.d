/root/repo/target/debug/deps/spectre_ct-39ddd961a7a4f5b3.d: src/lib.rs

/root/repo/target/debug/deps/libspectre_ct-39ddd961a7a4f5b3.rlib: src/lib.rs

/root/repo/target/debug/deps/libspectre_ct-39ddd961a7a4f5b3.rmeta: src/lib.rs

src/lib.rs:
