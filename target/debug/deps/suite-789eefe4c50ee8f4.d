/root/repo/target/debug/deps/suite-789eefe4c50ee8f4.d: crates/litmus/tests/suite.rs

/root/repo/target/debug/deps/suite-789eefe4c50ee8f4: crates/litmus/tests/suite.rs

crates/litmus/tests/suite.rs:
