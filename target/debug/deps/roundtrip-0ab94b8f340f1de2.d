/root/repo/target/debug/deps/roundtrip-0ab94b8f340f1de2.d: crates/asm/tests/roundtrip.rs

/root/repo/target/debug/deps/roundtrip-0ab94b8f340f1de2: crates/asm/tests/roundtrip.rs

crates/asm/tests/roundtrip.rs:
