/root/repo/target/debug/deps/sct_symx-44a5e102c5747aff.d: crates/symx/src/lib.rs crates/symx/src/expr.rs crates/symx/src/interval.rs crates/symx/src/simplify.rs crates/symx/src/solver.rs crates/symx/src/symmem.rs

/root/repo/target/debug/deps/libsct_symx-44a5e102c5747aff.rlib: crates/symx/src/lib.rs crates/symx/src/expr.rs crates/symx/src/interval.rs crates/symx/src/simplify.rs crates/symx/src/solver.rs crates/symx/src/symmem.rs

/root/repo/target/debug/deps/libsct_symx-44a5e102c5747aff.rmeta: crates/symx/src/lib.rs crates/symx/src/expr.rs crates/symx/src/interval.rs crates/symx/src/simplify.rs crates/symx/src/solver.rs crates/symx/src/symmem.rs

crates/symx/src/lib.rs:
crates/symx/src/expr.rs:
crates/symx/src/interval.rs:
crates/symx/src/simplify.rs:
crates/symx/src/solver.rs:
crates/symx/src/symmem.rs:
