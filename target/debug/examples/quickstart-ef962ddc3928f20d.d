/root/repo/target/debug/examples/quickstart-ef962ddc3928f20d.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-ef962ddc3928f20d: examples/quickstart.rs

examples/quickstart.rs:
