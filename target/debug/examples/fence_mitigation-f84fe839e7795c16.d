/root/repo/target/debug/examples/fence_mitigation-f84fe839e7795c16.d: examples/fence_mitigation.rs

/root/repo/target/debug/examples/fence_mitigation-f84fe839e7795c16: examples/fence_mitigation.rs

examples/fence_mitigation.rs:
