/root/repo/target/debug/examples/spectre_v1_attack-e569d04715b08b8c.d: examples/spectre_v1_attack.rs

/root/repo/target/debug/examples/spectre_v1_attack-e569d04715b08b8c: examples/spectre_v1_attack.rs

examples/spectre_v1_attack.rs:
