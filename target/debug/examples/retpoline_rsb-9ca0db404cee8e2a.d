/root/repo/target/debug/examples/retpoline_rsb-9ca0db404cee8e2a.d: examples/retpoline_rsb.rs

/root/repo/target/debug/examples/retpoline_rsb-9ca0db404cee8e2a: examples/retpoline_rsb.rs

examples/retpoline_rsb.rs:
