/root/repo/target/debug/examples/pitchfork_scan-cb6e6ee5ec29d00f.d: examples/pitchfork_scan.rs

/root/repo/target/debug/examples/pitchfork_scan-cb6e6ee5ec29d00f: examples/pitchfork_scan.rs

examples/pitchfork_scan.rs:
