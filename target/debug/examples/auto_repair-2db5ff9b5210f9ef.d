/root/repo/target/debug/examples/auto_repair-2db5ff9b5210f9ef.d: examples/auto_repair.rs

/root/repo/target/debug/examples/auto_repair-2db5ff9b5210f9ef: examples/auto_repair.rs

examples/auto_repair.rs:
