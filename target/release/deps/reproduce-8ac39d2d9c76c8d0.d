/root/repo/target/release/deps/reproduce-8ac39d2d9c76c8d0.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/release/deps/reproduce-8ac39d2d9c76c8d0: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
