/root/repo/target/release/deps/suite-403eaf8e596c001f.d: crates/litmus/tests/suite.rs

/root/repo/target/release/deps/suite-403eaf8e596c001f: crates/litmus/tests/suite.rs

crates/litmus/tests/suite.rs:
