/root/repo/target/release/deps/pitchfork-edefe57461c6fff8.d: crates/pitchfork/src/main.rs

/root/repo/target/release/deps/pitchfork-edefe57461c6fff8: crates/pitchfork/src/main.rs

crates/pitchfork/src/main.rs:
