/root/repo/target/release/deps/sct_bench-ed4976ef17b64afc.d: crates/bench/src/lib.rs crates/bench/src/render.rs crates/bench/src/sweep.rs

/root/repo/target/release/deps/libsct_bench-ed4976ef17b64afc.rlib: crates/bench/src/lib.rs crates/bench/src/render.rs crates/bench/src/sweep.rs

/root/repo/target/release/deps/libsct_bench-ed4976ef17b64afc.rmeta: crates/bench/src/lib.rs crates/bench/src/render.rs crates/bench/src/sweep.rs

crates/bench/src/lib.rs:
crates/bench/src/render.rs:
crates/bench/src/sweep.rs:
