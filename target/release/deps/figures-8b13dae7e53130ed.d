/root/repo/target/release/deps/figures-8b13dae7e53130ed.d: crates/litmus/tests/figures.rs

/root/repo/target/release/deps/figures-8b13dae7e53130ed: crates/litmus/tests/figures.rs

crates/litmus/tests/figures.rs:
