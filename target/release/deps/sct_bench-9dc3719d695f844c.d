/root/repo/target/release/deps/sct_bench-9dc3719d695f844c.d: crates/bench/src/lib.rs crates/bench/src/render.rs crates/bench/src/sweep.rs

/root/repo/target/release/deps/sct_bench-9dc3719d695f844c: crates/bench/src/lib.rs crates/bench/src/render.rs crates/bench/src/sweep.rs

crates/bench/src/lib.rs:
crates/bench/src/render.rs:
crates/bench/src/sweep.rs:
