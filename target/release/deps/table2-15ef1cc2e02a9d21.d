/root/repo/target/release/deps/table2-15ef1cc2e02a9d21.d: crates/casestudies/tests/table2.rs

/root/repo/target/release/deps/table2-15ef1cc2e02a9d21: crates/casestudies/tests/table2.rs

crates/casestudies/tests/table2.rs:
