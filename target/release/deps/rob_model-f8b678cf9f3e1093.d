/root/repo/target/release/deps/rob_model-f8b678cf9f3e1093.d: crates/core/tests/rob_model.rs

/root/repo/target/release/deps/rob_model-f8b678cf9f3e1093: crates/core/tests/rob_model.rs

crates/core/tests/rob_model.rs:
