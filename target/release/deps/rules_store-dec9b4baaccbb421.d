/root/repo/target/release/deps/rules_store-dec9b4baaccbb421.d: crates/core/tests/rules_store.rs

/root/repo/target/release/deps/rules_store-dec9b4baaccbb421: crates/core/tests/rules_store.rs

crates/core/tests/rules_store.rs:
