/root/repo/target/release/deps/proptest-620fe2487e21c68f.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/proptest-620fe2487e21c68f: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
