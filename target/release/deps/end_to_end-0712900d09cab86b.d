/root/repo/target/release/deps/end_to_end-0712900d09cab86b.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-0712900d09cab86b: tests/end_to_end.rs

tests/end_to_end.rs:
