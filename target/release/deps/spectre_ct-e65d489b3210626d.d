/root/repo/target/release/deps/spectre_ct-e65d489b3210626d.d: src/lib.rs

/root/repo/target/release/deps/libspectre_ct-e65d489b3210626d.rlib: src/lib.rs

/root/repo/target/release/deps/libspectre_ct-e65d489b3210626d.rmeta: src/lib.rs

src/lib.rs:
