/root/repo/target/release/deps/pitchfork-36efccb73f3c4638.d: crates/pitchfork/src/lib.rs crates/pitchfork/src/detector.rs crates/pitchfork/src/explorer.rs crates/pitchfork/src/machine.rs crates/pitchfork/src/repair.rs crates/pitchfork/src/report.rs crates/pitchfork/src/state.rs

/root/repo/target/release/deps/pitchfork-36efccb73f3c4638: crates/pitchfork/src/lib.rs crates/pitchfork/src/detector.rs crates/pitchfork/src/explorer.rs crates/pitchfork/src/machine.rs crates/pitchfork/src/repair.rs crates/pitchfork/src/report.rs crates/pitchfork/src/state.rs

crates/pitchfork/src/lib.rs:
crates/pitchfork/src/detector.rs:
crates/pitchfork/src/explorer.rs:
crates/pitchfork/src/machine.rs:
crates/pitchfork/src/repair.rs:
crates/pitchfork/src/report.rs:
crates/pitchfork/src/state.rs:
