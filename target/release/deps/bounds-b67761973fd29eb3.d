/root/repo/target/release/deps/bounds-b67761973fd29eb3.d: crates/litmus/tests/bounds.rs

/root/repo/target/release/deps/bounds-b67761973fd29eb3: crates/litmus/tests/bounds.rs

crates/litmus/tests/bounds.rs:
