/root/repo/target/release/deps/solver_props-702a4ae70861cbfc.d: crates/symx/tests/solver_props.rs

/root/repo/target/release/deps/solver_props-702a4ae70861cbfc: crates/symx/tests/solver_props.rs

crates/symx/tests/solver_props.rs:
