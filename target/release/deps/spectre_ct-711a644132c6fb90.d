/root/repo/target/release/deps/spectre_ct-711a644132c6fb90.d: src/lib.rs

/root/repo/target/release/deps/spectre_ct-711a644132c6fb90: src/lib.rs

src/lib.rs:
