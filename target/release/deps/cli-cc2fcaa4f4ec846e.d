/root/repo/target/release/deps/cli-cc2fcaa4f4ec846e.d: crates/pitchfork/tests/cli.rs

/root/repo/target/release/deps/cli-cc2fcaa4f4ec846e: crates/pitchfork/tests/cli.rs

crates/pitchfork/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_pitchfork=/root/repo/target/release/pitchfork
