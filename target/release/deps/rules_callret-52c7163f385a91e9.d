/root/repo/target/release/deps/rules_callret-52c7163f385a91e9.d: crates/core/tests/rules_callret.rs

/root/repo/target/release/deps/rules_callret-52c7163f385a91e9: crates/core/tests/rules_callret.rs

crates/core/tests/rules_callret.rs:
