/root/repo/target/release/deps/roundtrip-77965ef90d37815d.d: crates/asm/tests/roundtrip.rs

/root/repo/target/release/deps/roundtrip-77965ef90d37815d: crates/asm/tests/roundtrip.rs

crates/asm/tests/roundtrip.rs:
