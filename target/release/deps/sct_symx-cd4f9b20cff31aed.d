/root/repo/target/release/deps/sct_symx-cd4f9b20cff31aed.d: crates/symx/src/lib.rs crates/symx/src/expr.rs crates/symx/src/interval.rs crates/symx/src/simplify.rs crates/symx/src/solver.rs crates/symx/src/symmem.rs

/root/repo/target/release/deps/sct_symx-cd4f9b20cff31aed: crates/symx/src/lib.rs crates/symx/src/expr.rs crates/symx/src/interval.rs crates/symx/src/simplify.rs crates/symx/src/solver.rs crates/symx/src/symmem.rs

crates/symx/src/lib.rs:
crates/symx/src/expr.rs:
crates/symx/src/interval.rs:
crates/symx/src/simplify.rs:
crates/symx/src/solver.rs:
crates/symx/src/symmem.rs:
