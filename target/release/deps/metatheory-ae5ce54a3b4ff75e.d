/root/repo/target/release/deps/metatheory-ae5ce54a3b4ff75e.d: crates/core/tests/metatheory.rs

/root/repo/target/release/deps/metatheory-ae5ce54a3b4ff75e: crates/core/tests/metatheory.rs

crates/core/tests/metatheory.rs:
