/root/repo/target/release/deps/paper_claims-d40222695a966d60.d: tests/paper_claims.rs

/root/repo/target/release/deps/paper_claims-d40222695a966d60: tests/paper_claims.rs

tests/paper_claims.rs:
