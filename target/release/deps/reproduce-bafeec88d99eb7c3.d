/root/repo/target/release/deps/reproduce-bafeec88d99eb7c3.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/release/deps/reproduce-bafeec88d99eb7c3: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
