/root/repo/target/release/deps/pitchfork-224632357a5a99dd.d: crates/pitchfork/src/main.rs

/root/repo/target/release/deps/pitchfork-224632357a5a99dd: crates/pitchfork/src/main.rs

crates/pitchfork/src/main.rs:
