/root/repo/target/release/deps/differential-66f37a12a51715fb.d: crates/pitchfork/tests/differential.rs

/root/repo/target/release/deps/differential-66f37a12a51715fb: crates/pitchfork/tests/differential.rs

crates/pitchfork/tests/differential.rs:
