/root/repo/target/release/deps/pitchfork-8ad5d6032f385344.d: crates/pitchfork/src/lib.rs crates/pitchfork/src/detector.rs crates/pitchfork/src/explorer.rs crates/pitchfork/src/machine.rs crates/pitchfork/src/repair.rs crates/pitchfork/src/report.rs crates/pitchfork/src/state.rs

/root/repo/target/release/deps/libpitchfork-8ad5d6032f385344.rlib: crates/pitchfork/src/lib.rs crates/pitchfork/src/detector.rs crates/pitchfork/src/explorer.rs crates/pitchfork/src/machine.rs crates/pitchfork/src/repair.rs crates/pitchfork/src/report.rs crates/pitchfork/src/state.rs

/root/repo/target/release/deps/libpitchfork-8ad5d6032f385344.rmeta: crates/pitchfork/src/lib.rs crates/pitchfork/src/detector.rs crates/pitchfork/src/explorer.rs crates/pitchfork/src/machine.rs crates/pitchfork/src/repair.rs crates/pitchfork/src/report.rs crates/pitchfork/src/state.rs

crates/pitchfork/src/lib.rs:
crates/pitchfork/src/detector.rs:
crates/pitchfork/src/explorer.rs:
crates/pitchfork/src/machine.rs:
crates/pitchfork/src/repair.rs:
crates/pitchfork/src/report.rs:
crates/pitchfork/src/state.rs:
