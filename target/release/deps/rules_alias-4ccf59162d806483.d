/root/repo/target/release/deps/rules_alias-4ccf59162d806483.d: crates/core/tests/rules_alias.rs

/root/repo/target/release/deps/rules_alias-4ccf59162d806483: crates/core/tests/rules_alias.rs

crates/core/tests/rules_alias.rs:
