/root/repo/target/release/deps/sct_asm-37bd85257a60923e.d: crates/asm/src/lib.rs crates/asm/src/assembler.rs crates/asm/src/ast.rs crates/asm/src/builder.rs crates/asm/src/disasm.rs crates/asm/src/error.rs crates/asm/src/lexer.rs crates/asm/src/parser.rs crates/asm/src/token.rs

/root/repo/target/release/deps/libsct_asm-37bd85257a60923e.rlib: crates/asm/src/lib.rs crates/asm/src/assembler.rs crates/asm/src/ast.rs crates/asm/src/builder.rs crates/asm/src/disasm.rs crates/asm/src/error.rs crates/asm/src/lexer.rs crates/asm/src/parser.rs crates/asm/src/token.rs

/root/repo/target/release/deps/libsct_asm-37bd85257a60923e.rmeta: crates/asm/src/lib.rs crates/asm/src/assembler.rs crates/asm/src/ast.rs crates/asm/src/builder.rs crates/asm/src/disasm.rs crates/asm/src/error.rs crates/asm/src/lexer.rs crates/asm/src/parser.rs crates/asm/src/token.rs

crates/asm/src/lib.rs:
crates/asm/src/assembler.rs:
crates/asm/src/ast.rs:
crates/asm/src/builder.rs:
crates/asm/src/disasm.rs:
crates/asm/src/error.rs:
crates/asm/src/lexer.rs:
crates/asm/src/parser.rs:
crates/asm/src/token.rs:
