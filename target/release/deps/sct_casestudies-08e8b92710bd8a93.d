/root/repo/target/release/deps/sct_casestudies-08e8b92710bd8a93.d: crates/casestudies/src/lib.rs crates/casestudies/src/common.rs crates/casestudies/src/donna.rs crates/casestudies/src/meecbc.rs crates/casestudies/src/secretbox.rs crates/casestudies/src/ssl3.rs crates/casestudies/src/table2.rs

/root/repo/target/release/deps/sct_casestudies-08e8b92710bd8a93: crates/casestudies/src/lib.rs crates/casestudies/src/common.rs crates/casestudies/src/donna.rs crates/casestudies/src/meecbc.rs crates/casestudies/src/secretbox.rs crates/casestudies/src/ssl3.rs crates/casestudies/src/table2.rs

crates/casestudies/src/lib.rs:
crates/casestudies/src/common.rs:
crates/casestudies/src/donna.rs:
crates/casestudies/src/meecbc.rs:
crates/casestudies/src/secretbox.rs:
crates/casestudies/src/ssl3.rs:
crates/casestudies/src/table2.rs:
