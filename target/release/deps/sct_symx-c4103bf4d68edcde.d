/root/repo/target/release/deps/sct_symx-c4103bf4d68edcde.d: crates/symx/src/lib.rs crates/symx/src/expr.rs crates/symx/src/interval.rs crates/symx/src/simplify.rs crates/symx/src/solver.rs crates/symx/src/symmem.rs

/root/repo/target/release/deps/libsct_symx-c4103bf4d68edcde.rlib: crates/symx/src/lib.rs crates/symx/src/expr.rs crates/symx/src/interval.rs crates/symx/src/simplify.rs crates/symx/src/solver.rs crates/symx/src/symmem.rs

/root/repo/target/release/deps/libsct_symx-c4103bf4d68edcde.rmeta: crates/symx/src/lib.rs crates/symx/src/expr.rs crates/symx/src/interval.rs crates/symx/src/simplify.rs crates/symx/src/solver.rs crates/symx/src/symmem.rs

crates/symx/src/lib.rs:
crates/symx/src/expr.rs:
crates/symx/src/interval.rs:
crates/symx/src/simplify.rs:
crates/symx/src/solver.rs:
crates/symx/src/symmem.rs:
