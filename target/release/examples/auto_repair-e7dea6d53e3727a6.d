/root/repo/target/release/examples/auto_repair-e7dea6d53e3727a6.d: examples/auto_repair.rs

/root/repo/target/release/examples/auto_repair-e7dea6d53e3727a6: examples/auto_repair.rs

examples/auto_repair.rs:
