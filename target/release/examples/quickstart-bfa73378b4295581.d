/root/repo/target/release/examples/quickstart-bfa73378b4295581.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-bfa73378b4295581: examples/quickstart.rs

examples/quickstart.rs:
