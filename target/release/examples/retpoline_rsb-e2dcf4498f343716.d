/root/repo/target/release/examples/retpoline_rsb-e2dcf4498f343716.d: examples/retpoline_rsb.rs

/root/repo/target/release/examples/retpoline_rsb-e2dcf4498f343716: examples/retpoline_rsb.rs

examples/retpoline_rsb.rs:
