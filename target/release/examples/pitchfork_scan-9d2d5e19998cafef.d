/root/repo/target/release/examples/pitchfork_scan-9d2d5e19998cafef.d: examples/pitchfork_scan.rs

/root/repo/target/release/examples/pitchfork_scan-9d2d5e19998cafef: examples/pitchfork_scan.rs

examples/pitchfork_scan.rs:
