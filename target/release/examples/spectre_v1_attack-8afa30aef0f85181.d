/root/repo/target/release/examples/spectre_v1_attack-8afa30aef0f85181.d: examples/spectre_v1_attack.rs

/root/repo/target/release/examples/spectre_v1_attack-8afa30aef0f85181: examples/spectre_v1_attack.rs

examples/spectre_v1_attack.rs:
