/root/repo/target/release/examples/fence_mitigation-4e31875447fc9e20.d: examples/fence_mitigation.rs

/root/repo/target/release/examples/fence_mitigation-4e31875447fc9e20: examples/fence_mitigation.rs

examples/fence_mitigation.rs:
