//! End-to-end integration: assembly text in, verdicts out — the same
//! flow the `pitchfork` CLI drives, through the library APIs.


// Legacy-API coverage: this file deliberately exercises the deprecated
// `Detector`/`BatchAnalyzer` wrappers to pin their delegation behaviour.
#![allow(deprecated)]

use spectre_ct::asm::{assemble, disassemble_with};
use spectre_ct::core::sched::sequential::run_sequential;
use spectre_ct::core::Params;
use spectre_ct::pitchfork::{Detector, DetectorOptions};

const VULNERABLE: &str = r"
.entry start
.reg ra = 9
.public 0x40 = 1, 0, 2, 1
.public 0x44 = 0, 3, 1, 2
.secret 0x48 = 0x11, 0x22, 0x33, 0x44
start:
    br gt(4, ra), then, out
then:
    rb = load [0x40, ra]
    rc = load [0x44, rb]
out:
";

const FENCED: &str = r"
.entry start
.reg ra = 9
.public 0x40 = 1, 0, 2, 1
.public 0x44 = 0, 3, 1, 2
.secret 0x48 = 0x11, 0x22, 0x33, 0x44
start:
    br gt(4, ra), then, out
then:
    fence
    rb = load [0x40, ra]
    rc = load [0x44, rb]
out:
";

#[test]
fn assembled_gadget_is_flagged_and_fence_fixes_it() {
    let detector = Detector::new(DetectorOptions::v1_mode(20));

    let vulnerable = assemble(VULNERABLE).unwrap();
    let report = detector.analyze(&vulnerable.program, &vulnerable.config);
    assert!(report.has_violations());
    // The flagged program point maps back to a source line.
    let pc = report.violations[0].pc;
    assert!(vulnerable.lines.contains_key(&pc) || pc > 0);

    let fenced = assemble(FENCED).unwrap();
    let report = detector.analyze(&fenced.program, &fenced.config);
    assert!(!report.has_violations());
}

#[test]
fn both_programs_are_sequentially_constant_time() {
    for src in [VULNERABLE, FENCED] {
        let asm = assemble(src).unwrap();
        let out = run_sequential(&asm.program, asm.config, Params::paper(), 10_000).unwrap();
        assert!(out.terminal);
        assert!(out.outcome.trace.is_public());
    }
}

#[test]
fn disassembly_round_trips_through_the_detector() {
    // Disassemble the assembled gadget, re-assemble, and get the same
    // verdict — the front-end is faithful.
    let asm = assemble(VULNERABLE).unwrap();
    let text = disassemble_with(&asm.program, Some(&asm.config));
    let again = assemble(&text).unwrap();
    assert_eq!(asm.program, again.program);
    assert_eq!(asm.config, again.config);
    let detector = Detector::new(DetectorOptions::v1_mode(20));
    assert!(detector.analyze(&again.program, &again.config).has_violations());
}

#[test]
fn symbolic_analysis_covers_all_public_inputs() {
    use spectre_ct::core::reg::names::RA;
    // With an *in-bounds* concrete index the gadget still leaks for
    // some attacker-chosen index; symbolizing `ra` finds it.
    let mut asm = assemble(VULNERABLE).unwrap();
    asm.config.regs.write(RA, spectre_ct::core::Val::public(1));
    let detector = Detector::new(DetectorOptions::v1_mode(20));
    let report = detector.analyze_symbolic(&asm.program, &asm.config, &[RA]);
    assert!(report.has_violations());
    // The report carries the path constraints that pin the leak.
    assert!(report
        .violations
        .iter()
        .any(|v| !v.constraints.is_empty()));
}
