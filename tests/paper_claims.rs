//! Cross-crate validation of the paper's central claims.


// Legacy-API coverage: this file deliberately exercises the deprecated
// `Detector`/`BatchAnalyzer` wrappers to pin their delegation behaviour.
#![allow(deprecated)]

use spectre_ct::core::{Machine, Params, Schedule};
use spectre_ct::litmus;
use spectre_ct::pitchfork::{Detector, DetectorOptions};

/// Theorem B.20 flavour, end to end: every violation schedule the
/// symbolic explorer reports is a *well-formed* schedule of the
/// reference semantics that reproduces the secret-labeled observation
/// concretely.
#[test]
fn violation_schedules_replay_on_the_reference_machine() {
    for case in litmus::all_cases() {
        for (fwd, mode) in [(false, "v1"), (true, "v4")] {
            let options = if fwd {
                DetectorOptions::v4_mode(case.bound)
            } else {
                DetectorOptions::v1_mode(case.bound)
            };
            let report = Detector::new(options).analyze(&case.program, &case.config);
            for v in report.violations.iter().take(3) {
                let mut m = Machine::with_params(
                    &case.program,
                    case.config.clone(),
                    Params::paper(),
                );
                let out = m.run(&v.schedule).unwrap_or_else(|e| {
                    panic!("{} ({mode}): schedule not well-formed: {e}", case.name)
                });
                assert!(
                    out.trace.first_secret().is_some(),
                    "{} ({mode}): replay produced no secret observation\nschedule: {}",
                    case.name,
                    v.schedule
                );
            }
        }
    }
}

/// Definition 3.1, relationally: replaying a violation schedule on
/// secrets-mutated siblings produces diverging traces — a direct SCT
/// counterexample, not just a label-based one.
#[test]
fn violations_are_relational_counterexamples() {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use spectre_ct::core::sct::{
        check_schedule_relational_with, mutate_secrets_bounded, SctViolation,
    };

    let mut rng = SmallRng::seed_from_u64(2024);
    for case in litmus::kocher::all() {
        if !case.expect.v1_violation {
            continue;
        }
        let report = Detector::new(DetectorOptions::v1_mode(case.bound))
            .analyze(&case.program, &case.config);
        let v = report
            .violations
            .first()
            .unwrap_or_else(|| panic!("{} should be flagged", case.name));
        // Keep mutated secrets small so even 1-bit leaks (e.g. a branch
        // on `secret == 0`) flip within a few samples.
        let found = check_schedule_relational_with(
            &case.program,
            case.config.clone(),
            Params::paper(),
            &v.schedule,
            32,
            |c| mutate_secrets_bounded(c, 4, &mut rng),
        )
        .unwrap();
        assert!(
            matches!(
                found,
                Some(SctViolation::TraceDivergence { .. })
                    | Some(SctViolation::WellFormednessDivergence { .. })
            ),
            "{}: no relational divergence found on the violation schedule",
            case.name
        );
    }
}

/// The safe cases stay clean under the relational checker too, across
/// both detector-generated and adversarial random schedules.
#[test]
fn safe_cases_are_relationally_clean() {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use spectre_ct::core::sched::random::{run_random, RandomSchedulerOptions};
    use spectre_ct::core::sct::check_schedule_relational;

    let mut rng = SmallRng::seed_from_u64(7);
    for case in litmus::all_cases() {
        if case.expect.v1_violation || case.expect.v4_violation {
            continue;
        }
        // Skip the alias-prediction fragment: random schedules may use
        // `execute i: fwd j`, where label-free divergence is possible
        // (the paper's tool does not explore it either).
        for _ in 0..10 {
            let run = run_random(
                &case.program,
                case.config.clone(),
                Params::paper(),
                RandomSchedulerOptions::default(),
                &mut rng,
            );
            let uses_alias = run
                .schedule
                .iter()
                .any(|d| matches!(d, spectre_ct::core::Directive::ExecuteFwd(_, _)));
            if uses_alias {
                continue;
            }
            let found = check_schedule_relational(
                &case.program,
                case.config.clone(),
                Params::paper(),
                &run.schedule,
                6,
                &mut rng,
            )
            .unwrap();
            assert!(
                found.is_none(),
                "{}: safe case diverged relationally under {}",
                case.name,
                run.schedule
            );
        }
    }
}

/// §4.2: "Pitchfork still correctly finds SCT violations in all our
/// test cases" — the corpus-level summary the paper reports.
#[test]
fn corpus_detection_summary() {
    let cases = litmus::all_cases();
    let mut flagged = 0;
    let mut expected = 0;
    for case in &cases {
        let got = litmus::run_case(case);
        if case.expect.v1_violation || case.expect.v4_violation {
            expected += 1;
            if got.v1_violation || got.v4_violation {
                flagged += 1;
            }
        }
    }
    assert_eq!(
        flagged, expected,
        "every vulnerable case must be flagged ({flagged}/{expected})"
    );
}

/// Deterministic reports: analyzing twice yields the same violations.
#[test]
fn detection_is_deterministic() {
    let case = litmus::kocher::kocher_01();
    let d = Detector::new(DetectorOptions::v1_mode(case.bound));
    let a = d.analyze(&case.program, &case.config);
    let b = d.analyze(&case.program, &case.config);
    assert_eq!(a.violations.len(), b.violations.len());
    let sched_a: Vec<Schedule> = a.violations.iter().map(|v| v.schedule.clone()).collect();
    let sched_b: Vec<Schedule> = b.violations.iter().map(|v| v.schedule.clone()).collect();
    assert_eq!(sched_a, sched_b);
    // Thread-local cache hits depend on what earlier analyses on this
    // thread left cached (as shared-memo hits would, had this case
    // issued solver queries) — normalize them; everything else about
    // the exploration must reproduce exactly.
    let (mut sa, mut sb) = (a.stats, b.stats);
    sa.local_cache_hits = 0;
    sb.local_cache_hits = 0;
    assert_eq!(sa, sb);
}
