//! The ISSUE 2 acceptance run: a second `BatchAnalyzer` pass over the
//! litmus corpus + Table 2 with a cache file must hydrate ≥80% of its
//! interned nodes and ≥50% of its `Solver::check` calls from the
//! persisted snapshot, and an epoch reset followed by re-analysis must
//! produce verdicts identical to a fresh-arena run.
//!
//! The cold and warm "processes" are simulated with
//! [`spectre_ct::symx::retire_arena`]: each phase starts from an empty
//! epoch, exactly like a fresh CLI invocation. Everything lives in one
//! `#[test]` because the phases share (and retire) the process-wide
//! arena.

use spectre_ct::casestudies::table2;
use spectre_ct::litmus;
use spectre_ct::pitchfork::BatchReport;
use spectre_ct::symx::{arena_stats, retire_arena};

const V1_BOUND: usize = 40;
const V4_BOUND: usize = 20;

/// Per-item verdicts of a batch, for cold/warm comparison.
fn verdicts(report: &BatchReport) -> Vec<(String, bool)> {
    report
        .outcomes
        .iter()
        .map(|o| (o.name.clone(), o.report.has_violations()))
        .collect()
}

fn solver_counts(reports: &[&BatchReport]) -> (usize, usize) {
    let queries = reports.iter().map(|r| r.totals.solver_queries).sum();
    let hits = reports.iter().map(|r| r.totals.solver_memo_hits).sum();
    (queries, hits)
}

#[test]
fn warm_start_meets_the_acceptance_thresholds() {
    let path = std::env::temp_dir().join(format!(
        "sct_cache_warm_acceptance_{}.cache",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let cases = litmus::all_cases();

    // --- Cold phase: empty epoch, no cache file. -------------------------
    retire_arena();
    let cold_corpus = litmus::harness::run_corpus_cached(&cases, &path).expect("cold corpus");
    assert!(
        cold_corpus.verdicts.v1.cache_load.is_none(),
        "no cache file yet: the cold run must start cold"
    );
    let (cold_table, cold_t2_v1, cold_t2_v4) =
        table2::run_cached(V1_BOUND, V4_BOUND, &path).expect("cold table2");
    let cold_nodes = arena_stats().nodes;
    let (cold_queries, _) = solver_counts(&[
        &cold_corpus.verdicts.v1,
        &cold_corpus.verdicts.v4,
        cold_corpus.v1_symbolic(),
        &cold_t2_v1,
        &cold_t2_v4,
    ]);
    assert!(cold_nodes > 0 && cold_queries > 0, "workload is non-trivial");

    // --- Warm phase: empty epoch again, hydrate from the snapshot. -------
    retire_arena();
    let warm_corpus = litmus::harness::run_corpus_cached(&cases, &path).expect("warm corpus");
    let load = warm_corpus
        .verdicts
        .v1
        .cache_load
        .expect("second run must warm-start from the snapshot");
    assert!(load.snapshot_nodes > 0, "snapshot must not be empty");
    assert!(load.verdicts_imported > 0, "snapshot must carry verdicts");
    let loaded_nodes = load.added; // into an empty epoch, added == hydrated
    let (warm_table, warm_t2_v1, warm_t2_v4) =
        table2::run_cached(V1_BOUND, V4_BOUND, &path).expect("warm table2");

    // ≥80% of the warm run's interned nodes came from the snapshot.
    let warm_nodes = arena_stats().nodes;
    let fresh = warm_nodes.saturating_sub(loaded_nodes);
    let node_hit_rate = 1.0 - fresh as f64 / cold_nodes as f64;
    assert!(
        node_hit_rate >= 0.8,
        "node disk-hit rate {node_hit_rate:.3} below 0.8 \
         (cold {cold_nodes} nodes, hydrated {loaded_nodes}, fresh {fresh})"
    );

    // ≥50% of the warm run's Solver::check calls answered by the memo.
    let (warm_queries, warm_hits) = solver_counts(&[
        &warm_corpus.verdicts.v1,
        &warm_corpus.verdicts.v4,
        warm_corpus.v1_symbolic(),
        &warm_t2_v1,
        &warm_t2_v4,
    ]);
    let memo_hit_rate = warm_hits as f64 / warm_queries.max(1) as f64;
    assert!(
        memo_hit_rate >= 0.5,
        "solver memo hit rate {memo_hit_rate:.3} below 0.5 \
         ({warm_hits}/{warm_queries})"
    );

    // Epoch reset + re-analysis reproduces every fresh-arena verdict.
    assert_eq!(
        verdicts(&cold_corpus.verdicts.v1),
        verdicts(&warm_corpus.verdicts.v1)
    );
    assert_eq!(
        verdicts(&cold_corpus.verdicts.v4),
        verdicts(&warm_corpus.verdicts.v4)
    );
    assert_eq!(
        verdicts(cold_corpus.v1_symbolic()),
        verdicts(warm_corpus.v1_symbolic())
    );
    assert_eq!(cold_table.rows.len(), warm_table.rows.len());
    for (c, w) in cold_table.rows.iter().zip(&warm_table.rows) {
        assert_eq!(c.name, w.name);
        assert_eq!(c.c, w.c, "{}: C-build verdict changed", c.name);
        assert_eq!(c.fact, w.fact, "{}: FaCT-build verdict changed", c.name);
    }

    let _ = std::fs::remove_file(&path);
}
