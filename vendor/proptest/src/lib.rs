//! Offline, API-compatible subset of the `proptest` crate.
//!
//! Supports the surface this workspace's tests use: the [`proptest!`]
//! macro (with an optional `#![proptest_config(...)]` header), the
//! `prop_assert*` macros, [`Strategy`] with `prop_map`, ranges and
//! tuples as strategies, [`Just`], [`prop_oneof!`], [`any`], and
//! [`collection::vec`]. Cases are generated from a deterministic
//! per-test RNG (seeded from the test path), so failures reproduce.
//! There is no shrinking: a failing case reports its seed instead.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng, UniformInt};
use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;

/// Everything a test needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Deterministic case generator handed to strategies.
pub struct TestRng(SmallRng);

impl TestRng {
    /// An RNG for one case of one test, seeded from the test path and
    /// the case index (stable across runs and platforms).
    pub fn deterministic(test_path: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(SmallRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64)))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Per-test configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A test-case failure raised by the `prop_assert*` macros.
#[derive(Clone, Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A value generator.
pub trait Strategy: 'static {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U + 'static,
    {
        Map { inner: self, f }
    }

    /// Erase the strategy type (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
    {
        BoxedStrategy(Box::new(move |rng: &mut TestRng| self.sample(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Fn(&mut TestRng) -> V>);

impl<V: 'static> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U + 'static,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy producing exactly one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T: UniformInt + 'static> Strategy for Range<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident : $v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: a);
impl_tuple_strategy!(A: a, B: b);
impl_tuple_strategy!(A: a, B: b, C: c);
impl_tuple_strategy!(A: a, B: b, C: c, D: d);

/// Uniform choice between type-erased alternatives (see [`prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union of the given alternatives.
    ///
    /// # Panics
    ///
    /// Panics when `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V: 'static> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].sample(rng)
    }
}

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Sample one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary + 'static> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<u64>()` et al.).
pub fn any<T: Arbitrary + 'static>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// A strategy for vectors whose length is drawn from `len` and whose
    /// elements are drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `vec(element, 0..60)` — the `proptest::collection::vec` shape.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = if self.len.is_empty() {
                0
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Uniform choice among strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Fallible assertion inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fallible equality assertion inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)+);
    }};
}

/// Fallible inequality assertion inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a), stringify!($b), a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, $($fmt)+);
    }};
}

/// The test-harness macro: each contained `fn name(pat in strategy)`
/// becomes a `#[test]` running `config.cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`] (public for macro expansion).
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = $cfg:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $pat:pat in $strat:expr $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let strategy = $strat;
                for case in 0..config.cases {
                    let mut case_rng = $crate::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    let $pat = $crate::Strategy::sample(&strategy, &mut case_rng);
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name), case, config.cases, e
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_sample_in_bounds(x in 3u64..9) {
            prop_assert!((3..9).contains(&x));
        }

        #[test]
        fn tuples_and_maps_compose(v in (0usize..4, 0u64..100).prop_map(|(i, x)| (i, x + 1))) {
            prop_assert!(v.0 < 4);
            prop_assert!(v.1 >= 1);
            prop_assert_ne!(v.1, 0);
        }

        #[test]
        fn oneof_picks_every_arm(xs in crate::collection::vec(prop_oneof![Just(0u8), Just(1u8)], 0..16)) {
            for &x in &xs {
                prop_assert!(x <= 1);
            }
            prop_assert_eq!(xs.len() <= 16, true);
        }
    }

    #[test]
    fn deterministic_rng_is_stable_per_test() {
        use rand::RngCore;
        let mut a = crate::TestRng::deterministic("t", 3);
        let mut b = crate::TestRng::deterministic("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
