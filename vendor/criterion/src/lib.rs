//! Offline, API-compatible subset of the `criterion` benchmark harness.
//!
//! Implements the surface this workspace's benches use:
//! [`criterion_group!`]/[`criterion_main!`], [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] with `sample_size`, `measurement_time`,
//! `warm_up_time`, `throughput`, `bench_function`, `bench_with_input`,
//! and `finish`, plus [`BenchmarkId`] and [`Throughput`].
//!
//! Measurement is a plain warm-up + timed-samples loop (median and mean
//! reported, no bootstrap statistics). Each bench also appends a JSON
//! record to `BENCH_<group>.json` in the workspace root so results are
//! machine-readable across runs — see [`Criterion::output_dir`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt;
use std::fmt::Write as _;
use std::hint::black_box as std_black_box;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter (for single-function groups).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// One measured result.
#[derive(Clone, Debug)]
struct Sampled {
    name: String,
    mean: Duration,
    median: Duration,
    iters: u64,
    throughput: Option<Throughput>,
}

impl Sampled {
    fn per_second(&self) -> Option<f64> {
        let secs = self.mean.as_secs_f64();
        if secs == 0.0 {
            return None;
        }
        match self.throughput {
            Some(Throughput::Elements(n)) | Some(Throughput::Bytes(n)) => Some(n as f64 / secs),
            None => None,
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// The per-iteration timer handed to bench closures.
pub struct Bencher<'m> {
    samples: &'m mut Vec<Duration>,
    rounds: usize,
    sample_iters: u64,
}

impl Bencher<'_> {
    /// Time `f`, called repeatedly; one sample per outer round.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.rounds.max(1) {
            let start = Instant::now();
            for _ in 0..self.sample_iters {
                std_black_box(f());
            }
            let elapsed = start.elapsed();
            self.samples
                .push(elapsed / u32::try_from(self.sample_iters).unwrap_or(u32::MAX));
        }
    }
}

/// Measurement settings shared by a group (or the top level).
#[derive(Clone, Copy, Debug)]
struct Settings {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 20,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

fn run_one<F: FnMut(&mut Bencher<'_>)>(name: &str, settings: Settings, mut f: F) -> Sampled {
    // Warm-up / calibration: run once to estimate the per-iteration cost.
    let cal_start = Instant::now();
    let mut cal = Vec::new();
    f(&mut Bencher {
        samples: &mut cal,
        rounds: 1,
        sample_iters: 1,
    });
    let per_iter = cal_start.elapsed().max(Duration::from_nanos(1));
    let warm_rounds = (settings.warm_up_time.as_nanos() / per_iter.as_nanos()).min(1_000) as usize;
    if warm_rounds > 0 {
        let mut warm = Vec::new();
        f(&mut Bencher {
            samples: &mut warm,
            rounds: warm_rounds,
            sample_iters: 1,
        });
    }
    // Choose the per-sample iteration count so all samples fit the
    // measurement budget.
    let budget = settings.measurement_time.as_nanos().max(1);
    let per_sample = budget / settings.sample_size.max(1) as u128;
    let sample_iters = (per_sample / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;
    let mut samples = Vec::new();
    f(&mut Bencher {
        samples: &mut samples,
        rounds: settings.sample_size,
        sample_iters,
    });
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / u32::try_from(samples.len()).unwrap_or(1);
    Sampled {
        name: name.to_string(),
        mean,
        median,
        iters: sample_iters * samples.len() as u64,
        throughput: None,
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    settings: Settings,
    throughput: Option<Throughput>,
    results: Vec<Sampled>,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n;
        self
    }

    /// Total time budget for one benchmark's samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    /// Warm-up budget before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up_time = d;
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut sampled = run_one(&id.to_string(), self.settings, f);
        sampled.throughput = self.throughput;
        self.report(&sampled);
        self.results.push(sampled);
        self
    }

    /// Run one parametrized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    fn report(&self, s: &Sampled) {
        let mut line = format!(
            "{}/{:<40} mean {:>12}  median {:>12}  ({} iters)",
            self.name,
            s.name,
            fmt_duration(s.mean),
            fmt_duration(s.median),
            s.iters
        );
        if let Some(rate) = s.per_second() {
            let _ = write!(line, "  {rate:.0}/s");
        }
        println!("{line}");
    }

    /// Finish the group, writing `BENCH_<group>.json`.
    pub fn finish(&mut self) {
        let path = self
            .criterion
            .output_dir
            .join(format!("BENCH_{}.json", self.name.replace(['/', ' '], "_")));
        let mut json = String::from("{\n");
        let _ = writeln!(json, "  \"group\": \"{}\",", self.name);
        json.push_str("  \"benchmarks\": [\n");
        for (i, s) in self.results.iter().enumerate() {
            let sep = if i + 1 == self.results.len() { "" } else { "," };
            let _ = writeln!(
                json,
                "    {{\"name\": \"{}\", \"mean_ns\": {}, \"median_ns\": {}, \"iters\": {}{}}}{}",
                s.name,
                s.mean.as_nanos(),
                s.median.as_nanos(),
                s.iters,
                s.per_second()
                    .map(|r| format!(", \"per_second\": {r:.1}"))
                    .unwrap_or_default(),
                sep
            );
        }
        json.push_str("  ]\n}\n");
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("criterion shim: could not write {}: {e}", path.display());
        }
    }
}

/// The top-level harness handle.
pub struct Criterion {
    settings: Settings,
    output_dir: PathBuf,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            settings: Settings::default(),
            output_dir: Criterion::output_dir(),
        }
    }
}

impl Criterion {
    /// Where `BENCH_*.json` files land: `$BENCH_OUT_DIR` when set, else
    /// the workspace root (two levels above the bench package, which is
    /// the process working directory under `cargo bench`), else `.`.
    pub fn output_dir() -> PathBuf {
        if let Ok(d) = std::env::var("BENCH_OUT_DIR") {
            return PathBuf::from(d);
        }
        let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        for dir in cwd.ancestors() {
            if dir.join("Cargo.toml").exists()
                && std::fs::read_to_string(dir.join("Cargo.toml"))
                    .is_ok_and(|t| t.contains("[workspace]"))
            {
                return dir.to_path_buf();
            }
        }
        cwd
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let sampled = run_one(name, self.settings, f);
        println!(
            "{:<48} mean {:>12}  median {:>12}  ({} iters)",
            sampled.name,
            fmt_duration(sampled.mean),
            fmt_duration(sampled.median),
            sampled.iters
        );
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let settings = self.settings;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            settings,
            throughput: None,
            results: Vec::new(),
        }
    }
}

/// Define a benchmark group function list (criterion-compatible).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` running the given groups (criterion-compatible).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion {
            settings: Settings {
                sample_size: 5,
                measurement_time: Duration::from_millis(20),
                warm_up_time: Duration::from_millis(1),
            },
            output_dir: std::env::temp_dir(),
        };
        let mut group = c.benchmark_group("shim_selftest");
        group.sample_size(5).measurement_time(Duration::from_millis(20));
        group.throughput(Throughput::Elements(100));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
        assert!(std::env::temp_dir().join("BENCH_shim_selftest.json").exists());
    }
}
