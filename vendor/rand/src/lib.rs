//! Offline, API-compatible subset of the `rand` crate.
//!
//! The container this workspace builds in has no crates.io access, so
//! the workspace vendors the few entry points the code actually uses:
//! [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`], and [`rngs::SmallRng`] (implemented
//! as xoshiro256++ seeded through splitmix64). Distribution quality
//! matches the upstream crate closely enough for fuzzing and property
//! testing; nothing here is cryptographic.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::ops::{Range, RangeInclusive};

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, deterministic given the seed.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed (splitmix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from the full generator output.
pub trait Standard: Sized {
    /// Sample one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types uniformly samplable from a half-open range.
pub trait UniformInt: Copy + PartialOrd {
    /// Sample uniformly from `[lo, hi]` (inclusive bounds, `lo <= hi`).
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// The predecessor, used to close a half-open range.
    fn prev(self) -> Self;
}

macro_rules! impl_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                // Modulo with a rejection step to keep the bias negligible.
                let span = span + 1;
                let zone = u64::MAX - (u64::MAX % span);
                loop {
                    let x = rng.next_u64();
                    if x < zone {
                        return lo.wrapping_add((x % span) as $t);
                    }
                }
            }
            fn prev(self) -> Self {
                self - 1
            }
        }
    )*};
}

impl_uniform_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_signed {
    ($($t:ty : $u:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                // Shift to the unsigned representation, sample, shift back.
                let ulo = (lo as $u).wrapping_add(<$t>::MIN.unsigned_abs());
                let uhi = (hi as $u).wrapping_add(<$t>::MIN.unsigned_abs());
                let s = <$u>::sample_inclusive(ulo, uhi, rng);
                s.wrapping_sub(<$t>::MIN.unsigned_abs()) as $t
            }
            fn prev(self) -> Self {
                self - 1
            }
        }
    )*};
}

impl_uniform_signed!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample one value from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range called with empty range");
        T::sample_inclusive(self.start, self.end.prev(), rng)
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range called with empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_one(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        // 53 uniform mantissa bits, the standard float-from-bits recipe.
        let f = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        f < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; splitmix64 of any
            // seed cannot produce one across all four words, but guard
            // anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0
                .wrapping_add(s3)
                .rotate_left(23)
                .wrapping_add(s0);
            let t = s1 << 17;
            let mut s2 = s2 ^ s0;
            let mut s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.s = [s0, s1, s2, s3];
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = rng.gen_range(0..3);
            assert!(y < 3);
            let z: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&z));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {counts:?}");
        }
    }
}
